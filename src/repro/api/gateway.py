"""JSON-lines socket gateway: the Platform API over a real wire.

The gateway is the remote-access deployment shape the paper promises: an
access server in the cloud, experimenters anywhere.  The framing is
deliberately primitive — one JSON envelope per line, UTF-8,
``\\n``-terminated — so any language with a socket and a JSON parser can
drive the platform.

* :class:`ApiGateway` — server side.  A single-threaded ``selectors``
  event loop owns every socket: the listener, a wakeup pipe, and all
  accepted connections (optionally wrapped in TLS — the paper mandates
  HTTPS-only access — with the handshake driven non-blocking on the same
  loop).  The loop reads non-blocking sockets into per-connection buffers,
  splits newline-framed request lines incrementally, and hands them to a
  small worker pool for router dispatch, so one slow operation can never
  stall the loop or the other connections.  A malformed JSON line gets a
  well-formed ``request.invalid`` error envelope back rather than a
  dropped connection, so client bugs stay debuggable.
* :class:`JsonLinesTransport` — the matching client
  :class:`~repro.api.client.Transport`.  Connects lazily, reconnects once
  per call after a broken connection, raises
  :class:`~repro.api.errors.TransportApiError` (code ``transport.failed``)
  when the gateway cannot be reached, and supports request *pipelining*
  via :meth:`JsonLinesTransport.send_many`.

**Pipelining.**  A connection may have many requests in flight: the loop
queues complete lines as they arrive and a per-connection worker task
executes them strictly in arrival order, queueing the responses back in
the same order — so responses always match the request sequence and
per-connection semantics are identical to the serial gateway.  Concurrency
happens *across* connections: read-only operations (see
:meth:`~repro.api.router.ApiRouter.is_read_only`) run without the
exclusive router lock, while mutating operations still serialize through
:attr:`ApiGateway.router_lock`.  A read that collides with a concurrent
mutation (e.g. an iteration hitting a resized dict) surfaces as a
``server.internal`` error envelope; the gateway retries it once under the
exclusive lock, so clients only ever observe consistent results.  A
connection that floods more than :data:`ApiGateway.MAX_PIPELINE_DEPTH`
unanswered requests has its reads paused until the backlog drains —
genuine TCP back-pressure instead of unbounded buffering.

**Streaming (API v2).**  Responses and server pushes share one connection:
each connection hands the router a ``push`` callable that enqueues
:class:`~repro.api.schemas.ApiPush` frames onto a *bounded* per-connection
queue flushed by the event loop whenever the socket is writable; frames
are serialized whole, so a push never interleaves mid-line with a
response.  Back-pressure: the simulation thread that published the event
only ever enqueues — a stalled consumer fills the queue and the oldest
event frames are dropped (``end`` frames survive), with the loss surfaced
as a ``dropped`` counter on the next delivered frame of that subscription.
The client transport demultiplexes by the ``kind: "push"`` discriminator,
buffering push frames per subscription while a response is awaited.  When
a connection dies — or :meth:`ApiGateway.stop` runs — every subscription
it owned is cancelled on the router, so a blocked ``job.watch`` reader can
never hang shutdown and the event bus never writes to a dead socket.

**TLS.**  Pass an ``ssl.SSLContext`` (see
:func:`repro.accessserver.certificates.server_tls_context`) to serve the
paper's HTTPS-only rule for real; the handshake runs non-blocking on the
loop (``do_handshake_on_connect=False``, resumed on readiness events,
reaped after :data:`ApiGateway.TLS_HANDSHAKE_TIMEOUT_S`).
``assume_https=False`` additionally makes the router treat plaintext
connections as insecure, which the HTTPS-only
:class:`~repro.accessserver.auth.UserRegistry` then rejects at
authentication time.  The default (``assume_https=True``) keeps plaintext
loopback gateways — tests, local tooling — working as the stand-in for a
terminated TLS connection.

Threading model: one daemon loop thread owns all sockets; router dispatch
runs on a small daemon worker pool.  Mutating requests across all
connections are serialized through the router lock — matching the single
simulated clock they all share — while read-only requests run
concurrently.
"""

from __future__ import annotations

import json
import selectors
import socket
import ssl
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple

from repro.api.errors import TransportApiError, ValidationApiError
from repro.api.schemas import API_VERSION, PUSH_KIND, ApiResponse
from repro.api.client import Transport
from repro.obs import component_logger

#: Error code the gateway treats as a torn optimistic read worth retrying
#: under the exclusive router lock (see the module docstring).
_RETRY_UNDER_LOCK_CODES = frozenset({"server.internal"})

#: Connection lifecycle states (loop-thread owned).
_STATE_TLS = "tls"
_STATE_OPEN = "open"
_STATE_CLOSED = "closed"

_RECV_CHUNK = 65536


class _Connection:
    """One accepted gateway connection, owned by the event loop.

    The loop thread owns the socket, the read buffer, the outgoing byte
    buffer and all selector state.  Two queues cross threads (guarded by
    ``_lock``): complete request lines waiting for a worker, and finished
    response bytes waiting for the loop to write.  Server pushes go
    through :meth:`push_frame`: a *bounded* queue of frames drained by the
    loop only when the socket can actually take bytes, so a slow or
    stalled consumer can never block the simulation thread that published
    the event.  **Slow-consumer policy** (documented in DESIGN.md):
    terminal ``job.watch`` ``end`` frames are never dropped — they bypass
    the bound entirely (at most one per subscription, so the excess is
    bounded too) and watchers always observe completion.  An *event*
    frame pushed at a full queue evicts the oldest queued event frame,
    or — when only end frames are queued — is itself the drop.  The loss
    is surfaced as a ``dropped`` counter on the next frame delivered for
    that subscription; under the usual evict-oldest path that counter
    equals the frame's ``seq`` gap (in the all-ends edge the dropped
    frame was the newest, so the counter may precede its gap).

    Frames already serialized into the outgoing buffer (the loop takes
    one push at a time, only while the buffer is drained) are committed —
    exactly like the byte the old pump thread was blocked writing.
    """

    def __init__(
        self,
        sock: socket.socket,
        push_queue_limit: int = 256,
        secure: bool = True,
        state: str = _STATE_OPEN,
    ) -> None:
        if push_queue_limit < 1:
            raise ValueError("push_queue_limit must be at least 1")
        self.sock = sock
        self.secure = secure
        self.state = state
        self.handshake_deadline: Optional[float] = None
        self.registered = False
        self.mask = 0
        # -- loop-thread only ------------------------------------------------
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.read_paused = False
        # -- cross-thread (guarded by _lock) ---------------------------------
        self._lock = threading.Lock()
        self._closed = False
        self._requests: deque = deque()  # raw request lines awaiting a worker
        self._responses: deque = deque()  # encoded response bytes, in order
        self._worker_active = False
        self._push_limit = push_queue_limit
        self._push_queue: deque = deque()
        self._push_dropped: dict = {}  # subscription_id -> drops not yet surfaced
        self._loop_notify = None  # set when adopted by a gateway loop
        self.drop_counter = None  # optional metrics counter, set by the gateway

    # -- push back-pressure (any thread) -------------------------------------
    def push_frame(self, frame: dict) -> None:
        """Enqueue one push frame; never blocks on the socket.

        Raises ``OSError`` once the connection is closed (or the loop hit
        a dead socket) so the router's subscription bridge tears the
        subscription down.
        """
        with self._lock:
            if self._closed:
                raise OSError("connection closed")
            if (
                frame.get("frame") != "end"
                and len(self._push_queue) >= self._push_limit
                and not self._evict_event()
            ):
                # Only end frames queued (nothing evictable) and the
                # newcomer is an ordinary event: the newcomer is the drop.
                self._count_drop(frame)
                return
            self._push_queue.append(frame)
        if self._loop_notify is not None:
            self._loop_notify(self)

    def _count_drop(self, frame: dict) -> None:
        subscription_id = frame.get("subscription_id", 0)
        self._push_dropped[subscription_id] = (
            self._push_dropped.get(subscription_id, 0) + 1
        )
        if self.drop_counter is not None:
            self.drop_counter.inc()

    def push_queue_depth(self) -> int:
        with self._lock:
            return len(self._push_queue)

    def _evict_event(self) -> bool:
        """Evict the oldest queued *event* frame (lock held, queue full).

        End frames are never victims — a watcher must never lose its
        completion frame.  Returns ``False`` when only end frames are
        queued, in which case the caller drops the incoming event instead.
        """
        for index, frame in enumerate(self._push_queue):
            if frame.get("frame") != "end":
                self._count_drop(frame)
                del self._push_queue[index]
                return True
        return False

    def pop_push(self) -> Optional[dict]:
        """Dequeue the next push frame, folding in surfaced drop counters."""
        with self._lock:
            if not self._push_queue:
                return None
            frame = self._push_queue.popleft()
            dropped = self._push_dropped.pop(frame.get("subscription_id", 0), 0)
        if dropped:
            frame = dict(frame)
            frame["dropped"] = dropped
        return frame

    # -- request/response queues ---------------------------------------------
    def queue_requests(self, items) -> int:
        """Loop thread: append parsed request items; returns backlog size."""
        with self._lock:
            self._requests.extend(items)
            return len(self._requests)

    def claim_worker(self) -> bool:
        """Whether the caller should start a worker task (at most one runs)."""
        with self._lock:
            if self._worker_active or not self._requests:
                return False
            self._worker_active = True
            return True

    def idle_for_inline(self) -> bool:
        """Loop thread: True when no worker is active and nothing is queued,
        so fresh requests may be answered inline without reordering."""
        with self._lock:
            return (
                not self._worker_active and not self._requests and not self._closed
            )

    def next_request_batch(self, limit: int) -> Optional[list]:
        """Worker thread: next chunk of lines to execute (in arrival order),
        or ``None`` when drained (the active-worker claim is released
        atomically with the check).  Handing out a chunk rather than one
        line at a time lets the worker answer a pipelined burst with a
        single response write and a single loop wakeup — on one core the
        per-response wakeup ping-pong otherwise dominates the batch."""
        with self._lock:
            if not self._requests or self._closed:
                self._worker_active = False
                return None
            batch = []
            while self._requests and len(batch) < limit:
                batch.append(self._requests.popleft())
            return batch

    def queue_response(self, data: bytes) -> None:
        """Worker thread: hand encoded response bytes back to the loop."""
        with self._lock:
            if self._closed:
                return
            self._responses.append(data)
        if self._loop_notify is not None:
            self._loop_notify(self)

    def drain_responses_into_outbuf(self) -> None:
        with self._lock:
            while self._responses:
                self.outbuf += self._responses.popleft()

    def backlog(self) -> int:
        with self._lock:
            return len(self._requests)

    def has_pushes(self) -> bool:
        with self._lock:
            return bool(self._push_queue)

    # -- teardown -------------------------------------------------------------
    def mark_closed(self) -> None:
        with self._lock:
            self._closed = True
            self._push_queue.clear()
            self._requests.clear()
            self._responses.clear()

    def shutdown(self) -> None:
        """Unblock the peer's reads (EOF) ahead of the loop's close."""
        self.mark_closed()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # peer already gone

    def close(self) -> None:
        self.mark_closed()
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


class ApiGateway:
    """Serve an :class:`~repro.api.router.ApiRouter` over newline-delimited JSON.

    Parameters
    ----------
    router:
        The operation router; shared state (subscriptions) lives there.
    host / port:
        Bind address; port 0 picks a free one.
    tls_context:
        Server-side ``ssl.SSLContext``; when set every accepted connection
        is wrapped before the first byte is read (handshake driven
        non-blocking on the loop), and connections count as secure for the
        HTTPS-only rule.
    assume_https:
        How plaintext connections are presented to the router: ``True``
        (default) treats them as a terminated-TLS stand-in — the historical
        behaviour; ``False`` reports them insecure, so an HTTPS-only user
        registry refuses authentication over them.
    push_queue_limit:
        Bound of the per-connection push queue (slow-consumer
        back-pressure).  A consumer that cannot keep up loses its *oldest*
        queued event frames; the loss is surfaced as a ``dropped`` counter
        on the next frame it does receive.
    worker_threads:
        Size of the dispatch pool.  Requests from one connection always
        execute serially in arrival order; the pool bounds how many
        *connections* execute concurrently.
    """

    #: Longest a TLS handshake may take before the connection is dropped.
    TLS_HANDSHAKE_TIMEOUT_S = 10.0

    #: Unanswered requests one connection may pipeline before its reads
    #: are paused (resumed once the backlog halves).
    MAX_PIPELINE_DEPTH = 1024

    #: Largest all-read-only burst the loop thread answers inline; bigger
    #: bursts go to the worker pool so one connection cannot starve others.
    INLINE_BATCH_MAX = 256

    def __init__(
        self,
        router,
        host: str = "127.0.0.1",
        port: int = 0,
        tls_context: Optional[ssl.SSLContext] = None,
        assume_https: bool = True,
        push_queue_limit: int = 256,
        worker_threads: int = 4,
    ) -> None:
        # Validate here, not per accepted connection: a bad limit must
        # fail the operator at startup, not kill live connections.
        if push_queue_limit < 1:
            raise ValueError("push_queue_limit must be at least 1")
        if worker_threads < 1:
            raise ValueError("worker_threads must be at least 1")
        self._router = router
        self._host = host
        self._requested_port = port
        self._tls_context = tls_context
        self._assume_https = assume_https
        self._push_queue_limit = push_queue_limit
        self._worker_threads = worker_threads
        self._listener: Optional[socket.socket] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._wake_r: Optional[socket.socket] = None
        self._wake_w: Optional[socket.socket] = None
        self._router_lock = threading.Lock()
        self._dirty_lock = threading.Lock()
        self._dirty: set = set()
        self._adoptions: deque = deque()
        self._connections: set = set()  # loop thread only (post-start)
        self._running = False
        self._log = component_logger("repro.api.gateway")
        # Telemetry rides on the access server's registry when the router is
        # wired to one; a router-less gateway (tests) runs dark.
        self._obs = getattr(getattr(router, "server", None), "obs", None)
        self._init_metrics()

    def _init_metrics(self) -> None:
        obs = self._obs
        if obs is None:
            self._m_push_drops = None
            return
        registry = obs.registry
        self._m_conns_total = registry.counter(
            "gateway_connections_total", "Connections accepted since start."
        ).labels()
        self._g_conns_open = registry.gauge(
            "gateway_connections_open", "Currently established connections."
        ).labels()
        handshakes = registry.counter(
            "gateway_tls_handshakes_total",
            "Completed TLS handshakes by outcome.",
            labelnames=("outcome",),
        )
        self._m_handshake_ok = handshakes.labels(outcome="ok")
        self._m_handshake_failed = handshakes.labels(outcome="failed")
        self._m_handshake_reaps = registry.counter(
            "gateway_tls_handshake_reaps_total",
            "Connections dropped for exceeding the TLS handshake deadline.",
        ).labels()
        requests = registry.counter(
            "gateway_requests_total",
            "Request lines dispatched, by execution mode.",
            labelnames=("mode",),
        )
        self._m_requests_inline = requests.labels(mode="inline")
        self._m_requests_worker = requests.labels(mode="worker")
        batches = registry.histogram(
            "gateway_batch_seconds",
            "Wall time answering one request batch, by execution mode.",
            labelnames=("mode",),
        )
        self._m_batch_inline = batches.labels(mode="inline")
        self._m_batch_worker = batches.labels(mode="worker")
        self._g_backlog = registry.gauge(
            "gateway_pipeline_backlog",
            "Unanswered pipelined requests on the most recently serviced connection.",
        ).labels()
        self._m_read_pauses = registry.counter(
            "gateway_read_pauses_total",
            "Times a connection's reads were paused for pipeline back-pressure.",
        ).labels()
        self._m_push_drops = registry.counter(
            "gateway_push_drops_total",
            "Push frames dropped by slow-consumer back-pressure.",
        ).labels()
        self._g_push_depth = registry.gauge(
            "gateway_push_queue_depth", "Queued push frames across connections."
        ).labels()
        registry.add_collect_hook(self._collect_gateway_gauges)

    def _collect_gateway_gauges(self) -> None:
        depth = 0
        try:
            for connection in list(self._connections):
                depth += connection.push_queue_depth()
        except RuntimeError:  # set mutated mid-scrape; next scrape catches up
            pass
        self._g_push_depth.set(float(depth))
        self._g_conns_open.set(float(len(self._connections)))

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; only meaningful after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("gateway is not started")
        return self._listener.getsockname()[:2]

    @property
    def running(self) -> bool:
        return self._running

    @property
    def tls_enabled(self) -> bool:
        return self._tls_context is not None

    @property
    def router_lock(self) -> threading.Lock:
        """The lock serializing *mutating* requests through the router.

        Anything that mutates the access server *outside* a gateway request
        — e.g. a host loop driving ``run_queue()`` while remote clients
        submit — must hold this lock for each mutation burst, or a request
        landing mid-dispatch races the single-threaded simulation state.
        Read-only operations run without it (see the module docstring).
        """
        return self._router_lock

    def start(self) -> Tuple[str, int]:
        """Bind, listen and serve on the loop thread; returns the address."""
        if self._running:
            return self.address
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._requested_port))
        listener.listen(128)
        listener.setblocking(False)
        self._listener = listener
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, "listener")
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wakeup")
        self._pool = ThreadPoolExecutor(
            max_workers=self._worker_threads,
            thread_name_prefix="batterylab-gw-worker",
        )
        self._running = True
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="batterylab-gateway-loop", daemon=True
        )
        self._loop_thread.start()
        return self.address

    def stop(self) -> None:
        """Stop serving: no new connections, established connections dropped.

        Active streaming subscriptions are cancelled *first*, so a client
        blocked in a ``job.watch`` read cannot keep the event bus pushing
        into sockets that are about to close, and the blocked reader itself
        is unblocked by the connection shutdown (EOF) — stop() never waits
        on a watcher.
        """
        self._running = False
        if hasattr(self._router, "close_all_subscriptions"):
            self._router.close_all_subscriptions()
        self._wake()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=2.0)
            self._loop_thread = None
        if self._pool is not None:
            # Workers mid-handler finish on their own time; their response
            # bytes land on closed connections and are discarded.
            self._pool.shutdown(wait=False)
            self._pool = None
        self._listener = None

    def __enter__(self) -> "ApiGateway":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- loop plumbing -------------------------------------------------------
    def _wake(self) -> None:
        wake_w = self._wake_w
        if wake_w is None:
            return
        try:
            wake_w.send(b"\0")
        except (BlockingIOError, OSError):
            pass  # a pending wake byte already does the job / loop gone

    def _notify(self, connection: _Connection) -> None:
        """Any thread: mark a connection as needing loop service."""
        with self._dirty_lock:
            self._dirty.add(connection)
        self._wake()

    def _adopt_socket(
        self,
        sock: socket.socket,
        push_queue_limit: Optional[int] = None,
        secure: bool = True,
    ) -> _Connection:
        """Hand an already-connected socket to the loop (tests, tooling)."""
        connection = _Connection(
            sock,
            push_queue_limit=push_queue_limit or self._push_queue_limit,
            secure=secure,
        )
        connection._loop_notify = self._notify
        connection.drop_counter = self._m_push_drops
        self._adoptions.append(connection)
        self._wake()
        return connection

    def _run_loop(self) -> None:
        selector = self._selector
        while self._running:
            timeout = 0.5 if any(
                c.state == _STATE_TLS for c in self._connections
            ) else None
            try:
                events = selector.select(timeout)
            except OSError:  # pragma: no cover - selector torn down
                break
            if not self._running:
                break
            for key, mask in events:
                data = key.data
                if data == "listener":
                    self._accept_ready()
                elif data == "wakeup":
                    self._drain_wakeup()
                else:
                    self._service_events(data, mask)
            self._process_adoptions()
            self._process_dirty()
            self._reap_handshakes()
        self._shutdown_loop()

    def _drain_wakeup(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:  # pragma: no cover
            pass

    def _process_adoptions(self) -> None:
        while self._adoptions:
            connection = self._adoptions.popleft()
            try:
                connection.sock.setblocking(False)
            except OSError:
                connection.close()
                continue
            self._register(connection, selectors.EVENT_READ)
            self._connections.add(connection)
            self._flush(connection)

    def _process_dirty(self) -> None:
        with self._dirty_lock:
            if not self._dirty:
                return
            dirty = list(self._dirty)
            self._dirty.clear()
        for connection in dirty:
            if connection.state == _STATE_OPEN and connection.registered:
                self._flush(connection)
                self._maybe_resume_reads(connection)

    def _register(self, connection: _Connection, mask: int) -> None:
        try:
            self._selector.register(connection.sock, mask, connection)
        except (KeyError, ValueError, OSError):
            connection.close()
            return
        connection.registered = True
        connection.mask = mask

    def _set_mask(self, connection: _Connection, mask: int) -> None:
        if not connection.registered or connection.mask == mask:
            return
        try:
            self._selector.modify(connection.sock, mask, connection)
            connection.mask = mask
        except (KeyError, ValueError, OSError):
            self._teardown(connection)

    # -- accepting -----------------------------------------------------------
    def _accept_ready(self) -> None:
        while True:
            try:
                raw, _ = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed under us
            if not self._running:
                try:
                    raw.close()
                except OSError:  # pragma: no cover
                    pass
                return
            raw.setblocking(False)
            try:
                raw.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - non-TCP listener substitutes
                pass
            secure = self.tls_enabled or self._assume_https
            if self._tls_context is not None:
                try:
                    sock = self._tls_context.wrap_socket(
                        raw, server_side=True, do_handshake_on_connect=False
                    )
                except (OSError, ssl.SSLError):
                    try:
                        raw.close()
                    except OSError:  # pragma: no cover
                        pass
                    continue
                connection = _Connection(
                    sock,
                    push_queue_limit=self._push_queue_limit,
                    secure=secure,
                    state=_STATE_TLS,
                )
                connection.handshake_deadline = (
                    time.monotonic() + self.TLS_HANDSHAKE_TIMEOUT_S
                )
            else:
                connection = _Connection(
                    raw, push_queue_limit=self._push_queue_limit, secure=secure
                )
            connection._loop_notify = self._notify
            connection.drop_counter = self._m_push_drops
            self._register(connection, selectors.EVENT_READ)
            if connection.registered:
                self._connections.add(connection)
                if self._obs is not None:
                    self._m_conns_total.inc()

    # -- TLS handshake -------------------------------------------------------
    def _continue_handshake(self, connection: _Connection) -> None:
        try:
            connection.sock.do_handshake()
        except ssl.SSLWantReadError:
            self._set_mask(connection, selectors.EVENT_READ)
            return
        except ssl.SSLWantWriteError:
            self._set_mask(connection, selectors.EVENT_WRITE)
            return
        except (OSError, ssl.SSLError):
            # Failed handshake (plaintext probe, bad cipher): the peer
            # never reached the API; just drop the connection.
            if self._obs is not None:
                self._m_handshake_failed.inc()
            self._teardown(connection, silent=True)
            return
        connection.state = _STATE_OPEN
        connection.handshake_deadline = None
        if self._obs is not None:
            self._m_handshake_ok.inc()
        self._set_mask(connection, selectors.EVENT_READ)

    def _reap_handshakes(self) -> None:
        deadline_now = None
        for connection in list(self._connections):
            if connection.state != _STATE_TLS:
                continue
            if deadline_now is None:
                deadline_now = time.monotonic()
            if (
                connection.handshake_deadline is not None
                and deadline_now >= connection.handshake_deadline
            ):
                if self._obs is not None:
                    self._m_handshake_reaps.inc()
                self._log.warning("TLS handshake timed out; connection reaped")
                self._teardown(connection, silent=True)

    # -- per-connection events ----------------------------------------------
    def _service_events(self, connection: _Connection, mask: int) -> None:
        if connection.state == _STATE_CLOSED:
            return
        if connection.state == _STATE_TLS:
            self._continue_handshake(connection)
            return
        if mask & selectors.EVENT_READ:
            self._on_readable(connection)
        if connection.state == _STATE_OPEN and mask & selectors.EVENT_WRITE:
            self._flush(connection)

    def _on_readable(self, connection: _Connection) -> None:
        while True:
            try:
                chunk = connection.sock.recv(_RECV_CHUNK)
            except (ssl.SSLWantReadError, ssl.SSLWantWriteError):
                break
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._teardown(connection)
                return
            if not chunk:
                self._teardown(connection)
                return
            connection.inbuf += chunk
            if len(chunk) < _RECV_CHUNK and not isinstance(
                connection.sock, ssl.SSLSocket
            ):
                break
        self._consume_lines(connection)

    def _consume_lines(self, connection: _Connection) -> None:
        buf = connection.inbuf
        end = buf.rfind(b"\n")
        if end < 0:
            return
        lines = [line for line in bytes(buf[: end + 1]).split(b"\n") if line.strip()]
        del buf[: end + 1]
        if not lines:
            return
        # Requests parse on the loop thread, once; workers receive parsed
        # ``(request, error_response)`` items.
        items = [self._parse_line(line) for line in lines]
        obs_on = self._obs is not None and self._obs.registry.enabled
        if self._inline_eligible(items) and connection.idle_for_inline():
            # All-read-only burst on an idle connection: answer inline and
            # skip the loop<->worker handoff entirely.  On one core the GIL
            # handoff latency, not the dispatch, dominates a pipelined
            # batch — this is the gateway's hot path.  Telemetry here is
            # per-batch (one observe + one inc), not per-request, to keep
            # the overhead budget.
            batch_t0 = time.perf_counter()
            out = bytearray()
            for request, _ in items:
                response = self._dispatch(
                    request, connection, connection.secure, read_only=True
                )
                out += json.dumps(response).encode("utf-8")
                out += b"\n"
            # Loop-owned buffers: append directly, no queue lock or wakeup.
            connection.drain_responses_into_outbuf()
            connection.outbuf += out
            if obs_on:
                self._m_requests_inline.inc(float(len(items)))
                self._m_batch_inline.observe(time.perf_counter() - batch_t0)
            self._flush(connection)
            return
        backlog = connection.queue_requests(items)
        if obs_on:
            self._g_backlog.set(float(backlog))
        if backlog >= self.MAX_PIPELINE_DEPTH and not connection.read_paused:
            connection.read_paused = True
            if obs_on:
                self._m_read_pauses.inc()
            self._log.warning(
                "pipeline backlog %d reached; pausing reads", backlog
            )
            self._set_mask(connection, connection.mask & ~selectors.EVENT_READ)
        if connection.claim_worker():
            self._pool.submit(self._drain_requests, connection)

    def _inline_eligible(self, items) -> bool:
        """A burst may run on the loop thread iff every request is read-only
        (dispatched lock-free, so the loop cannot block behind a slow
        mutating op), none of it can *park* (a blocking long-poll such as
        ``agent.poll`` on the loop thread would freeze every connection),
        and the burst is small enough not to starve other connections."""
        if len(items) > self.INLINE_BATCH_MAX:
            return False
        is_read_only = getattr(self._router, "is_read_only", None)
        if is_read_only is None:
            return False
        is_blocking = getattr(self._router, "is_blocking", None)
        return all(
            error is None
            and is_read_only(request.get("op"))
            and not (is_blocking is not None and is_blocking(request.get("op")))
            for request, error in items
        )

    def _maybe_resume_reads(self, connection: _Connection) -> None:
        if (
            connection.read_paused
            and connection.backlog() < self.MAX_PIPELINE_DEPTH // 2
        ):
            connection.read_paused = False
            self._set_mask(connection, connection.mask | selectors.EVENT_READ)

    # -- writing -------------------------------------------------------------
    def _flush(self, connection: _Connection) -> None:
        connection.drain_responses_into_outbuf()
        if not self._try_send(connection):
            return
        # Pushes are serialized one frame at a time, only while the buffer
        # is drained — anything still queued stays evictable under the
        # back-pressure bound.
        while not connection.outbuf:
            frame = connection.pop_push()
            if frame is None:
                break
            connection.outbuf += json.dumps(frame).encode("utf-8") + b"\n"
            if not self._try_send(connection):
                return
        want_write = bool(connection.outbuf)
        mask = connection.mask
        new_mask = mask | selectors.EVENT_WRITE if want_write else mask & ~selectors.EVENT_WRITE
        self._set_mask(connection, new_mask)

    def _try_send(self, connection: _Connection) -> bool:
        """Write as much of the outgoing buffer as the socket takes.

        Returns ``False`` when the connection died (and was torn down).
        """
        outbuf = connection.outbuf
        while outbuf:
            try:
                sent = connection.sock.send(outbuf)
            except (ssl.SSLWantWriteError, ssl.SSLWantReadError):
                break
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._teardown(connection)
                return False
            if sent <= 0:
                break
            del outbuf[:sent]
        return True

    # -- dispatch (worker threads) -------------------------------------------
    #: Request lines one worker pass answers with a single response write.
    WORKER_BATCH = 128

    def _drain_requests(self, connection: _Connection) -> None:
        obs_on = self._obs is not None and self._obs.registry.enabled
        while True:
            batch = connection.next_request_batch(self.WORKER_BATCH)
            if batch is None:
                return
            batch_t0 = time.perf_counter()
            out = bytearray()
            for request, error in batch:
                if error is not None:
                    response = error
                else:
                    response = self._dispatch(request, connection, connection.secure)
                out += json.dumps(response).encode("utf-8")
                out += b"\n"
            if obs_on:
                self._m_requests_worker.inc(float(len(batch)))
                self._m_batch_worker.observe(time.perf_counter() - batch_t0)
            connection.queue_response(bytes(out))

    def _parse_line(self, line: bytes):
        """Loop thread: parse one request line into ``(request, None)`` or
        ``(None, error_response)`` for malformed input."""
        try:
            request = json.loads(line)
        except (UnicodeDecodeError, json.JSONDecodeError, ValueError) as exc:
            error = ValidationApiError(f"request line is not valid JSON: {exc}")
            return None, ApiResponse(
                ok=False, version=API_VERSION, request_id=0, error=error.to_wire()
            ).to_wire()
        if not isinstance(request, dict):
            error = ValidationApiError("request line must be a JSON object")
            return None, ApiResponse(
                ok=False, version=API_VERSION, request_id=0, error=error.to_wire()
            ).to_wire()
        return request, None

    def _dispatch(
        self,
        request: dict,
        connection: _Connection,
        secure: bool,
        read_only: Optional[bool] = None,
    ) -> dict:
        router = self._router
        if read_only is None:
            checker = getattr(router, "is_read_only", None)
            read_only = bool(checker and checker(request.get("op")))
        if read_only and request.get("trace_id") is not None:
            # A client-traced read mints spans in the router, and span
            # records publish on the (single-threaded) event bus — run it
            # under the exclusive lock like a mutation so bus publishes
            # stay serialized.  Untraced reads keep the lock-free path.
            read_only = False
        if read_only:
            # Optimistic read: no lock, concurrent with mutating ops.  A
            # torn iteration surfaces as server.internal — retry once with
            # the exclusive lock for a consistent snapshot.
            response = router.handle(
                request, push=connection.push_frame, owner=connection, secure=secure
            )
            error = response.get("error")
            if (
                isinstance(error, dict)
                and error.get("code") in _RETRY_UNDER_LOCK_CODES
            ):
                with self._router_lock:
                    response = router.handle(
                        request,
                        push=connection.push_frame,
                        owner=connection,
                        secure=secure,
                    )
            return response
        with self._router_lock:
            obs = self._obs
            span = None
            if obs is not None and obs.tracer.enabled:
                span = obs.tracer.start_span(
                    "gateway.request",
                    trace_id=request.get("trace_id"),
                    op=request.get("op"),
                )
                # Thread the trace through the router so every downstream
                # span (router, job lifecycle) shares this trace ID.
                request = dict(request)
                request["trace_id"] = span.trace_id
            response = router.handle(
                request, push=connection.push_frame, owner=connection, secure=secure
            )
            if span is not None:
                obs.tracer.end_span(
                    span, status="ok" if response.get("ok") else "error"
                )
            return response

    # -- teardown ------------------------------------------------------------
    def _teardown(self, connection: _Connection, silent: bool = False) -> None:
        if connection.state == _STATE_CLOSED:
            return
        connection.state = _STATE_CLOSED
        connection.mark_closed()
        if connection.registered:
            try:
                self._selector.unregister(connection.sock)
            except (KeyError, ValueError, OSError):  # pragma: no cover
                pass
            connection.registered = False
        if not silent and hasattr(self._router, "cancel_owner"):
            # The connection's subscriptions die with it: the event bus
            # must never keep pushing into a socket that is gone.
            self._router.cancel_owner(connection)
        try:
            connection.sock.close()
        except OSError:  # pragma: no cover
            pass
        self._connections.discard(connection)

    def _shutdown_loop(self) -> None:
        for connection in list(self._connections):
            # shutdown() before close(): EOF unblocks peers mid-read, so a
            # blocked job.watch reader cannot hang on a vanished gateway.
            connection.shutdown()
            self._teardown(connection)
        for sock in (self._listener, self._wake_r, self._wake_w):
            if sock is None:
                continue
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        self._wake_r = None
        self._wake_w = None
        try:
            self._selector.close()
        except OSError:  # pragma: no cover
            pass
        self._selector = None


class JsonLinesTransport(Transport):
    """Client transport speaking the gateway's newline-delimited JSON.

    With ``tls_context`` set the connection is wrapped in TLS before any
    envelope travels; pair it with
    :func:`repro.accessserver.certificates.client_tls_context` to trust the
    platform's wildcard certificate.  ``server_hostname`` is what the
    certificate is checked against (defaults to the connect host — pass the
    vantage-point DNS name when connecting by IP).

    Push frames (``kind: "push"``) may arrive interleaved with responses;
    they are demultiplexed into per-subscription buffers.  ``recv_push``
    drains the buffer first and then *blocks* on the socket — this is a
    streaming-capable transport.

    :meth:`send_many` pipelines a batch of requests over the connection —
    one write, responses read back in request order — amortizing the
    per-request network round trip the serial :meth:`send` pays.
    """

    #: :meth:`send` transparently reconnects and *resends* once after a
    #: connection drop, so a request may reach the server twice.  Clients
    #: key mutating calls (see ``BatteryLabClient.submit_job``) off this.
    supports_reconnect = True

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        tls_context: Optional[ssl.SSLContext] = None,
        server_hostname: Optional[str] = None,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout_s = timeout_s
        self._tls_context = tls_context
        self._server_hostname = server_hostname or host
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._push_buffers: dict = {}

    def _connect(self) -> None:
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout_s
            )
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover
                pass
            if self._tls_context is not None:
                sock = self._tls_context.wrap_socket(
                    sock, server_hostname=self._server_hostname
                )
        except (OSError, ssl.SSLError) as exc:
            raise TransportApiError(
                f"cannot reach gateway at {self._host}:{self._port}: {exc}",
                details={"host": self._host, "port": self._port},
            ) from None
        self._sock = sock
        self._reader = sock.makefile("rb")

    def _read_frame(self) -> Optional[dict]:
        """One parsed frame off the wire; ``None`` on orderly EOF."""
        line = self._reader.readline()
        if not line:
            return None
        try:
            frame = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TransportApiError(f"gateway sent an invalid frame: {exc}") from None
        if not isinstance(frame, dict):
            raise TransportApiError("gateway sent a non-object frame")
        return frame

    def _buffer_push(self, frame: dict) -> None:
        subscription_id = frame.get("subscription_id", 0)
        self._push_buffers.setdefault(subscription_id, []).append(frame)

    def send(self, request: dict) -> dict:
        try:
            frame = json.dumps(request).encode("utf-8") + b"\n"
        except (TypeError, ValueError) as exc:
            raise TransportApiError(f"request is not JSON-serializable: {exc}") from None
        # One transparent reconnect: a server-side idle close between calls
        # must not fail an otherwise healthy client.
        for attempt in (0, 1):
            if self._sock is None:
                self._connect()
            try:
                self._sock.sendall(frame)
                response = self._read_response()
                if response is not None:
                    return response
                self.close()  # orderly server EOF: reconnect once
            except OSError as exc:
                self.close()
                if attempt:
                    raise TransportApiError(
                        f"gateway connection failed: {exc}",
                        details={"host": self._host, "port": self._port},
                    ) from None
        raise TransportApiError(
            "gateway closed the connection without responding",
            details={"host": self._host, "port": self._port},
        )

    def send_many(self, requests) -> list:
        """Pipeline ``requests`` (wire dicts) and return their responses.

        All requests go out in one write; the gateway answers them in
        order.  Interleaved push frames are buffered exactly as in
        :meth:`send`.  One transparent reconnect is attempted if the
        connection fails before *any* response arrived; a failure
        mid-batch raises :class:`~repro.api.errors.TransportApiError`
        (callers retry whole batches — requests are not replayed
        piecemeal).
        """
        requests = list(requests)
        if not requests:
            return []
        try:
            blob = b"".join(
                json.dumps(request).encode("utf-8") + b"\n" for request in requests
            )
        except (TypeError, ValueError) as exc:
            raise TransportApiError(f"request is not JSON-serializable: {exc}") from None
        for attempt in (0, 1):
            if self._sock is None:
                self._connect()
            responses = []
            try:
                self._sock.sendall(blob)
                for _ in requests:
                    response = self._read_response()
                    if response is None:
                        raise TransportApiError(
                            "gateway closed the connection mid-batch",
                            details={"received": len(responses)},
                        )
                    responses.append(response)
                return responses
            except TransportApiError:
                self.close()
                raise
            except OSError as exc:
                self.close()
                if attempt or responses:
                    raise TransportApiError(
                        f"gateway connection failed: {exc}",
                        details={"host": self._host, "port": self._port},
                    ) from None
        raise TransportApiError(  # pragma: no cover - loop always returns/raises
            "gateway connection failed",
            details={"host": self._host, "port": self._port},
        )

    def _read_response(self) -> Optional[dict]:
        """Read until a response frame, buffering interleaved pushes."""
        while True:
            frame = self._read_frame()
            if frame is None:
                return None
            if frame.get("kind") == PUSH_KIND:
                self._buffer_push(frame)
                continue
            return frame

    def recv_push(
        self, subscription_id: int, timeout_s: Optional[float] = None
    ) -> Optional[dict]:
        buffered = self._push_buffers.get(subscription_id)
        if buffered:
            return buffered.pop(0)
        if self._sock is None or self._reader is None:
            raise TransportApiError(
                "no connection to receive pushes on; the subscription is gone"
            )
        previous_timeout = self._sock.gettimeout()
        # None means "wait as long as it takes" — override the connect
        # timeout the socket still carries, or a >30s-quiet watch would
        # spuriously fail.
        self._sock.settimeout(timeout_s)
        try:
            while True:
                frame = self._read_frame()
                if frame is None:
                    raise TransportApiError(
                        "gateway closed the connection while streaming"
                    )
                if frame.get("kind") != PUSH_KIND:
                    # A response with no request outstanding cannot happen
                    # from this (single-threaded) client; drop it.
                    continue
                if frame.get("subscription_id") == subscription_id:
                    return frame
                self._buffer_push(frame)
        except socket.timeout:
            raise TransportApiError(
                f"timed out after {timeout_s}s waiting for a push frame",
                details={"subscription_id": subscription_id},
            ) from None
        except OSError as exc:
            self.close()
            raise TransportApiError(f"gateway connection failed: {exc}") from None
        finally:
            if self._sock is not None:
                self._sock.settimeout(previous_timeout)

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:  # pragma: no cover
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None
        self._push_buffers.clear()
