"""Versioned request/response DTOs for Platform API v1.

Every object that crosses the API boundary — requests, views, the
request/response envelopes themselves — is a :class:`WireModel` dataclass
with strict ``to_wire()`` / ``from_wire()`` JSON round-tripping:

* ``to_wire()`` produces a dict containing only JSON primitives, lists and
  nested dicts, suitable for ``json.dumps`` with no custom encoder;
* ``from_wire()`` validates the payload *strictly*: unknown keys are
  rejected, required keys must be present, and every value is type-checked
  against the field annotation (the only coercion allowed is int → float).
  Fields with defaults may be omitted, which is what makes *adding* a field
  a compatible change within v1.

:data:`API_VERSION` travels in every envelope.  A server rejects versions
outside :data:`SUPPORTED_VERSIONS` with ``request.version_unsupported``, so
an incompatible client fails loudly at the first call instead of
misinterpreting payloads.  The golden tests in
``tests/test_api_schemas.py`` pin the exact wire form of every DTO; a
change that breaks them is a v1 compatibility break and needs a version
bump instead.

**Platform API v2** extends the same envelopes rather than replacing them:

* version negotiation — a request claims ``"1.0"`` or ``"2.0"``; responses
  echo the negotiated version, and v2-only operations (the admin control
  plane, streaming subscriptions, bearer sessions) are rejected on v1
  envelopes with ``request.version_unsupported``;
* v2-only envelope fields (``session`` on :class:`ApiRequest`, pagination
  on :class:`JobListRequest`, ``idempotency_key`` on
  :class:`SubmitJobRequest`) are *elided from the wire at their defaults*
  (``_ELIDE_WHEN_DEFAULT``), which is what keeps every v1 golden wire form
  byte-identical while still being parseable by the same DTO classes;
* server-pushed frames — :class:`ApiPush` carries streamed
  ``dispatch.*`` events and terminal ``job.watch`` frames, discriminated
  from responses by its always-present ``kind: "push"`` marker.
"""

from __future__ import annotations

import dataclasses
import json
import typing
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.errors import ValidationApiError

#: The v1 protocol version — still the default a bare client claims.
API_VERSION = "1.0"

#: The v2 protocol version: admin control plane, sessions, streaming.
API_VERSION_V2 = "2.0"

#: Newest version this server implements.
LATEST_API_VERSION = API_VERSION_V2

#: Versions this server accepts in request envelopes.
SUPPORTED_VERSIONS = ("1.0", "2.0")

#: Discriminator value marking a server-pushed frame (vs. a response).
PUSH_KIND = "push"

#: ``ApiPush.frame`` types: a streamed event, and the terminal frame a
#: ``job.watch`` subscription ends with (carrying the final ``JobView``).
PUSH_FRAME_EVENT = "event"
PUSH_FRAME_END = "end"


def _is_optional(hint) -> bool:
    return typing.get_origin(hint) is typing.Union and type(None) in typing.get_args(hint)


def _strip_optional(hint):
    if not _is_optional(hint):
        return hint
    args = [arg for arg in typing.get_args(hint) if arg is not type(None)]
    if len(args) != 1:
        raise TypeError(f"unsupported union type {hint!r}")
    return args[0]


def _check_value(name: str, value, hint):
    """Validate ``value`` against the field annotation, returning it converted.

    Raises :class:`ValidationApiError` on a type mismatch.  Supports the
    types wire models are built from: primitives, ``Optional``, ``List``,
    nested :class:`WireModel` subclasses, and the free-form ``object`` /
    ``dict`` escape hatches used by envelopes.
    """
    if _is_optional(hint):
        if value is None:
            return None
        return _check_value(name, value, _strip_optional(hint))
    origin = typing.get_origin(hint)
    if origin in (list, typing.List):
        if not isinstance(value, list):
            raise ValidationApiError(
                f"field {name!r} must be a list", details={"field": name}
            )
        (item_hint,) = typing.get_args(hint)
        return [_check_value(f"{name}[{i}]", item, item_hint) for i, item in enumerate(value)]
    if isinstance(hint, type) and issubclass(hint, WireModel):
        if isinstance(value, hint):
            return value
        if not isinstance(value, dict):
            raise ValidationApiError(
                f"field {name!r} must be an object", details={"field": name}
            )
        return hint.from_wire(value)
    if hint is object:
        return value
    if hint in (dict, Dict):
        if not isinstance(value, dict):
            raise ValidationApiError(
                f"field {name!r} must be an object", details={"field": name}
            )
        return value
    if hint is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValidationApiError(
                f"field {name!r} must be a number", details={"field": name}
            )
        return float(value)
    if hint is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationApiError(
                f"field {name!r} must be an integer", details={"field": name}
            )
        return value
    if hint is bool:
        if not isinstance(value, bool):
            raise ValidationApiError(
                f"field {name!r} must be a boolean", details={"field": name}
            )
        return value
    if hint is str:
        if not isinstance(value, str):
            raise ValidationApiError(
                f"field {name!r} must be a string", details={"field": name}
            )
        return value
    raise TypeError(f"unsupported wire field type {hint!r} for {name!r}")


def _wire_value(value):
    if isinstance(value, WireModel):
        return value.to_wire()
    if isinstance(value, (list, tuple)):
        return [_wire_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _wire_value(item) for key, item in value.items()}
    return value


def json_safe(value) -> bool:
    """Whether ``value`` survives a ``json.dumps``/``loads`` round trip."""
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return False
    return True


def _field_default(f: dataclasses.Field):
    if f.default is not dataclasses.MISSING:
        return f.default
    if f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return f.default_factory()  # type: ignore[misc]
    return dataclasses.MISSING


def _compile_checker(hint):
    """Build a ``check(name, value) -> converted`` closure for one annotation.

    The closure reproduces :func:`_check_value` exactly (same coercions, same
    :class:`ValidationApiError` messages) with the ``typing`` introspection
    hoisted out of the per-call path — the checker is built once per field
    when a class's codec is compiled.
    """
    if _is_optional(hint):
        inner = _compile_checker(_strip_optional(hint))

        def check_optional(name, value):
            if value is None:
                return None
            return inner(name, value)

        return check_optional
    origin = typing.get_origin(hint)
    if origin in (list, typing.List):
        (item_hint,) = typing.get_args(hint)
        item_check = _compile_checker(item_hint)

        def check_list(name, value):
            if not isinstance(value, list):
                raise ValidationApiError(
                    f"field {name!r} must be a list", details={"field": name}
                )
            return [item_check(f"{name}[{i}]", item) for i, item in enumerate(value)]

        return check_list
    if isinstance(hint, type) and issubclass(hint, WireModel):

        def check_model(name, value):
            if isinstance(value, hint):
                return value
            if not isinstance(value, dict):
                raise ValidationApiError(
                    f"field {name!r} must be an object", details={"field": name}
                )
            return hint.from_wire(value)

        return check_model
    if hint is object:
        return lambda name, value: value
    if hint in (dict, Dict):

        def check_dict(name, value):
            if not isinstance(value, dict):
                raise ValidationApiError(
                    f"field {name!r} must be an object", details={"field": name}
                )
            return value

        return check_dict
    if hint is float:

        def check_float(name, value):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValidationApiError(
                    f"field {name!r} must be a number", details={"field": name}
                )
            return float(value)

        return check_float
    if hint is int:

        def check_int(name, value):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValidationApiError(
                    f"field {name!r} must be an integer", details={"field": name}
                )
            return value

        return check_int
    if hint is bool:

        def check_bool(name, value):
            if not isinstance(value, bool):
                raise ValidationApiError(
                    f"field {name!r} must be a boolean", details={"field": name}
                )
            return value

        return check_bool
    if hint is str:

        def check_str(name, value):
            if not isinstance(value, str):
                raise ValidationApiError(
                    f"field {name!r} must be a string", details={"field": name}
                )
            return value

        return check_str

    def check_unsupported(name, value):
        raise TypeError(f"unsupported wire field type {hint!r} for {name!r}")

    return check_unsupported


class _WireCodec:
    """Per-class compiled wire schema: one tuple walk per call, no ``typing``."""

    __slots__ = ("known", "to_wire_plan", "from_wire_plan")

    def __init__(self, cls):
        hints = cls._hints()
        elide = set(cls._ELIDE_WHEN_DEFAULT)
        fields = dataclasses.fields(cls)
        self.known = frozenset(f.name for f in fields)
        # (name, elide_default | MISSING) — MISSING means "always emit".
        self.to_wire_plan = tuple(
            (
                f.name,
                _field_default(f) if f.name in elide else dataclasses.MISSING,
            )
            for f in fields
        )
        # (name, checker, required)
        self.from_wire_plan = tuple(
            (
                f.name,
                _compile_checker(hints[f.name]),
                f.default is dataclasses.MISSING
                and f.default_factory is dataclasses.MISSING,  # type: ignore[misc]
            )
            for f in fields
        )


class WireModel:
    """Base class giving every DTO strict ``to_wire`` / ``from_wire``.

    Subclasses are plain dataclasses; the wire form is derived from the
    dataclass fields and their type annotations, so the dataclass *is* the
    schema.

    ``_ELIDE_WHEN_DEFAULT`` names fields that are *omitted* from
    ``to_wire()`` while they hold their default value.  This is the v2
    extension mechanism: a field added to a v1 DTO under this rule leaves
    every pre-existing wire form byte-identical (``from_wire`` already
    tolerates omitted defaulted fields), so v1 golden tests keep passing
    while v2 clients can set — and see — the new field.
    """

    _ELIDE_WHEN_DEFAULT: tuple = ()

    @classmethod
    def _hints(cls) -> Dict[str, object]:
        cached = cls.__dict__.get("_hints_cache")
        if cached is None:
            cached = typing.get_type_hints(cls)
            cls._hints_cache = cached
        return cached

    @classmethod
    def _codec(cls) -> _WireCodec:
        # Cached on the concrete class (cls.__dict__, not attribute lookup,
        # so subclasses never inherit a parent's compiled plan).
        codec = cls.__dict__.get("_codec_cache")
        if codec is None:
            codec = _WireCodec(cls)
            cls._codec_cache = codec
        return codec

    def to_wire(self) -> Dict[str, object]:
        wire: Dict[str, object] = {}
        wv = _wire_value
        for name, elide_default in self._codec().to_wire_plan:
            value = getattr(self, name)
            if elide_default is not dataclasses.MISSING and value == elide_default:
                continue
            wire[name] = wv(value)
        return wire

    @classmethod
    def from_wire(cls, data: Dict[str, object]) -> "WireModel":
        if not isinstance(data, dict):
            raise ValidationApiError(
                f"{cls.__name__} payload must be an object",
                details={"schema": cls.__name__},
            )
        codec = cls._codec()
        if not data.keys() <= codec.known:
            unknown = sorted(set(data) - codec.known)
            raise ValidationApiError(
                f"{cls.__name__} does not accept field(s) {', '.join(map(repr, unknown))}",
                details={"schema": cls.__name__, "unknown_fields": unknown},
            )
        kwargs = {}
        for name, check, required in codec.from_wire_plan:
            if name in data:
                kwargs[name] = check(name, data[name])
            elif required:
                raise ValidationApiError(
                    f"{cls.__name__} is missing required field {name!r}",
                    details={"schema": cls.__name__, "missing_field": name},
                )
        return cls(**kwargs)


# ---------------------------------------------------------------------------
# Job DTOs
# ---------------------------------------------------------------------------


@dataclass
class JobConstraintsV1(WireModel):
    """Wire form of :class:`repro.accessserver.jobs.JobConstraints`.

    ``device_count`` / ``connector`` (v2, agent-pull) are elided at their
    defaults so every v1 golden wire form stays byte-identical.
    """

    _ELIDE_WHEN_DEFAULT = ("device_count", "connector")

    vantage_point: Optional[str] = None
    device_serial: Optional[str] = None
    connectivity: Optional[str] = None
    require_low_controller_cpu: bool = False
    max_controller_cpu_percent: float = 50.0
    device_count: int = 1
    connector: Optional[str] = None

    def to_domain(self):
        from repro.accessserver.jobs import JobConstraints

        return JobConstraints(
            vantage_point=self.vantage_point,
            device_serial=self.device_serial,
            connectivity=self.connectivity,
            require_low_controller_cpu=self.require_low_controller_cpu,
            max_controller_cpu_percent=self.max_controller_cpu_percent,
            device_count=self.device_count,
            connector=self.connector,
        )

    @classmethod
    def from_domain(cls, constraints) -> "JobConstraintsV1":
        return cls(
            vantage_point=constraints.vantage_point,
            device_serial=constraints.device_serial,
            connectivity=constraints.connectivity,
            require_low_controller_cpu=constraints.require_low_controller_cpu,
            max_controller_cpu_percent=constraints.max_controller_cpu_percent,
            device_count=constraints.device_count,
            connector=constraints.connector,
        )


@dataclass
class SubmitJobRequest(WireModel):
    """``job.submit`` request: everything needed to create one job.

    ``payload`` names a callable registered server-side with
    :func:`repro.accessserver.persistence.register_payload` — Python
    callables cannot cross a JSON wire, so the payload catalogue is the
    remote-able contract (exactly as journaled jobs already work).
    ``owner`` defaults to the authenticated user; submitting on behalf of
    someone else requires the admin role.

    ``idempotency_key`` (v2) makes retries safe over flaky transports:
    resubmitting the same ``(owner, key)`` pair returns the original job's
    view instead of enqueueing a duplicate.  ``execution`` (v2) selects
    push (server executor) or ``"agent"`` (parked for daemon pull).  Both
    are elided from the wire at their defaults, so v1 clients and goldens
    are untouched.
    """

    _ELIDE_WHEN_DEFAULT = ("idempotency_key", "execution")

    name: str
    payload: str
    owner: Optional[str] = None
    description: str = ""
    priority: float = 0.0
    timeout_s: float = 3600.0
    is_pipeline_change: bool = False
    log_retention_days: float = 7.0
    constraints: JobConstraintsV1 = field(default_factory=JobConstraintsV1)
    idempotency_key: Optional[str] = None
    execution: str = "push"


@dataclass
class JobView(WireModel):
    """``job.submit`` / ``job.status`` response: one job's public state."""

    job_id: int
    name: str
    owner: str
    status: str
    priority: float = 0.0
    timeout_s: float = 3600.0
    is_pipeline_change: bool = False
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    vantage_point: Optional[str] = None
    device_serial: Optional[str] = None
    error: Optional[str] = None

    @classmethod
    def from_job(cls, job) -> "JobView":
        return cls(
            job_id=job.job_id,
            name=job.spec.name,
            owner=job.spec.owner,
            status=job.status.value,
            priority=job.spec.priority,
            timeout_s=job.spec.timeout_s,
            is_pipeline_change=job.spec.is_pipeline_change,
            submitted_at=job.submitted_at,
            started_at=job.started_at,
            finished_at=job.finished_at,
            vantage_point=job.assigned_vantage_point,
            device_serial=job.assigned_device,
            error=job.error,
        )


@dataclass
class JobResultsView(WireModel):
    """``job.results`` response: outcome, logs and workspace inventory.

    ``result`` carries the payload's return value when it is JSON-safe
    (dicts of numbers, row lists, strings, ...); otherwise it is ``None``
    and ``result_repr`` still shows what the payload produced.
    """

    job_id: int
    status: str
    result: object = None
    result_repr: Optional[str] = None
    error: Optional[str] = None
    log_lines: List[str] = field(default_factory=list)
    artifact_names: List[str] = field(default_factory=list)

    @classmethod
    def from_job(cls, job) -> "JobResultsView":
        result = job.result if json_safe(job.result) else None
        return cls(
            job_id=job.job_id,
            status=job.status.value,
            result=result,
            result_repr=repr(job.result) if job.result is not None else None,
            error=job.error,
            log_lines=list(job.log_lines),
            artifact_names=job.workspace.names(),
        )


@dataclass
class JobRef(WireModel):
    """``job.status`` / ``job.cancel`` / ``job.results`` request: one job id."""

    job_id: int


@dataclass
class JobListRequest(WireModel):
    """``job.list`` request; ``status`` optionally filters by state name.

    v2 adds owner filtering and pagination so a fleet-scale queue is never
    shipped whole: ``limit``/``offset`` window the (id-ordered) result and
    the response reports the pre-window ``total``.  All three fields are
    elided at their defaults, keeping the v1 wire form intact.
    """

    _ELIDE_WHEN_DEFAULT = ("owner", "limit", "offset")

    status: Optional[str] = None
    owner: Optional[str] = None
    limit: Optional[int] = None
    offset: int = 0


# ---------------------------------------------------------------------------
# Sessions, credits, fleet, status
# ---------------------------------------------------------------------------


@dataclass
class ReserveSessionRequest(WireModel):
    """``session.reserve`` request: a timed interactive slot on one device."""

    vantage_point: str
    device_serial: str
    start_s: float
    duration_s: float


@dataclass
class ReservationView(WireModel):
    """``session.reserve`` response: the booked slot."""

    reservation_id: int
    username: str
    vantage_point: str
    device_serial: str
    start_s: float
    duration_s: float
    end_s: float

    @classmethod
    def from_reservation(cls, reservation) -> "ReservationView":
        return cls(
            reservation_id=reservation.reservation_id,
            username=reservation.username,
            vantage_point=reservation.vantage_point,
            device_serial=reservation.device_serial,
            start_s=reservation.start_s,
            duration_s=reservation.duration_s,
            end_s=reservation.start_s + reservation.duration_s,
        )


@dataclass
class CreditView(WireModel):
    """``credits.balance`` response: one account's standing."""

    owner: str
    balance_device_hours: float
    contributes_hardware: bool = False
    transaction_count: int = 0

    @classmethod
    def from_account(cls, account) -> "CreditView":
        return cls(
            owner=account.owner,
            balance_device_hours=account.balance_device_hours,
            contributes_hardware=account.contributes_hardware,
            transaction_count=len(account.transactions),
        )


@dataclass
class CreditQuery(WireModel):
    """``credits.balance`` request; admins may name another ``owner``."""

    owner: Optional[str] = None


@dataclass
class DeviceView(WireModel):
    """One test device slot as seen by the dispatcher.

    ``held_by`` (v2, elided when unset) names the agent whose lease holds
    this slot, so ``fleet`` output distinguishes agent-held devices from
    push-dispatched ones.
    """

    _ELIDE_WHEN_DEFAULT = ("held_by",)

    serial: str
    busy: bool = False
    held_by: Optional[str] = None


@dataclass
class VantagePointView(WireModel):
    """One registered vantage point and its device inventory."""

    name: str
    institution: str
    dns_name: str
    approved: bool = True
    devices: List[DeviceView] = field(default_factory=list)


@dataclass
class FleetView(WireModel):
    """``fleet.list`` response: every vantage point with live busy flags."""

    vantage_points: List[VantagePointView] = field(default_factory=list)

    def device_serials(self) -> List[str]:
        return [d.serial for vp in self.vantage_points for d in vp.devices]


@dataclass
class JournalHealthView(WireModel):
    """Write-ahead journal health inside ``server.status`` (v2 addition).

    ``records`` is the journal's lifetime sequence number;
    ``records_since_snapshot`` is the replay cost a crash right now would
    pay, and ``last_snapshot_at`` (simulated time) shows compaction lag —
    the remote operator's view of the durability subsystem.
    """

    records: int = 0
    records_since_snapshot: int = 0
    snapshots_written: int = 0
    last_snapshot_at: Optional[float] = None


@dataclass
class StatusView(WireModel):
    """``server.status`` response: platform-wide operational state.

    ``orphaned_jobs`` lists queued/pending job ids pinned to a vantage
    point that is *not currently registered* — after crash recovery these
    are the journaled jobs waiting for an operator to re-register the
    topology (``orphaned_vantage_points`` names what is missing).

    ``journal`` (v2 addition, elided when persistence is off) surfaces the
    write-ahead journal's health so operators can watch compaction lag
    remotely.

    ``shard_id`` (v2 addition, elided for the historical single-server
    deployment) names which federation shard answered — a status routed
    through the federation router reports the merged fleet and elides it.
    """

    _ELIDE_WHEN_DEFAULT = ("journal", "shard_id")

    api_version: str
    vantage_points: List[str] = field(default_factory=list)
    users: List[str] = field(default_factory=list)
    queued_jobs: int = 0
    pending_approval: int = 0
    scheduling_policy: str = "fifo"
    reservation_admission: str = "ignore"
    auto_dispatch: bool = False
    persistence: bool = False
    certificate_serial: Optional[int] = None
    orphaned_jobs: List[int] = field(default_factory=list)
    orphaned_vantage_points: List[str] = field(default_factory=list)
    journal: Optional[JournalHealthView] = None
    shard_id: Optional[str] = None


# ---------------------------------------------------------------------------
# Envelopes
# ---------------------------------------------------------------------------


@dataclass
class AuthCredentials(WireModel):
    """Per-request credentials; the gateway is stateless by design."""

    username: str
    token: str


@dataclass
class ApiRequest(WireModel):
    """The request envelope every transport carries.

    v2 requests may replace the per-request ``auth`` credentials with a
    bearer ``session`` token obtained from ``auth.login``.  ``trace_id``
    lets a caller supply its own trace identifier so spans recorded across
    several calls correlate; the server mints one otherwise.  Both fields
    are elided when unset, so the v1 wire form is unchanged.
    """

    _ELIDE_WHEN_DEFAULT = ("session", "trace_id")

    op: str
    version: str = API_VERSION
    auth: Optional[AuthCredentials] = None
    payload: dict = field(default_factory=dict)
    request_id: int = 0
    session: Optional[str] = None
    trace_id: Optional[str] = None


@dataclass
class ApiResponse(WireModel):
    """The response envelope: exactly one of ``payload`` / ``error`` is set."""

    ok: bool
    version: str = API_VERSION
    request_id: int = 0
    payload: Optional[dict] = None
    error: Optional[dict] = None


# ---------------------------------------------------------------------------
# Platform API v2: sessions, admin control plane, streaming
# ---------------------------------------------------------------------------


@dataclass
class LoginRequest(WireModel):
    """``auth.login`` request; credentials ride in the envelope's ``auth``."""

    ttl_s: Optional[float] = None


@dataclass
class SessionView(WireModel):
    """``auth.login`` response: the bearer token, shown exactly once."""

    session_token: str
    username: str
    role: str
    issued_at: float
    expires_at: float


@dataclass
class LogoutView(WireModel):
    """``auth.logout`` response; ``revoked`` is false for unknown sessions."""

    revoked: bool


@dataclass
class RegisterVantagePointRequest(WireModel):
    """``vantage-point.register``: admit a new member node over the wire.

    The access server assembles and provisions the (simulated) controller,
    devices and power meter exactly as the in-process join procedure does
    (Section 3.4); ``device_profile`` names a built-in hardware profile.
    """

    name: str
    institution: str
    contact_email: str = ""
    public_address: str = ""
    device_count: int = 1
    device_profile: str = "samsung-j7-duo"


@dataclass
class GrantCreditsRequest(WireModel):
    """``credits.grant``: administrative balance adjustment (device-hours)."""

    owner: str
    amount_device_hours: float
    note: str = ""


@dataclass
class CreateUserRequest(WireModel):
    """``user.create``: open a platform account remotely (admin only)."""

    username: str
    role: str
    token: str
    email: str = ""


@dataclass
class UserView(WireModel):
    """``user.create`` response: the account as the platform sees it."""

    username: str
    role: str
    email: str = ""
    enabled: bool = True


@dataclass
class WatchJobRequest(WireModel):
    """``job.watch``: subscribe to one job's ``dispatch.*`` events."""

    job_id: int


@dataclass
class EventsSubscribeRequest(WireModel):
    """``events.subscribe``: subscribe to bus events by topic prefix."""

    topic_prefix: str = "dispatch."


@dataclass
class SubscriptionRef(WireModel):
    """``subscription.cancel`` request: one subscription id."""

    subscription_id: int


@dataclass
class SubscriptionAck(WireModel):
    """Streaming-op response: the id pushes will carry, plus — for
    ``job.watch`` — the job's state at subscription time."""

    subscription_id: int
    job: Optional[JobView] = None


@dataclass
class ApiPush(WireModel):
    """A server-pushed frame, multiplexed between responses on the wire.

    ``kind`` is always ``"push"`` so a streaming client can discriminate
    frames before strict parsing; responses never carry a ``kind`` key.
    ``seq`` increases per subscription, letting consumers detect gaps.
    ``frame`` is :data:`PUSH_FRAME_EVENT` for streamed bus events (``topic``
    and ``payload`` mirror the :class:`~repro.simulation.events.BusEvent`)
    or :data:`PUSH_FRAME_END` when a ``job.watch`` reaches a terminal state
    (``payload["job"]`` holds the final :class:`JobView` wire form).

    ``dropped`` is the slow-consumer back-pressure counter: when the
    gateway's bounded per-connection push queue overflows, event frames
    are discarded (oldest first; terminal ``end`` frames never drop) and
    the next delivered frame of the same subscription carries how many
    were lost — under the usual evict-oldest path that equals its ``seq``
    gap.  Elided at 0, so well-behaved consumers never see the field.
    """

    subscription_id: int
    frame: str = PUSH_FRAME_EVENT
    seq: int = 0
    topic: Optional[str] = None
    timestamp: float = 0.0
    payload: dict = field(default_factory=dict)
    kind: str = PUSH_KIND
    version: str = API_VERSION_V2
    dropped: int = 0

    _ELIDE_WHEN_DEFAULT = ("dropped",)


# ---------------------------------------------------------------------------
# Platform API v2: operations analytics
# ---------------------------------------------------------------------------


@dataclass
class AnalyticsReportRequest(WireModel):
    """``analytics.report`` request; ``owner`` narrows the owners table."""

    owner: Optional[str] = None


@dataclass
class PercentileStatsView(WireModel):
    """Distribution summary (nearest-rank percentiles) for a duration set."""

    samples: int = 0
    mean_s: float = 0.0
    p50_s: float = 0.0
    p90_s: float = 0.0
    p99_s: float = 0.0
    max_s: float = 0.0

    @classmethod
    def from_stats(cls, stats: dict) -> "PercentileStatsView":
        return cls(**stats)


@dataclass
class JobCountsView(WireModel):
    """Fleet-wide job lifecycle counters (terminal + current backlog)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    requeues: int = 0
    running: int = 0
    queued: int = 0
    pending_approval: int = 0


@dataclass
class OwnerUsageView(WireModel):
    """One owner's utilisation and credit movement."""

    owner: str
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    device_seconds: float = 0.0
    queue_wait_s: float = 0.0
    credits_burned_device_hours: float = 0.0
    credits_granted_device_hours: float = 0.0


@dataclass
class DeviceUsageView(WireModel):
    """One device slot's occupancy and health over the report window."""

    vantage_point: str
    device_serial: str
    assignments: int = 0
    requeues: int = 0
    completed: int = 0
    failed: int = 0
    busy_seconds: float = 0.0
    failure_rate: float = 0.0
    occupancy: float = 0.0


@dataclass
class ReservationStatsView(WireModel):
    """Interactive-session booking counters."""

    created: int = 0
    cancelled: int = 0
    booked_device_hours: float = 0.0


@dataclass
class AnalyticsReportView(WireModel):
    """``analytics.report`` response: the materialised operations report.

    Derived deterministically from the platform's event-sourced record
    stream — the identical report is produced whether the server folded
    events live or cold-replayed its write-ahead journal.
    """

    records_folded: int = 0
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None
    jobs: JobCountsView = field(default_factory=JobCountsView)
    owners: List[OwnerUsageView] = field(default_factory=list)
    queue_wait: PercentileStatsView = field(default_factory=PercentileStatsView)
    run_time: PercentileStatsView = field(default_factory=PercentileStatsView)
    devices: List[DeviceUsageView] = field(default_factory=list)
    reservations: ReservationStatsView = field(default_factory=ReservationStatsView)

    @classmethod
    def from_report(
        cls, report: dict, owner: Optional[str] = None
    ) -> "AnalyticsReportView":
        """Build the wire view from an engine ``report()`` dict."""
        owners = [
            OwnerUsageView(**row)
            for row in report.get("owners", [])
            if owner is None or row.get("owner") == owner
        ]
        window = report.get("window", {})
        return cls(
            records_folded=report.get("records_folded", 0),
            first_ts=window.get("first_ts"),
            last_ts=window.get("last_ts"),
            jobs=JobCountsView(**report.get("jobs", {})),
            owners=owners,
            queue_wait=PercentileStatsView.from_stats(report.get("queue_wait", {})),
            run_time=PercentileStatsView.from_stats(report.get("run_time", {})),
            devices=[DeviceUsageView(**row) for row in report.get("devices", [])],
            reservations=ReservationStatsView(**report.get("reservations", {})),
        )


@dataclass
class AnalyticsTimeseriesRequest(WireModel):
    """``analytics.timeseries`` request: desired bucket width in seconds."""

    bucket_s: float = 60.0


@dataclass
class TimeseriesBucketView(WireModel):
    """One throughput bucket: job flow counters in ``[start_s, start_s+bucket_s)``."""

    start_s: float
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0


@dataclass
class AnalyticsTimeseriesView(WireModel):
    """``analytics.timeseries`` response: fleet throughput over time."""

    bucket_s: float = 60.0
    buckets: List[TimeseriesBucketView] = field(default_factory=list)

    @classmethod
    def from_timeseries(cls, timeseries: dict) -> "AnalyticsTimeseriesView":
        return cls(
            bucket_s=timeseries.get("bucket_s", 60.0),
            buckets=[
                TimeseriesBucketView(**bucket)
                for bucket in timeseries.get("buckets", [])
            ],
        )


# ---------------------------------------------------------------------------
# Platform API v2: observability (obs.metrics / obs.trace)
# ---------------------------------------------------------------------------


@dataclass
class ObsMetricsRequest(WireModel):
    """``obs.metrics`` request; ``prefix`` narrows to one metric namespace
    (e.g. ``"gateway_"``) so dashboards fetch only what they chart."""

    prefix: Optional[str] = None


@dataclass
class MetricSampleView(WireModel):
    """One counter or gauge child: metric name, label set, current value."""

    name: str
    value: float = 0.0
    labels: dict = field(default_factory=dict)


@dataclass
class HistogramSampleView(WireModel):
    """One histogram child: per-bucket counts plus running sum/count.

    ``counts`` has ``len(bounds) + 1`` entries — the final entry is the
    implicit overflow (+Inf) bucket, mirroring the in-process layout.
    """

    name: str
    count: int = 0
    sum: float = 0.0
    bounds: List[float] = field(default_factory=list)
    counts: List[int] = field(default_factory=list)
    labels: dict = field(default_factory=dict)


@dataclass
class ObsMetricsView(WireModel):
    """``obs.metrics`` response: one full registry snapshot.

    ``generated_at`` is simulated time (aligned with journal and bus
    records); ``enabled`` reports whether telemetry was live when the
    snapshot was taken — a dark registry still answers, with stale values.
    """

    generated_at: float = 0.0
    enabled: bool = True
    counters: List[MetricSampleView] = field(default_factory=list)
    gauges: List[MetricSampleView] = field(default_factory=list)
    histograms: List[HistogramSampleView] = field(default_factory=list)

    @classmethod
    def from_snapshot(
        cls, snapshot: dict, prefix: Optional[str] = None
    ) -> "ObsMetricsView":
        """Build the wire view from :meth:`MetricsRegistry.snapshot`."""

        def keep(sample: dict) -> bool:
            return prefix is None or sample["name"].startswith(prefix)

        return cls(
            generated_at=snapshot.get("generated_at", 0.0),
            enabled=snapshot.get("enabled", True),
            counters=[
                MetricSampleView(**s) for s in snapshot.get("counters", []) if keep(s)
            ],
            gauges=[
                MetricSampleView(**s) for s in snapshot.get("gauges", []) if keep(s)
            ],
            histograms=[
                HistogramSampleView(**s)
                for s in snapshot.get("histograms", [])
                if keep(s)
            ],
        )

    def to_snapshot(self) -> dict:
        """The primitive snapshot shape, for text rendering client-side
        (:func:`repro.obs.render_snapshot`)."""
        return {
            "generated_at": self.generated_at,
            "enabled": self.enabled,
            "counters": [
                {"name": s.name, "labels": s.labels, "value": s.value}
                for s in self.counters
            ],
            "gauges": [
                {"name": s.name, "labels": s.labels, "value": s.value}
                for s in self.gauges
            ],
            "histograms": [
                {
                    "name": s.name,
                    "labels": s.labels,
                    "count": s.count,
                    "sum": s.sum,
                    "bounds": s.bounds,
                    "counts": s.counts,
                }
                for s in self.histograms
            ],
        }


@dataclass
class ObsTraceRequest(WireModel):
    """``obs.trace`` request: look a trace up by its id or by a job id."""

    trace_id: Optional[str] = None
    job_id: Optional[int] = None


@dataclass
class SpanView(WireModel):
    """One recorded span of a trace (matches the ``trace.span`` bus record)."""

    trace_id: str
    span_id: str
    name: str
    start: float = 0.0
    end: float = 0.0
    elapsed_s: float = 0.0
    status: str = "ok"
    parent_id: Optional[str] = None
    attrs: dict = field(default_factory=dict)

    @classmethod
    def from_span(cls, span) -> "SpanView":
        return cls(
            trace_id=span.trace_id,
            span_id=span.span_id,
            name=span.name,
            start=span.start,
            end=span.end if span.end is not None else span.start,
            elapsed_s=span.elapsed_s if span.elapsed_s is not None else 0.0,
            status=span.status,
            parent_id=span.parent_id,
            attrs=dict(span.attrs),
        )


@dataclass
class ObsTraceView(WireModel):
    """``obs.trace`` response: every retained span of one trace, in
    recording order (submit → admit → run → settle for a job trace)."""

    trace_id: str
    spans: List[SpanView] = field(default_factory=list)
    job_id: Optional[int] = None


# ---------------------------------------------------------------------------
# Federation admin plane (shard.list / shard.add / shard.drain / shard.remove)
# ---------------------------------------------------------------------------


@dataclass
class ShardRef(WireModel):
    """``shard.add`` / ``shard.drain`` / ``shard.remove`` request: one shard."""

    shard_id: str


@dataclass
class ShardView(WireModel):
    """One federation shard as the router sees it.

    ``state`` is the drain state machine's position: ``active`` (taking new
    placements), ``draining`` (no new placements; in-flight jobs settling)
    or ``detached`` (removed; its directory entries are retained so a
    restarted shard re-attaches under the same name).
    """

    shard_id: str
    state: str = "active"
    vantage_points: List[str] = field(default_factory=list)
    queued_jobs: int = 0
    running_jobs: int = 0
    pending_approval: int = 0


@dataclass
class ShardListView(WireModel):
    """``shard.list`` response: every shard in deterministic id order."""

    shards: List[ShardView] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Platform API v2: agent-pull execution
# (agent.register / agent.poll / agent.claim / agent.heartbeat / agent.report)
# ---------------------------------------------------------------------------


@dataclass
class AgentRegisterRequest(WireModel):
    """``agent.register``: a vantage-point daemon announces itself.

    Idempotent — daemons re-register on every start to refresh their
    connector inventory and tags; only the first registration is journaled.
    """

    agent_id: str
    vantage_point: Optional[str] = None
    connectors: List[str] = field(default_factory=list)
    tags: dict = field(default_factory=dict)


@dataclass
class AgentView(WireModel):
    """``agent.register`` response: the registry's view of one daemon."""

    agent_id: str
    vantage_point: Optional[str] = None
    connectors: List[str] = field(default_factory=list)
    tags: dict = field(default_factory=dict)
    registered_at: float = 0.0
    created: bool = False

    @classmethod
    def from_record(cls, record, created: bool = False) -> "AgentView":
        return cls(
            agent_id=record.agent_id,
            vantage_point=record.vantage_point,
            connectors=list(record.connectors),
            tags=dict(sorted(record.tags.items())),
            registered_at=record.registered_at,
            created=created,
        )


@dataclass
class AgentPollRequest(WireModel):
    """``agent.poll``: ask for claimable jobs, optionally long-polling.

    ``wait_s > 0`` parks the request server-side until an offer appears or
    the wait elapses (the server clamps the wait to its own maximum); the
    op is read-only, so a parked poll never blocks mutations.
    """

    agent_id: str
    wait_s: float = 0.0
    limit: int = 10


@dataclass
class JobOfferView(WireModel):
    """One claimable job inside an ``agent.poll`` response."""

    job_id: int
    name: str
    owner: str
    priority: float = 0.0
    device_count: int = 1
    connector: Optional[str] = None
    vantage_point: Optional[str] = None


@dataclass
class AgentPollView(WireModel):
    """``agent.poll`` response: claimable jobs in dispatch order."""

    offers: List[JobOfferView] = field(default_factory=list)


@dataclass
class AgentClaimRequest(WireModel):
    """``agent.claim``: atomically claim one offered job and its devices.

    Multi-device jobs claim all ``device_count`` slots or fail with
    ``agent.claim_conflict`` — never a partial hold.
    """

    agent_id: str
    job_id: int
    ttl_s: float = 30.0


@dataclass
class DeviceAssignmentView(WireModel):
    """One ``(vantage_point, device_serial)`` slot held by a lease."""

    vantage_point: str
    device_serial: str


@dataclass
class AgentLeaseView(WireModel):
    """``agent.claim`` / ``agent.heartbeat`` response: the live lease.

    ``devices[0]`` is the primary slot the job is assigned to; the rest
    are child slots reserved for the ``multi`` connector's children.
    """

    lease_id: str
    agent_id: str
    job_id: int
    devices: List[DeviceAssignmentView] = field(default_factory=list)
    ttl_s: float = 30.0
    expires_at: float = 0.0
    payload: Optional[str] = None
    job_name: str = ""
    owner: str = ""
    timeout_s: float = 3600.0

    @classmethod
    def from_lease(cls, lease, job=None, payload: Optional[str] = None) -> "AgentLeaseView":
        return cls(
            lease_id=lease.lease_id,
            agent_id=lease.agent_id,
            job_id=lease.job_id,
            devices=[
                DeviceAssignmentView(vantage_point=vp, device_serial=serial)
                for vp, serial in lease.devices
            ],
            ttl_s=lease.ttl_s,
            expires_at=lease.expires_at,
            payload=payload,
            job_name=job.spec.name if job is not None else "",
            owner=job.spec.owner if job is not None else "",
            timeout_s=job.spec.timeout_s if job is not None else 3600.0,
        )


@dataclass
class AgentHeartbeatRequest(WireModel):
    """``agent.heartbeat``: renew a lease before its TTL lapses.

    ``agent_id`` rides along so a federation router can route the renewal
    to the shard that granted the lease.
    """

    lease_id: str
    agent_id: str


@dataclass
class ChildResultView(WireModel):
    """One child device's outcome inside a multi-device report."""

    device_serial: str
    status: str
    vantage_point: Optional[str] = None
    output: Optional[str] = None


@dataclass
class AgentReportRequest(WireModel):
    """``agent.report``: upload a claimed job's terminal outcome.

    Reports are idempotent: re-reporting a recently settled lease returns
    the finished job with ``duplicate`` set instead of double-settling —
    this is what makes the daemon's journal-backed outbox exactly-once.
    """

    lease_id: str
    agent_id: str
    status: str
    result: object = None
    error: Optional[str] = None
    children: List[ChildResultView] = field(default_factory=list)


@dataclass
class AgentReportView(WireModel):
    """``agent.report`` response; ``duplicate`` (elided when false) marks
    an idempotent replay of an already-settled report."""

    _ELIDE_WHEN_DEFAULT = ("duplicate",)

    job: JobView
    duplicate: bool = False
