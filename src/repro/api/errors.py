"""Typed error taxonomy for the Platform API (v1 and v2).

Every failure the platform can hand a remote caller is an :class:`ApiError`
subclass with a *stable, machine-readable* ``code``.  The codes — not the
Python class names, not the human-readable messages — are the compatibility
contract: clients switch on ``error.code``, the golden tests in
``tests/test_api_schemas.py`` pin the full table, and a code may never be
renamed or reused within API v1.

The taxonomy replaces the mix of ``JobError`` / ``SchedulingError`` /
``CreditError`` / ``ValueError`` / raw ``RuntimeError`` strings that used to
leak out of :mod:`repro.accessserver.server`: :func:`map_exception`
translates every domain exception at the router boundary, so transports
only ever carry wire-safe ``{"code", "message", "details"}`` dicts and
:func:`error_from_wire` rebuilds the typed exception client-side.
"""

from __future__ import annotations

from typing import Dict, Optional, Type


class ApiError(Exception):
    """Base class for every Platform API v1 error.

    Attributes
    ----------
    code:
        Stable machine-readable identifier (``"category.reason"``).  Part of
        the v1 wire contract; never renamed, never reused.
    retryable:
        Whether an identical retry may succeed without caller changes
        (transport hiccups yes, validation failures no).
    details:
        Optional primitive-valued dict with structured context (job id,
        missing field, required permission, ...).
    """

    code: str = "error"
    retryable: bool = False

    def __init__(self, message: str, details: Optional[Dict[str, object]] = None) -> None:
        super().__init__(message)
        self.message = message
        self.details: Dict[str, object] = dict(details or {})

    def to_wire(self) -> Dict[str, object]:
        """The JSON-safe wire form carried in error response envelopes."""
        wire: Dict[str, object] = {"code": self.code, "message": self.message}
        if self.details:
            wire["details"] = dict(self.details)
        return wire

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(code={self.code!r}, message={self.message!r})"


class ValidationApiError(ApiError):
    """The request was malformed: bad envelope, unknown field, wrong type."""

    code = "request.invalid"


class VersionApiError(ApiError):
    """The request's ``version`` is not supported by this server."""

    code = "request.version_unsupported"


class UnknownOperationApiError(ApiError):
    """The requested operation name is not routable."""

    code = "request.unknown_operation"


class AuthenticationApiError(ApiError):
    """Missing, unknown or wrong credentials (includes disabled accounts)."""

    code = "auth.invalid_credentials"


class PermissionApiError(ApiError):
    """Authenticated, but the user lacks the operation's permission."""

    code = "auth.permission_denied"


class SessionApiError(ApiError):
    """The bearer session token is unknown, expired or revoked (API v2).

    Distinct from :class:`AuthenticationApiError` so clients can react by
    transparently re-running ``auth.login`` with their account credentials
    instead of surfacing a credentials failure to the operator.
    """

    code = "auth.session_expired"


class NotFoundApiError(ApiError):
    """The referenced resource (job, vantage point, account) does not exist."""

    code = "resource.not_found"


class ConflictApiError(ApiError):
    """The operation is invalid in the resource's current state."""

    code = "resource.conflict"


class CreditApiError(ApiError):
    """The owner's credit balance cannot cover the requested device time."""

    code = "credits.insufficient"


class TransportApiError(ApiError):
    """Client-side transport failure: unreachable gateway, broken frame."""

    code = "transport.failed"
    retryable = True


class InternalApiError(ApiError):
    """Unexpected server-side failure; the request may or may not have applied."""

    code = "server.internal"
    retryable = True


#: The frozen v1 code table.  Adding a code is a compatible change; renaming
#: or removing one is not (tests pin this mapping).
ERROR_CODES: Dict[str, Type[ApiError]] = {
    cls.code: cls
    for cls in (
        ValidationApiError,
        VersionApiError,
        UnknownOperationApiError,
        AuthenticationApiError,
        PermissionApiError,
        NotFoundApiError,
        ConflictApiError,
        CreditApiError,
        TransportApiError,
        InternalApiError,
    )
}

#: Codes introduced by Platform API v2.  Kept separate so the v1 table stays
#: byte-for-byte frozen; v2 has its own golden test pinning the union.
V2_ERROR_CODES: Dict[str, Type[ApiError]] = {
    cls.code: cls for cls in (SessionApiError,)
}

#: Every code any supported API version can emit (v1 ∪ v2).
ALL_ERROR_CODES: Dict[str, Type[ApiError]] = {**ERROR_CODES, **V2_ERROR_CODES}


def error_from_wire(data: Dict[str, object]) -> ApiError:
    """Rebuild the typed error a server serialised with :meth:`ApiError.to_wire`.

    Unknown codes (a newer server within v1) degrade to a plain
    :class:`ApiError` that preserves the original code string, so clients
    can still switch on ``error.code``.
    """
    code = str(data.get("code", "error"))
    message = str(data.get("message", ""))
    details = data.get("details")
    if not isinstance(details, dict):
        details = None
    cls = ALL_ERROR_CODES.get(code)
    if cls is None:
        error = ApiError(message, details)
        error.code = code
        return error
    return cls(message, details)


def map_exception(exc: BaseException) -> ApiError:
    """Translate a domain exception into its typed API error.

    This is the single choke point where the access server's internal
    exception zoo meets the wire contract.  ``ApiError`` instances pass
    through untouched.
    """
    from repro.accessserver.auth import (
        AuthenticationError,
        AuthorizationError,
        SessionExpiredError,
    )
    from repro.accessserver.credits import CreditError
    from repro.accessserver.dispatch import SchedulingError
    from repro.accessserver.jobs import JobError
    from repro.accessserver.policies import PolicyError
    from repro.accessserver.server import AccessServerError

    if isinstance(exc, ApiError):
        return exc
    message = str(exc)
    if isinstance(exc, SessionExpiredError):
        return SessionApiError(message)
    if isinstance(exc, AuthenticationError):
        return AuthenticationApiError(message)
    if isinstance(exc, AuthorizationError):
        return PermissionApiError(message)
    if isinstance(exc, CreditError):
        if "unknown credit account" in message:
            return NotFoundApiError(message)
        return CreditApiError(message)
    if isinstance(exc, SchedulingError):
        if "unknown job id" in message:
            return NotFoundApiError(message)
        return ConflictApiError(message)
    if isinstance(exc, AccessServerError):
        if "unknown vantage point" in message:
            return NotFoundApiError(message)
        return ConflictApiError(message)
    if isinstance(exc, JobError):
        return ConflictApiError(message)
    from repro.accessserver.agents import AgentError

    if isinstance(exc, AgentError):
        if "unknown" in message:
            return NotFoundApiError(message)
        return ConflictApiError(message)
    if isinstance(exc, (PolicyError, ValueError, TypeError, KeyError)):
        return ValidationApiError(message)
    return InternalApiError(f"{type(exc).__name__}: {message}")
