"""The BatteryLab client SDK — the sanctioned way into the platform.

:class:`BatteryLabClient` wraps the versioned request/response protocol
behind typed Python methods: every call builds an
:class:`~repro.api.schemas.ApiRequest`, ships it through a
:class:`Transport`, and either returns the parsed response DTO or raises
the typed :class:`~repro.api.errors.ApiError` the server sent back.  The
same client code drives a local simulation (via
:class:`InProcessTransport`) or a remote access server (via
:class:`~repro.api.gateway.JsonLinesTransport`, optionally over TLS) —
transports are dumb byte pipes, all semantics live in the envelopes.

Platform API v2 adds three capabilities on top of the v1 surface:

* **Sessions** — :meth:`BatteryLabClient.login` exchanges the account
  credentials for a short-lived bearer token; subsequent requests carry
  only the session token (and auto-re-login once when it expires).
* **Streaming** — :meth:`BatteryLabClient.watch_job` and
  :meth:`BatteryLabClient.events` return iterators over server-pushed
  :class:`~repro.api.schemas.ApiPush` frames, replacing ``job.status``
  polling loops entirely.
* **Admin control plane** — :meth:`register_vantage_point`,
  :meth:`approvals`, :meth:`approve_job` / :meth:`reject_job`,
  :meth:`grant_credits` and :meth:`create_user` let an administrator run
  the platform fully remotely.

Job payloads are *named*: a Python callable cannot cross a JSON wire, so
``submit_job`` takes the name of a payload registered server-side with
:func:`repro.accessserver.persistence.register_payload`.  As a local-use
convenience, passing a callable auto-registers it in the (process-global)
payload catalogue and submits its name — which works against in-process
and same-process gateway servers, and fails loudly with
``request.invalid`` against a genuinely remote server whose catalogue does
not have it.
"""

from __future__ import annotations

import abc
import json
import uuid
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.api.errors import (
    ApiError,
    SessionApiError,
    TransportApiError,
    error_from_wire,
)
from repro.api.schemas import (
    API_VERSION,
    API_VERSION_V2,
    PUSH_FRAME_END,
    AgentLeaseView,
    AgentPollView,
    AgentReportView,
    AgentView,
    AnalyticsReportView,
    AnalyticsTimeseriesView,
    ApiPush,
    ApiRequest,
    ApiResponse,
    AuthCredentials,
    CreditView,
    FleetView,
    JobConstraintsV1,
    JobResultsView,
    JobView,
    ObsMetricsView,
    ObsTraceView,
    ReservationView,
    SessionView,
    StatusView,
    SubscriptionAck,
    UserView,
    VantagePointView,
)


class Transport(abc.ABC):
    """Moves one wire-form request dict to a router and returns the response."""

    #: True for transports that may transparently *resend* a request after a
    #: connection drop (see ``JsonLinesTransport``).  A resent ``job.submit``
    #: whose first copy already reached the server would double-queue, so the
    #: client attaches an idempotency key to submissions on such transports.
    supports_reconnect = False

    @abc.abstractmethod
    def send(self, request: dict) -> dict:
        """Deliver ``request`` and return the wire-form response envelope."""

    def send_many(self, requests: List[dict]) -> List[dict]:
        """Deliver a batch of requests; responses in request order.

        The default implementation sends sequentially — correct for any
        transport.  Transports with a real wire override this to *pipeline*
        the batch (one write, N reads), amortizing per-request round trips;
        see :meth:`repro.api.gateway.JsonLinesTransport.send_many`.
        """
        return [self.send(request) for request in requests]

    def recv_push(
        self, subscription_id: int, timeout_s: Optional[float] = None
    ) -> Optional[dict]:
        """Next buffered push frame for ``subscription_id``.

        Returns ``None`` when no frame is available and the transport cannot
        wait for one (an in-process bridge would deadlock the thread that
        must also advance the simulation).  Waiting transports (sockets)
        block instead, raising :class:`~repro.api.errors.TransportApiError`
        on timeout or a dead connection rather than returning ``None``.
        """
        raise TransportApiError("this transport does not support streaming")

    def close(self) -> None:
        """Release transport resources (sockets); idempotent."""


class InProcessTransport(Transport):
    """Calls an :class:`~repro.api.router.ApiRouter` in the same process.

    Every envelope still goes through a full JSON ``dumps``/``loads`` round
    trip, so anything that would break on a real wire breaks identically
    here — the local simulation cannot accidentally rely on passing live
    Python objects through the API.

    Push frames are buffered per subscription as the simulation produces
    them; iteration drains the buffer without blocking (the caller advances
    the simulation — e.g. ``platform.run_queue()`` — between drains).
    """

    def __init__(self, router) -> None:
        self._router = router
        self._push_buffers: Dict[int, deque] = {}

    def send(self, request: dict) -> dict:
        try:
            wire_request = json.loads(json.dumps(request))
        except (TypeError, ValueError) as exc:
            raise TransportApiError(f"request is not JSON-serializable: {exc}") from None
        response = self._router.handle(wire_request, push=self._on_push, owner=self)
        return json.loads(json.dumps(response))

    def _on_push(self, frame: dict) -> None:
        wire_frame = json.loads(json.dumps(frame))
        subscription_id = wire_frame.get("subscription_id", 0)
        self._push_buffers.setdefault(subscription_id, deque()).append(wire_frame)

    def recv_push(
        self, subscription_id: int, timeout_s: Optional[float] = None
    ) -> Optional[dict]:
        buffered = self._push_buffers.get(subscription_id)
        if buffered:
            return buffered.popleft()
        return None

    def close(self) -> None:
        if hasattr(self._router, "cancel_owner"):
            self._router.cancel_owner(self)
        self._push_buffers.clear()


class PushStream:
    """Iterator over one subscription's server-pushed frames.

    On a blocking transport (the socket gateway) iteration waits for each
    frame; on the in-process transport it drains what the simulation has
    produced so far and stops — advance the simulation and iterate again.
    Frames are :class:`~repro.api.schemas.ApiPush` instances.
    """

    def __init__(
        self,
        client: "BatteryLabClient",
        subscription_id: int,
        timeout_s: Optional[float] = None,
    ) -> None:
        self._client = client
        self.subscription_id = subscription_id
        self._timeout_s = timeout_s
        self.done = False

    def __iter__(self) -> "PushStream":
        return self

    def __next__(self) -> ApiPush:
        if self.done:
            raise StopIteration
        raw = self._client.transport.recv_push(
            self.subscription_id, timeout_s=self._timeout_s
        )
        if raw is None:
            raise StopIteration  # non-blocking transport drained for now
        frame = ApiPush.from_wire(raw)
        if frame.frame == PUSH_FRAME_END:
            self.done = True
            self._on_end(frame)
        return frame

    def _on_end(self, frame: ApiPush) -> None:  # pragma: no cover - hook
        pass

    def close(self) -> None:
        """Cancel the subscription server-side; safe to call repeatedly."""
        if self.done:
            return
        self.done = True
        try:
            self._client.cancel_subscription(self.subscription_id)
        except ApiError:
            pass  # server already dropped it (connection death, shutdown)


class JobWatch(PushStream):
    """``job.watch`` stream: ``dispatch.*`` frames, then one ``end`` frame.

    ``initial`` is the job's state when the subscription was opened;
    ``final`` is populated from the ``end`` frame once the job terminates.
    Iterating yields every frame *including* the terminal one, so consumers
    observe completion in-band instead of polling ``job.status``.
    """

    def __init__(
        self,
        client: "BatteryLabClient",
        subscription_id: int,
        initial: Optional[JobView],
        timeout_s: Optional[float] = None,
    ) -> None:
        super().__init__(client, subscription_id, timeout_s)
        self.initial = initial
        self.final: Optional[JobView] = None

    def _on_end(self, frame: ApiPush) -> None:
        job_wire = frame.payload.get("job")
        if isinstance(job_wire, dict):
            self.final = JobView.from_wire(job_wire)

    def wait(self) -> JobView:
        """Consume frames until the job terminates; returns the final view."""
        for _ in self:
            pass
        if self.final is None:
            raise TransportApiError(
                f"job watch {self.subscription_id} ended without a final job view"
            )
        return self.final


class PipelineResult:
    """Deferred result of one pipelined call; populated by ``flush()``."""

    __slots__ = ("_decoder", "_value", "_error", "done")

    def __init__(self, decoder: Callable[[dict], object]) -> None:
        self._decoder = decoder
        self._value: object = None
        self._error: Optional[ApiError] = None
        self.done = False

    def _resolve(self, response: "ApiResponse") -> None:
        self.done = True
        if not response.ok:
            self._error = error_from_wire(response.error or {})
            return
        try:
            self._value = self._decoder(response.payload or {})
        except ApiError as exc:  # pragma: no cover - defensive decode
            self._error = exc

    def result(self) -> object:
        """The decoded value; raises the call's typed error if it failed."""
        if not self.done:
            raise TransportApiError("pipeline not flushed yet")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def error(self) -> Optional[ApiError]:
        return self._error


class ClientPipeline:
    """Stage several calls, ship them as one pipelined batch.

    Obtained from :meth:`BatteryLabClient.pipeline`.  Each staged call
    returns a :class:`PipelineResult` immediately; :meth:`flush` sends the
    whole batch through :meth:`Transport.send_many` (one write + N ordered
    reads on the socket transport), resolves every result, and returns the
    decoded values in staging order — raising the first call's typed error
    if any call failed.  Callers that want per-call errors inspect the
    :class:`PipelineResult` handles instead of the return value.

    Pipelined calls do not auto-re-login on an expired session (the batch
    is already on the wire); long-running drivers should flush reasonably
    sized batches.
    """

    def __init__(self, client: "BatteryLabClient") -> None:
        self._client = client
        self._staged: List[tuple] = []  # (op, payload, version, PipelineResult)

    def __len__(self) -> int:
        return len(self._staged)

    def call(
        self,
        op: str,
        payload: Optional[dict] = None,
        version: Optional[str] = None,
        decoder: Callable[[dict], object] = lambda wire: wire,
    ) -> PipelineResult:
        """Stage one raw operation; ``decoder`` maps the response payload."""
        pending = PipelineResult(decoder)
        self._staged.append((op, payload or {}, version, pending))
        return pending

    # -- typed helpers (the hot read/submit paths) ---------------------------
    def job_status(self, job_id: int) -> PipelineResult:
        return self.call("job.status", {"job_id": job_id}, decoder=JobView.from_wire)

    def server_status(self, version: Optional[str] = None) -> PipelineResult:
        return self.call("server.status", {}, version, decoder=StatusView.from_wire)

    def credits_balance(self, owner: Optional[str] = None) -> PipelineResult:
        return self.call(
            "credits.balance", {"owner": owner}, decoder=CreditView.from_wire
        )

    def fleet(self) -> PipelineResult:
        return self.call("fleet.list", decoder=FleetView.from_wire)

    def submit_job(self, name: str, payload: str, **kwargs) -> PipelineResult:
        """Stage a ``job.submit``; ``payload`` must be a registered name."""
        constraints = JobConstraintsV1(
            vantage_point=kwargs.get("vantage_point"),
            device_serial=kwargs.get("device_serial"),
            connectivity=kwargs.get("connectivity"),
        )
        body = {
            "name": name,
            "payload": payload,
            "owner": kwargs.get("owner"),
            "description": kwargs.get("description", ""),
            "priority": kwargs.get("priority", 0.0),
            "timeout_s": kwargs.get("timeout_s", 3600.0),
            "is_pipeline_change": kwargs.get("is_pipeline_change", False),
            "log_retention_days": kwargs.get("log_retention_days", 7.0),
            "constraints": constraints.to_wire(),
        }
        return self.call("job.submit", body, decoder=JobView.from_wire)

    def flush(self) -> List[object]:
        """Send the staged batch; returns decoded values in staging order."""
        if not self._staged:
            return []
        staged, self._staged = self._staged, []
        requests = []
        ids = []
        for op, payload, version, _pending in staged:
            requests.append(
                self._client._build_request(op, payload, version).to_wire()
            )
            ids.append(self._client._request_id)
        raw_responses = self._client.transport.send_many(requests)
        if len(raw_responses) != len(staged):
            raise TransportApiError(
                f"pipeline sent {len(staged)} requests but got "
                f"{len(raw_responses)} responses"
            )
        for raw, request_id, (_op, _payload, _version, pending) in zip(
            raw_responses, ids, staged
        ):
            response = ApiResponse.from_wire(raw)
            if response.request_id not in (0, request_id):
                raise TransportApiError(
                    f"response for request {response.request_id} arrived while "
                    f"waiting for {request_id}"
                )
            pending._resolve(response)
        return [pending.result() for _op, _payload, _version, pending in staged]


@dataclass
class JobPage:
    """One ``job.list`` window plus the pre-window total (v2 pagination)."""

    jobs: List[JobView]
    total: int
    offset: int = 0
    limit: Optional[int] = None


class BatteryLabClient:
    """Typed client bound to one user's credentials.

    Parameters
    ----------
    transport:
        Where requests go: :class:`InProcessTransport` for a local
        simulation, :class:`~repro.api.gateway.JsonLinesTransport` for a
        remote gateway (plaintext or TLS).
    username / token:
        Account credentials.  Sent with every request until
        :meth:`login` upgrades the client to a bearer session.
    version:
        Protocol version to claim for the v1 surface; v2-only operations
        always negotiate ``"2.0"`` envelopes.  Servers reject unsupported
        versions with ``request.version_unsupported``.
    """

    def __init__(
        self,
        transport: Transport,
        username: str,
        token: str,
        version: str = API_VERSION,
    ) -> None:
        self._transport = transport
        self._auth = AuthCredentials(username=username, token=token)
        self._version = version
        self._request_id = 0
        self._session_token: Optional[str] = None
        self._session_ttl_s: Optional[float] = None

    @property
    def username(self) -> str:
        return self._auth.username

    @property
    def transport(self) -> Transport:
        return self._transport

    @property
    def session_active(self) -> bool:
        return self._session_token is not None

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "BatteryLabClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plumbing -----------------------------------------------------------
    def _call(
        self, op: str, payload: Optional[dict] = None, version: Optional[str] = None
    ) -> dict:
        try:
            return self._call_once(op, payload, version)
        except SessionApiError:
            if self._session_token is None:
                raise
            # The session lapsed mid-conversation; we still hold account
            # credentials, so re-login once and retry transparently.
            self._session_token = None
            self.login(ttl_s=self._session_ttl_s)
            return self._call_once(op, payload, version)

    def _build_request(
        self, op: str, payload: Optional[dict], version: Optional[str]
    ) -> ApiRequest:
        self._request_id += 1
        if version is None:
            version = API_VERSION_V2 if self._session_token else self._version
        return ApiRequest(
            op=op,
            version=version,
            auth=None if self._session_token else self._auth,
            payload=payload or {},
            request_id=self._request_id,
            session=self._session_token,
        )

    def _call_once(
        self, op: str, payload: Optional[dict], version: Optional[str]
    ) -> dict:
        request = self._build_request(op, payload, version)
        raw = self._transport.send(request.to_wire())
        response = ApiResponse.from_wire(raw)
        if response.request_id not in (0, self._request_id):
            raise TransportApiError(
                f"response for request {response.request_id} arrived while "
                f"waiting for {self._request_id}"
            )
        if not response.ok:
            raise error_from_wire(response.error or {})
        return response.payload or {}

    def pipeline(self) -> ClientPipeline:
        """Stage multiple calls and ship them as one pipelined batch.

        On the socket transport the batch goes out in a single write and
        the gateway answers in order — the per-request round trip is paid
        once per batch instead of once per call::

            pipe = client.pipeline()
            handles = [pipe.job_status(job_id) for job_id in ids]
            views = pipe.flush()          # or handles[i].result()
        """
        return ClientPipeline(self)

    # -- sessions (v2) ------------------------------------------------------
    def login(self, ttl_s: Optional[float] = None) -> SessionView:
        """Exchange account credentials for a short-lived bearer session.

        Every subsequent request carries only the session token.  The
        client re-logs-in transparently (once per call) when the session
        expires, so long-running drivers never see ``auth.session_expired``.
        """
        self._session_token = None
        payload = {} if ttl_s is None else {"ttl_s": ttl_s}
        wire = self._call_once("auth.login", payload, API_VERSION_V2)
        view = SessionView.from_wire(wire)
        self._session_token = view.session_token
        self._session_ttl_s = ttl_s
        return view

    def logout(self) -> bool:
        """Revoke the active session; true when the server dropped it.

        Best-effort by design: a session the server already dropped
        (expired, revoked elsewhere) reports ``False`` instead of raising —
        logout is a teardown path and must not crash cleanup code.
        """
        if self._session_token is None:
            return False
        try:
            wire = self._call_once("auth.logout", {}, API_VERSION_V2)
        except SessionApiError:
            self._session_token = None
            return False
        self._session_token = None
        return bool(wire.get("revoked", False))

    # -- jobs ---------------------------------------------------------------
    def submit_job(
        self,
        name: str,
        payload: Union[str, Callable],
        *,
        owner: Optional[str] = None,
        description: str = "",
        priority: float = 0.0,
        timeout_s: float = 3600.0,
        is_pipeline_change: bool = False,
        log_retention_days: float = 7.0,
        vantage_point: Optional[str] = None,
        device_serial: Optional[str] = None,
        connectivity: Optional[str] = None,
        require_low_controller_cpu: bool = False,
        max_controller_cpu_percent: float = 50.0,
        idempotency_key: Optional[str] = None,
        device_count: int = 1,
        connector: Optional[str] = None,
        execution: str = "push",
    ) -> JobView:
        """Submit one job; returns its :class:`~repro.api.schemas.JobView`.

        ``payload`` is the server-side payload catalogue name; a callable is
        auto-registered under ``client/<username>/<name>`` first (local-use
        convenience, see the module docstring).  ``idempotency_key`` (v2)
        makes retrying this exact call safe: the server returns the original
        job instead of enqueueing a duplicate.

        On a reconnecting transport a v2 submission without an explicit key
        gets a generated one: the transport may transparently resend the
        request after a gateway drop (drain, rolling restart), and without
        a key a resend whose first copy already landed would double-submit.
        The key is journaled server-side, so the guarantee survives a
        restart-with-recovery between the two sends.
        """
        if (
            idempotency_key is None
            and self._transport.supports_reconnect
            and (self._session_token is not None or self._version == API_VERSION_V2)
        ):
            idempotency_key = uuid.uuid4().hex
        payload_name = self._resolve_payload_name(name, payload)
        constraints = JobConstraintsV1(
            vantage_point=vantage_point,
            device_serial=device_serial,
            connectivity=connectivity,
            require_low_controller_cpu=require_low_controller_cpu,
            max_controller_cpu_percent=max_controller_cpu_percent,
            device_count=device_count,
            connector=connector,
        )
        body = {
            "name": name,
            "payload": payload_name,
            "owner": owner,
            "description": description,
            "priority": priority,
            "timeout_s": timeout_s,
            "is_pipeline_change": is_pipeline_change,
            "log_retention_days": log_retention_days,
            "constraints": constraints.to_wire(),
        }
        version = None
        if idempotency_key is not None:
            body["idempotency_key"] = idempotency_key
            version = API_VERSION_V2
        if execution != "push":
            # Agent-pull is a v2 concept; the field is elided otherwise so
            # v1 servers and goldens never see it.
            body["execution"] = execution
            version = API_VERSION_V2
        wire = self._call("job.submit", body, version)
        return JobView.from_wire(wire)

    def _resolve_payload_name(self, job_name: str, payload: Union[str, Callable]) -> str:
        if isinstance(payload, str):
            return payload
        if not callable(payload):
            raise TransportApiError(
                f"payload must be a registered name or a callable, got {payload!r}"
            )
        from repro.accessserver.persistence import payload_name, register_payload

        existing = payload_name(payload)
        if existing is not None:
            return existing
        generated = f"client/{self.username}/{job_name}"
        register_payload(generated, payload)
        return generated

    def job_status(self, job_id: int) -> JobView:
        return JobView.from_wire(self._call("job.status", {"job_id": job_id}))

    def list_jobs(self, status: Optional[str] = None) -> List[JobView]:
        wire = self._call("job.list", {"status": status})
        return [JobView.from_wire(item) for item in wire.get("jobs", [])]

    def job_page(
        self,
        status: Optional[str] = None,
        owner: Optional[str] = None,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> JobPage:
        """One ``job.list`` page (v2): filtered, windowed, with the total."""
        body: dict = {"status": status}
        if owner is not None:
            body["owner"] = owner
        if limit is not None:
            body["limit"] = limit
        if offset:
            body["offset"] = offset
        wire = self._call("job.list", body, API_VERSION_V2)
        return JobPage(
            jobs=[JobView.from_wire(item) for item in wire.get("jobs", [])],
            total=wire.get("total", 0),
            offset=wire.get("offset", 0),
            limit=wire.get("limit"),
        )

    def cancel_job(self, job_id: int) -> JobView:
        return JobView.from_wire(self._call("job.cancel", {"job_id": job_id}))

    def job_results(self, job_id: int) -> JobResultsView:
        return JobResultsView.from_wire(self._call("job.results", {"job_id": job_id}))

    # -- streaming (v2) -----------------------------------------------------
    def watch_job(self, job_id: int, timeout_s: Optional[float] = None) -> JobWatch:
        """Subscribe to one job's ``dispatch.*`` events until it terminates.

        Returns a :class:`JobWatch` iterator — the replacement for every
        ``while status != "completed"`` polling loop.  ``watch.wait()``
        consumes the stream and returns the final job view.
        """
        wire = self._call("job.watch", {"job_id": job_id}, API_VERSION_V2)
        ack = SubscriptionAck.from_wire(wire)
        return JobWatch(self, ack.subscription_id, ack.job, timeout_s=timeout_s)

    def events(
        self, topic_prefix: str = "dispatch.", timeout_s: Optional[float] = None
    ) -> PushStream:
        """Subscribe to the server's event bus by topic prefix (v2).

        The returned :class:`PushStream` yields one
        :class:`~repro.api.schemas.ApiPush` per matching bus record; call
        ``close()`` to cancel the subscription.
        """
        wire = self._call(
            "events.subscribe", {"topic_prefix": topic_prefix}, API_VERSION_V2
        )
        ack = SubscriptionAck.from_wire(wire)
        return PushStream(self, ack.subscription_id, timeout_s=timeout_s)

    def cancel_subscription(self, subscription_id: int) -> bool:
        wire = self._call(
            "subscription.cancel", {"subscription_id": subscription_id}, API_VERSION_V2
        )
        return bool(wire.get("cancelled", False))

    # -- agent-pull execution (v2) --------------------------------------------
    def agent_register(
        self,
        agent_id: str,
        vantage_point: Optional[str] = None,
        connectors: Optional[List[str]] = None,
        tags: Optional[Dict[str, str]] = None,
    ) -> AgentView:
        """Register (or refresh) an edge daemon's identity (v2, idempotent)."""
        wire = self._call(
            "agent.register",
            {
                "agent_id": agent_id,
                "vantage_point": vantage_point,
                "connectors": list(connectors or []),
                "tags": dict(tags or {}),
            },
            API_VERSION_V2,
        )
        return AgentView.from_wire(wire)

    def agent_poll(
        self, agent_id: str, wait_s: float = 0.0, limit: int = 10
    ) -> AgentPollView:
        """Claimable jobs for ``agent_id``; ``wait_s > 0`` long-polls (v2).

        The server clamps the wait to its own ceiling; on the in-process
        transport keep ``wait_s=0`` — nothing can mutate state while this
        thread is parked.
        """
        wire = self._call(
            "agent.poll",
            {"agent_id": agent_id, "wait_s": wait_s, "limit": limit},
            API_VERSION_V2,
        )
        return AgentPollView.from_wire(wire)

    def agent_claim(
        self, agent_id: str, job_id: int, ttl_s: float = 30.0
    ) -> AgentLeaseView:
        """Atomically claim one offered job and all its device slots (v2)."""
        wire = self._call(
            "agent.claim",
            {"agent_id": agent_id, "job_id": job_id, "ttl_s": ttl_s},
            API_VERSION_V2,
        )
        return AgentLeaseView.from_wire(wire)

    def agent_heartbeat(self, lease_id: str, agent_id: str) -> AgentLeaseView:
        """Renew a lease before its TTL lapses (v2)."""
        wire = self._call(
            "agent.heartbeat",
            {"lease_id": lease_id, "agent_id": agent_id},
            API_VERSION_V2,
        )
        return AgentLeaseView.from_wire(wire)

    def agent_report(
        self,
        lease_id: str,
        agent_id: str,
        status: str,
        result: object = None,
        error: Optional[str] = None,
        children: Optional[List[dict]] = None,
    ) -> AgentReportView:
        """Upload a claimed job's terminal outcome (v2, idempotent on retry)."""
        body: dict = {
            "lease_id": lease_id,
            "agent_id": agent_id,
            "status": status,
            "children": list(children or []),
        }
        if result is not None:
            body["result"] = result
        if error is not None:
            body["error"] = error
        wire = self._call("agent.report", body, API_VERSION_V2)
        return AgentReportView.from_wire(wire)

    # -- admin control plane (v2) -------------------------------------------
    def register_vantage_point(
        self,
        name: str,
        institution: str,
        contact_email: str = "",
        public_address: str = "",
        device_count: int = 1,
        device_profile: str = "samsung-j7-duo",
    ) -> VantagePointView:
        """Admit a new member vantage point entirely over the wire (admin)."""
        wire = self._call(
            "vantage-point.register",
            {
                "name": name,
                "institution": institution,
                "contact_email": contact_email,
                "public_address": public_address,
                "device_count": device_count,
                "device_profile": device_profile,
            },
            API_VERSION_V2,
        )
        return VantagePointView.from_wire(wire)

    def approvals(self) -> List[JobView]:
        """Pipeline changes waiting for administrator approval."""
        wire = self._call("approvals.list", {}, API_VERSION_V2)
        return [JobView.from_wire(item) for item in wire.get("jobs", [])]

    def approve_job(self, job_id: int) -> JobView:
        return JobView.from_wire(
            self._call("job.approve", {"job_id": job_id}, API_VERSION_V2)
        )

    def reject_job(self, job_id: int, reason: str = "") -> JobView:
        return JobView.from_wire(
            self._call(
                "job.reject", {"job_id": job_id, "reason": reason}, API_VERSION_V2
            )
        )

    def grant_credits(
        self, owner: str, amount_device_hours: float, note: str = ""
    ) -> CreditView:
        wire = self._call(
            "credits.grant",
            {"owner": owner, "amount_device_hours": amount_device_hours, "note": note},
            API_VERSION_V2,
        )
        return CreditView.from_wire(wire)

    def create_user(
        self, username: str, role: str, token: str, email: str = ""
    ) -> UserView:
        wire = self._call(
            "user.create",
            {"username": username, "role": role, "token": token, "email": email},
            API_VERSION_V2,
        )
        return UserView.from_wire(wire)

    # -- operations analytics (v2) ------------------------------------------
    def analytics_report(self, owner: Optional[str] = None) -> AnalyticsReportView:
        """The platform's materialised operations report (v2).

        Per-owner utilisation and credit burn, queue-wait / run-time
        percentiles, per-device occupancy and failure rate — folded from
        the server's event-sourced record stream.  ``owner`` narrows the
        owners table to one account.
        """
        body: dict = {}
        if owner is not None:
            body["owner"] = owner
        wire = self._call("analytics.report", body, API_VERSION_V2)
        return AnalyticsReportView.from_wire(wire)

    def analytics_timeseries(self, bucket_s: float = 60.0) -> AnalyticsTimeseriesView:
        """Fleet throughput over time, bucketed at ``bucket_s`` (v2)."""
        wire = self._call(
            "analytics.timeseries", {"bucket_s": bucket_s}, API_VERSION_V2
        )
        return AnalyticsTimeseriesView.from_wire(wire)

    # -- observability (v2) --------------------------------------------------
    def obs_metrics(self, prefix: Optional[str] = None) -> ObsMetricsView:
        """Snapshot of the platform's metrics registry (v2).

        ``prefix`` narrows the snapshot to metric families whose name
        starts with it (e.g. ``"gateway_"``).  Render the result as
        Prometheus-style text with
        :func:`repro.obs.render_snapshot` on :meth:`ObsMetricsView.to_snapshot`.
        """
        body: dict = {}
        if prefix is not None:
            body["prefix"] = prefix
        wire = self._call("obs.metrics", body, API_VERSION_V2)
        return ObsMetricsView.from_wire(wire)

    def obs_trace(
        self, trace_id: Optional[str] = None, job_id: Optional[int] = None
    ) -> ObsTraceView:
        """Fetch one trace's finished spans (v2).

        Identify the trace either directly (``trace_id``) or by the job it
        followed (``job_id``); one of the two is required.
        """
        body: dict = {}
        if trace_id is not None:
            body["trace_id"] = trace_id
        if job_id is not None:
            body["job_id"] = job_id
        wire = self._call("obs.trace", body, API_VERSION_V2)
        return ObsTraceView.from_wire(wire)

    # -- sessions, credits, fleet, status -----------------------------------
    def reserve_session(
        self,
        vantage_point: str,
        device_serial: str,
        start_s: float,
        duration_s: float,
    ) -> ReservationView:
        wire = self._call(
            "session.reserve",
            {
                "vantage_point": vantage_point,
                "device_serial": device_serial,
                "start_s": start_s,
                "duration_s": duration_s,
            },
        )
        return ReservationView.from_wire(wire)

    def credits_balance(self, owner: Optional[str] = None) -> CreditView:
        return CreditView.from_wire(self._call("credits.balance", {"owner": owner}))

    def fleet(self) -> FleetView:
        return FleetView.from_wire(self._call("fleet.list"))

    def server_status(self, version: Optional[str] = None) -> StatusView:
        """Platform-wide status; pass ``version="2.0"`` for the v2 extras
        (write-ahead-journal health in ``StatusView.journal``)."""
        return StatusView.from_wire(self._call("server.status", {}, version))


def in_process_client(server, username: str, token: str) -> BatteryLabClient:
    """A client driving ``server`` (an :class:`AccessServer`) in-process."""
    from repro.api.router import ApiRouter

    return BatteryLabClient(InProcessTransport(ApiRouter(server)), username, token)
