"""The BatteryLab client SDK — the sanctioned way into the platform.

:class:`BatteryLabClient` wraps the v1 request/response protocol behind
typed Python methods: every call builds an :class:`~repro.api.schemas.ApiRequest`,
ships it through a :class:`Transport`, and either returns the parsed
response DTO or raises the typed :class:`~repro.api.errors.ApiError` the
server sent back.  The same client code drives a local simulation (via
:class:`InProcessTransport`) or a remote access server (via
:class:`~repro.api.gateway.JsonLinesTransport`) — transports are dumb
byte pipes, all semantics live in the envelopes.

Job payloads are *named*: a Python callable cannot cross a JSON wire, so
``submit_job`` takes the name of a payload registered server-side with
:func:`repro.accessserver.persistence.register_payload`.  As a local-use
convenience, passing a callable auto-registers it in the (process-global)
payload catalogue and submits its name — which works against in-process
and same-process gateway servers, and fails loudly with
``request.invalid`` against a genuinely remote server whose catalogue does
not have it.
"""

from __future__ import annotations

import abc
import json
from typing import Callable, List, Optional, Union

from repro.api.errors import ApiError, TransportApiError, error_from_wire
from repro.api.schemas import (
    API_VERSION,
    ApiRequest,
    ApiResponse,
    AuthCredentials,
    CreditView,
    FleetView,
    JobConstraintsV1,
    JobResultsView,
    JobView,
    ReservationView,
    StatusView,
)


class Transport(abc.ABC):
    """Moves one wire-form request dict to a router and returns the response."""

    @abc.abstractmethod
    def send(self, request: dict) -> dict:
        """Deliver ``request`` and return the wire-form response envelope."""

    def close(self) -> None:
        """Release transport resources (sockets); idempotent."""


class InProcessTransport(Transport):
    """Calls an :class:`~repro.api.router.ApiRouter` in the same process.

    Every envelope still goes through a full JSON ``dumps``/``loads`` round
    trip, so anything that would break on a real wire breaks identically
    here — the local simulation cannot accidentally rely on passing live
    Python objects through the API.
    """

    def __init__(self, router) -> None:
        self._router = router

    def send(self, request: dict) -> dict:
        try:
            wire_request = json.loads(json.dumps(request))
        except (TypeError, ValueError) as exc:
            raise TransportApiError(f"request is not JSON-serializable: {exc}") from None
        response = self._router.handle(wire_request)
        return json.loads(json.dumps(response))


class BatteryLabClient:
    """Typed v1 client bound to one user's credentials.

    Parameters
    ----------
    transport:
        Where requests go: :class:`InProcessTransport` for a local
        simulation, :class:`~repro.api.gateway.JsonLinesTransport` for a
        remote gateway.
    username / token:
        Credentials sent with every request (the gateway is stateless).
    version:
        Protocol version to claim; servers reject unsupported versions
        with ``request.version_unsupported``.
    """

    def __init__(
        self,
        transport: Transport,
        username: str,
        token: str,
        version: str = API_VERSION,
    ) -> None:
        self._transport = transport
        self._auth = AuthCredentials(username=username, token=token)
        self._version = version
        self._request_id = 0

    @property
    def username(self) -> str:
        return self._auth.username

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "BatteryLabClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plumbing -----------------------------------------------------------
    def _call(self, op: str, payload: Optional[dict] = None) -> dict:
        self._request_id += 1
        request = ApiRequest(
            op=op,
            version=self._version,
            auth=self._auth,
            payload=payload or {},
            request_id=self._request_id,
        )
        raw = self._transport.send(request.to_wire())
        response = ApiResponse.from_wire(raw)
        if response.request_id not in (0, self._request_id):
            raise TransportApiError(
                f"response for request {response.request_id} arrived while "
                f"waiting for {self._request_id}"
            )
        if not response.ok:
            raise error_from_wire(response.error or {})
        return response.payload or {}

    # -- jobs ---------------------------------------------------------------
    def submit_job(
        self,
        name: str,
        payload: Union[str, Callable],
        *,
        owner: Optional[str] = None,
        description: str = "",
        priority: float = 0.0,
        timeout_s: float = 3600.0,
        is_pipeline_change: bool = False,
        log_retention_days: float = 7.0,
        vantage_point: Optional[str] = None,
        device_serial: Optional[str] = None,
        connectivity: Optional[str] = None,
        require_low_controller_cpu: bool = False,
        max_controller_cpu_percent: float = 50.0,
    ) -> JobView:
        """Submit one job; returns its :class:`~repro.api.schemas.JobView`.

        ``payload`` is the server-side payload catalogue name; a callable is
        auto-registered under ``client/<username>/<name>`` first (local-use
        convenience, see the module docstring).
        """
        payload_name = self._resolve_payload_name(name, payload)
        constraints = JobConstraintsV1(
            vantage_point=vantage_point,
            device_serial=device_serial,
            connectivity=connectivity,
            require_low_controller_cpu=require_low_controller_cpu,
            max_controller_cpu_percent=max_controller_cpu_percent,
        )
        wire = self._call(
            "job.submit",
            {
                "name": name,
                "payload": payload_name,
                "owner": owner,
                "description": description,
                "priority": priority,
                "timeout_s": timeout_s,
                "is_pipeline_change": is_pipeline_change,
                "log_retention_days": log_retention_days,
                "constraints": constraints.to_wire(),
            },
        )
        return JobView.from_wire(wire)

    def _resolve_payload_name(self, job_name: str, payload: Union[str, Callable]) -> str:
        if isinstance(payload, str):
            return payload
        if not callable(payload):
            raise TransportApiError(
                f"payload must be a registered name or a callable, got {payload!r}"
            )
        from repro.accessserver.persistence import payload_name, register_payload

        existing = payload_name(payload)
        if existing is not None:
            return existing
        generated = f"client/{self.username}/{job_name}"
        register_payload(generated, payload)
        return generated

    def job_status(self, job_id: int) -> JobView:
        return JobView.from_wire(self._call("job.status", {"job_id": job_id}))

    def list_jobs(self, status: Optional[str] = None) -> List[JobView]:
        wire = self._call("job.list", {"status": status})
        return [JobView.from_wire(item) for item in wire.get("jobs", [])]

    def cancel_job(self, job_id: int) -> JobView:
        return JobView.from_wire(self._call("job.cancel", {"job_id": job_id}))

    def job_results(self, job_id: int) -> JobResultsView:
        return JobResultsView.from_wire(self._call("job.results", {"job_id": job_id}))

    # -- sessions, credits, fleet, status -----------------------------------
    def reserve_session(
        self,
        vantage_point: str,
        device_serial: str,
        start_s: float,
        duration_s: float,
    ) -> ReservationView:
        wire = self._call(
            "session.reserve",
            {
                "vantage_point": vantage_point,
                "device_serial": device_serial,
                "start_s": start_s,
                "duration_s": duration_s,
            },
        )
        return ReservationView.from_wire(wire)

    def credits_balance(self, owner: Optional[str] = None) -> CreditView:
        return CreditView.from_wire(self._call("credits.balance", {"owner": owner}))

    def fleet(self) -> FleetView:
        return FleetView.from_wire(self._call("fleet.list"))

    def server_status(self) -> StatusView:
        return StatusView.from_wire(self._call("server.status"))


def in_process_client(server, username: str, token: str) -> BatteryLabClient:
    """A client driving ``server`` (an :class:`AccessServer`) in-process."""
    from repro.api.router import ApiRouter

    return BatteryLabClient(InProcessTransport(ApiRouter(server)), username, token)
