"""Human testers and shared remote-control sessions.

BatteryLab distinguishes *experimenters* (who design and deploy tests) from
*testers*, "whose task is to manually interact with a device"; testers are
"either volunteers, recruited via email or social media, or paid, recruited
via crowdsourcing websites like Mechanical Turk and Figure Eight"
(Section 3).  The GUI toolbar can be hidden from the page shared with a test
participant (Section 3.2).  This module models recruitment, session sharing
and the tester-facing URL.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class RecruitmentChannel(str, enum.Enum):
    VOLUNTEER_EMAIL = "volunteer-email"
    VOLUNTEER_SOCIAL = "volunteer-social"
    MECHANICAL_TURK = "mechanical-turk"
    FIGURE_EIGHT = "figure-eight"


#: Channels whose participants are paid per task.
PAID_CHANNELS = frozenset({RecruitmentChannel.MECHANICAL_TURK, RecruitmentChannel.FIGURE_EIGHT})


class TesterError(RuntimeError):
    """Raised for unknown testers or invalid session operations."""


@dataclass
class Tester:
    """One recruited test participant."""

    tester_id: int
    name: str
    channel: RecruitmentChannel
    hourly_rate_usd: float = 0.0

    @property
    def paid(self) -> bool:
        return self.channel in PAID_CHANNELS


@dataclass
class TesterSession:
    """A device-mirroring session shared with one tester."""

    session_id: int
    tester: Tester
    vantage_point: str
    device_serial: str
    share_url: str
    toolbar_visible: bool
    started_at: float
    duration_s: float
    actions: List[str] = field(default_factory=list)
    closed: bool = False

    def record_action(self, action: str) -> None:
        if self.closed:
            raise TesterError(f"session {self.session_id} is closed")
        self.actions.append(action)

    def close(self) -> None:
        self.closed = True

    def cost_usd(self) -> float:
        """What the session costs (zero for volunteers)."""
        if not self.tester.paid:
            return 0.0
        return self.tester.hourly_rate_usd * self.duration_s / 3600.0


class TesterPool:
    """Recruits testers and hands out shared sessions."""

    def __init__(self) -> None:
        self._testers: Dict[int, Tester] = {}
        self._sessions: Dict[int, TesterSession] = {}
        self._tester_ids = itertools.count(1)
        self._session_ids = itertools.count(1)

    # -- recruitment ------------------------------------------------------------
    def recruit(
        self,
        name: str,
        channel: RecruitmentChannel,
        hourly_rate_usd: float = 0.0,
    ) -> Tester:
        channel = RecruitmentChannel(channel)
        if channel in PAID_CHANNELS and hourly_rate_usd <= 0:
            raise TesterError(f"paid channel {channel.value!r} requires a positive hourly rate")
        tester = Tester(
            tester_id=next(self._tester_ids),
            name=name,
            channel=channel,
            hourly_rate_usd=hourly_rate_usd,
        )
        self._testers[tester.tester_id] = tester
        return tester

    def tester(self, tester_id: int) -> Tester:
        try:
            return self._testers[tester_id]
        except KeyError:
            raise TesterError(f"unknown tester {tester_id}") from None

    def testers(self, channel: Optional[RecruitmentChannel] = None) -> List[Tester]:
        testers = sorted(self._testers.values(), key=lambda t: t.tester_id)
        if channel is None:
            return testers
        return [t for t in testers if t.channel is RecruitmentChannel(channel)]

    # -- sessions ------------------------------------------------------------------
    def open_session(
        self,
        tester_id: int,
        vantage_point: str,
        device_serial: str,
        now: float,
        duration_s: float,
        toolbar_visible: bool = False,
    ) -> TesterSession:
        """Share a device mirror with a tester for a bounded amount of time."""
        if duration_s <= 0:
            raise TesterError("session duration must be positive")
        tester = self.tester(tester_id)
        session = TesterSession(
            session_id=next(self._session_ids),
            tester=tester,
            vantage_point=vantage_point,
            device_serial=device_serial,
            share_url=f"https://{vantage_point}.batterylab.dev/?session={next(self._session_ids)}",
            toolbar_visible=toolbar_visible,
            started_at=now,
            duration_s=duration_s,
        )
        self._sessions[session.session_id] = session
        return session

    def session(self, session_id: int) -> TesterSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise TesterError(f"unknown tester session {session_id}") from None

    def sessions(self) -> List[TesterSession]:
        return sorted(self._sessions.values(), key=lambda s: s.session_id)

    def total_cost_usd(self) -> float:
        return sum(session.cost_usd() for session in self._sessions.values())
