"""Job queue, dispatch constraints and timed sessions — the scheduler facade.

The access server "will dispatch queued jobs based on experimenter
constraints, e.g., target device, connectivity, or network location, and
BatteryLab constraints, e.g., one job at the time per device"
(Section 3.1).  Jobs additionally wait for "no other test running
(required) and low CPU utilization (optional)" (Section 4.2).

:class:`JobScheduler` keeps that contract but delegates every dispatch
decision to the indexed :class:`~repro.accessserver.dispatch.DispatchEngine`:
free slots, reservations and the job queue live in per-vantage-point /
per-device indexes instead of flat lists, batches of assignments are
computed per tick via :meth:`JobScheduler.dispatch_batch`, and queue
ordering is a pluggable :class:`~repro.accessserver.policies.SchedulingPolicy`
(``"fifo"`` — the default and the historical behaviour — ``"priority"``
or ``"fair-share"``).  :class:`SchedulingError` and
:class:`SessionReservation` are re-exported from
:mod:`repro.accessserver.dispatch`, their new home.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.accessserver.dispatch import (
    Assignment,
    DispatchEngine,
    SchedulingError,
    SessionReservation,
)
from repro.accessserver.jobs import Job, JobStatus
from repro.accessserver.policies import SchedulingPolicy
from repro.simulation.events import EventBus

__all__ = [
    "JobScheduler",
    "SchedulingError",
    "SessionReservation",
]


class JobScheduler:
    """Keeps the job queue and decides what can run where.

    The scheduler does not execute jobs itself; the access server either
    pulls one decision at a time via :meth:`next_dispatchable` or — the
    fast path — asks for a maximal assignment set via
    :meth:`dispatch_batch`, and reports completion via :meth:`release`.

    Parameters
    ----------
    policy:
        Scheduling policy instance or registered name; defaults to FIFO.
    event_bus:
        Optional :class:`~repro.simulation.events.EventBus` that receives
        structured ``dispatch.*`` records for every assignment/release.
    reservation_admission:
        ``"ignore"`` (default) or ``"defer"``; see
        :class:`~repro.accessserver.dispatch.DispatchEngine`.
    """

    def __init__(
        self,
        policy: Union[str, SchedulingPolicy] = "fifo",
        event_bus: Optional[EventBus] = None,
        reservation_admission: str = "ignore",
    ) -> None:
        self._engine = DispatchEngine(
            policy=policy, event_bus=event_bus, reservation_admission=reservation_admission
        )
        self._all_jobs: Dict[int, Job] = {}
        self._next_reservation_id = 1

    # -- policy ---------------------------------------------------------------------
    @property
    def engine(self) -> DispatchEngine:
        """The underlying indexed dispatch engine."""
        return self._engine

    @property
    def policy(self) -> SchedulingPolicy:
        return self._engine.policy

    def set_policy(self, policy: Union[str, SchedulingPolicy]) -> SchedulingPolicy:
        """Swap the scheduling policy; takes effect from the next tick."""
        return self._engine.set_policy(policy)

    # -- topology -------------------------------------------------------------------
    def register_device(self, vantage_point: str, device_serial: str) -> None:
        self._engine.slots.register(vantage_point, device_serial)

    def registered_devices(self) -> List[str]:
        return self._engine.slots.keys()

    def device_count(self) -> int:
        """Number of registered device slots — the maximum width one
        dispatch wave can reach, and therefore the natural worker-pool
        size for parallel wave execution."""
        return len(self._engine.slots.keys())

    def device_busy(self, vantage_point: str, device_serial: str) -> bool:
        return self._engine.slots.is_busy(vantage_point, device_serial)

    # -- queue management ---------------------------------------------------------------
    def submit(self, job: Job, now: float) -> Job:
        job.submitted_at = now
        job.workspace.created_at = now
        job.workspace.retention_days = job.spec.log_retention_days
        self._all_jobs[job.job_id] = job
        if job.status is JobStatus.QUEUED:
            self._engine.queue.push(job)
        return job

    def enqueue_approved(self, job: Job) -> None:
        """Move a job that was pending approval into the queue."""
        if job.status is not JobStatus.QUEUED:
            job.status = JobStatus.QUEUED
        self._engine.queue.push(job)
        self._all_jobs.setdefault(job.job_id, job)

    def cancel(self, job_id: int) -> None:
        """Cancel a queued or running job; a running job's device is freed."""
        job = self.job(job_id)
        job.mark_cancelled()
        self._engine.cancel(job)

    def job(self, job_id: int) -> Job:
        try:
            return self._all_jobs[job_id]
        except KeyError:
            raise SchedulingError(f"unknown job id {job_id}") from None

    def jobs(self, status: Optional[JobStatus] = None) -> List[Job]:
        jobs = sorted(self._all_jobs.values(), key=lambda job: job.job_id)
        if status is None:
            return jobs
        return [job for job in jobs if job.status is status]

    def queue_length(self) -> int:
        return len(self._engine.queue)

    # -- dispatch --------------------------------------------------------------------------
    def next_dispatchable(
        self,
        now: float,
        controller_cpu: Optional[Callable[[str], float]] = None,
    ) -> Optional[Tuple[Job, str, str]]:
        """Find the first queued job (in policy order) that can run right now.

        Returns ``(job, vantage_point, device_serial)`` or ``None``.  The
        optional ``controller_cpu`` callable maps a vantage-point name to its
        current CPU utilisation so that the "low CPU utilization (optional)"
        constraint can be honoured.
        """
        return self._engine.next_dispatchable(now, controller_cpu=controller_cpu)

    def dispatch_batch(
        self,
        now: float,
        controller_cpu: Optional[Callable[[str], float]] = None,
        max_assignments: Optional[int] = None,
    ) -> List[Assignment]:
        """Assign a maximal set of queued jobs to free devices in one tick.

        Every returned :class:`~repro.accessserver.dispatch.Assignment`'s job
        is RUNNING on its slot when this returns; the caller executes them and
        calls :meth:`release` as each finishes.  Under the FIFO policy the
        assignment set matches what repeated :meth:`next_dispatchable` +
        :meth:`assign` calls would have produced on the same inputs.
        """
        return self._engine.dispatch_batch(
            now, controller_cpu=controller_cpu, max_assignments=max_assignments
        )

    def assign(self, job: Job, vantage_point: str, device_serial: str, now: float) -> None:
        self._engine.assign(job, vantage_point, device_serial, now)

    def release(self, job: Job) -> None:
        """Free the device ``job`` ran on — O(1) via the job's own assignment."""
        self._engine.release(job)

    # -- timed sessions -----------------------------------------------------------------------
    def reserve_session(
        self,
        username: str,
        vantage_point: str,
        device_serial: str,
        start_s: float,
        duration_s: float,
    ) -> SessionReservation:
        """Reserve an interactive time slot; overlapping reservations are rejected."""
        reservation = SessionReservation(
            reservation_id=self._allocate_reservation_id(),
            username=username,
            vantage_point=vantage_point,
            device_serial=device_serial,
            start_s=start_s,
            duration_s=duration_s,
        )
        self._engine.reservations.add(reservation)
        return reservation

    def reservations(self, active_at: Optional[float] = None) -> List[SessionReservation]:
        if active_at is None:
            return self._engine.reservations.all()
        return self._engine.reservations.active_at(active_at)

    def cancel_reservation(self, reservation_id: int) -> None:
        self._engine.cancel_reservation(reservation_id)

    def _allocate_reservation_id(self) -> int:
        reservation_id = self._next_reservation_id
        self._next_reservation_id += 1
        return reservation_id

    # -- crash recovery -----------------------------------------------------------------------
    def restore_job(self, job: Job, queued: bool) -> None:
        """Re-admit a journaled job without touching its timestamps or id.

        ``queued=True`` pushes the job at the tail of the FIFO queue, so the
        recovery code re-inserts jobs in their original first-enqueue order
        to reproduce the pre-crash queue exactly.
        """
        self._all_jobs[job.job_id] = job
        if queued and job.status is JobStatus.QUEUED:
            self._engine.queue.push(job)

    def restore_reservation(self, reservation: SessionReservation) -> None:
        """Re-add a journaled reservation, keeping the id allocator ahead of it."""
        self._engine.reservations.add(reservation)
        self.claim_reservation_id(reservation.reservation_id)

    def claim_reservation_id(self, reservation_id: int) -> None:
        """Fast-forward the id allocator past a recovered reservation id."""
        if reservation_id >= self._next_reservation_id:
            self._next_reservation_id = reservation_id + 1
