"""Job queue, dispatch constraints and timed sessions.

The access server "will dispatch queued jobs based on experimenter
constraints, e.g., target device, connectivity, or network location, and
BatteryLab constraints, e.g., one job at the time per device"
(Section 3.1).  Jobs additionally wait for "no other test running
(required) and low CPU utilization (optional)" (Section 4.2).  The
scheduler implements those rules, plus the concurrent *timed sessions*
experimenters reserve for interactive use.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.accessserver.jobs import Job, JobStatus


class SchedulingError(RuntimeError):
    """Raised for conflicting reservations or invalid dispatch operations."""


@dataclass
class SessionReservation:
    """A reserved time slot for interactive (remote-control) use of a device."""

    reservation_id: int
    username: str
    vantage_point: str
    device_serial: str
    start_s: float
    duration_s: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def overlaps(self, other: "SessionReservation") -> bool:
        if self.vantage_point != other.vantage_point or self.device_serial != other.device_serial:
            return False
        return self.start_s < other.end_s and other.start_s < self.end_s

    def active_at(self, now: float) -> bool:
        return self.start_s <= now < self.end_s


@dataclass
class _DeviceSlot:
    vantage_point: str
    device_serial: str
    busy_job_id: Optional[int] = None


class JobScheduler:
    """Keeps the job queue and decides what can run where.

    The scheduler does not execute jobs itself; the access server asks it
    for dispatchable work via :meth:`next_dispatchable` and reports
    completion via :meth:`release`.
    """

    def __init__(self) -> None:
        self._queue: List[Job] = []
        self._all_jobs: Dict[int, Job] = {}
        self._slots: Dict[str, _DeviceSlot] = {}
        self._reservations: List[SessionReservation] = []
        self._reservation_ids = itertools.count(1)

    # -- topology -------------------------------------------------------------------
    def register_device(self, vantage_point: str, device_serial: str) -> None:
        key = f"{vantage_point}/{device_serial}"
        if key not in self._slots:
            self._slots[key] = _DeviceSlot(vantage_point=vantage_point, device_serial=device_serial)

    def registered_devices(self) -> List[str]:
        return sorted(self._slots)

    def device_busy(self, vantage_point: str, device_serial: str) -> bool:
        slot = self._slots.get(f"{vantage_point}/{device_serial}")
        return slot is not None and slot.busy_job_id is not None

    # -- queue management ---------------------------------------------------------------
    def submit(self, job: Job, now: float) -> Job:
        job.submitted_at = now
        job.workspace.created_at = now
        job.workspace.retention_days = job.spec.log_retention_days
        self._all_jobs[job.job_id] = job
        if job.status is JobStatus.QUEUED:
            self._queue.append(job)
        return job

    def enqueue_approved(self, job: Job) -> None:
        """Move a job that was pending approval into the queue."""
        if job.status is not JobStatus.QUEUED:
            job.status = JobStatus.QUEUED
        if job not in self._queue:
            self._queue.append(job)
        self._all_jobs.setdefault(job.job_id, job)

    def cancel(self, job_id: int) -> None:
        job = self.job(job_id)
        job.mark_cancelled()
        if job in self._queue:
            self._queue.remove(job)

    def job(self, job_id: int) -> Job:
        try:
            return self._all_jobs[job_id]
        except KeyError:
            raise SchedulingError(f"unknown job id {job_id}") from None

    def jobs(self, status: Optional[JobStatus] = None) -> List[Job]:
        jobs = sorted(self._all_jobs.values(), key=lambda job: job.job_id)
        if status is None:
            return jobs
        return [job for job in jobs if job.status is status]

    def queue_length(self) -> int:
        return len(self._queue)

    # -- dispatch --------------------------------------------------------------------------
    def _candidate_slots(self, job: Job) -> List[_DeviceSlot]:
        constraints = job.spec.constraints
        slots = []
        for slot in self._slots.values():
            if constraints.vantage_point and slot.vantage_point != constraints.vantage_point:
                continue
            if constraints.device_serial and slot.device_serial != constraints.device_serial:
                continue
            if slot.busy_job_id is not None:
                continue
            slots.append(slot)
        return sorted(slots, key=lambda slot: (slot.vantage_point, slot.device_serial))

    def next_dispatchable(
        self,
        now: float,
        controller_cpu: Optional[Callable[[str], float]] = None,
    ) -> Optional[tuple]:
        """Find the first queued job that can run right now.

        Returns ``(job, vantage_point, device_serial)`` or ``None``.  The
        optional ``controller_cpu`` callable maps a vantage-point name to its
        current CPU utilisation so that the "low CPU utilization (optional)"
        constraint can be honoured.
        """
        for job in list(self._queue):
            constraints = job.spec.constraints
            for slot in self._candidate_slots(job):
                if self._device_reserved(slot, now, job.spec.owner):
                    continue
                if constraints.require_low_controller_cpu and controller_cpu is not None:
                    if controller_cpu(slot.vantage_point) > constraints.max_controller_cpu_percent:
                        continue
                return job, slot.vantage_point, slot.device_serial
        return None

    def assign(self, job: Job, vantage_point: str, device_serial: str, now: float) -> None:
        key = f"{vantage_point}/{device_serial}"
        slot = self._slots.get(key)
        if slot is None:
            raise SchedulingError(f"unknown device slot {key!r}")
        if slot.busy_job_id is not None:
            raise SchedulingError(
                f"device {key!r} is already running job {slot.busy_job_id}; "
                "BatteryLab allows one job at a time per device"
            )
        slot.busy_job_id = job.job_id
        if job in self._queue:
            self._queue.remove(job)
        job.mark_running(now, vantage_point, device_serial)

    def release(self, job: Job) -> None:
        for slot in self._slots.values():
            if slot.busy_job_id == job.job_id:
                slot.busy_job_id = None

    # -- timed sessions -----------------------------------------------------------------------
    def _device_reserved(self, slot: _DeviceSlot, now: float, owner: str) -> bool:
        """True if someone other than ``owner`` holds an active reservation on the slot."""
        for reservation in self._reservations:
            if (
                reservation.vantage_point == slot.vantage_point
                and reservation.device_serial == slot.device_serial
                and reservation.active_at(now)
                and reservation.username != owner
            ):
                return True
        return False

    def reserve_session(
        self,
        username: str,
        vantage_point: str,
        device_serial: str,
        start_s: float,
        duration_s: float,
    ) -> SessionReservation:
        """Reserve an interactive time slot; overlapping reservations are rejected."""
        if duration_s <= 0:
            raise SchedulingError("reservation duration must be positive")
        reservation = SessionReservation(
            reservation_id=next(self._reservation_ids),
            username=username,
            vantage_point=vantage_point,
            device_serial=device_serial,
            start_s=start_s,
            duration_s=duration_s,
        )
        for existing in self._reservations:
            if reservation.overlaps(existing):
                raise SchedulingError(
                    f"reservation overlaps with existing reservation {existing.reservation_id} "
                    f"held by {existing.username!r}"
                )
        self._reservations.append(reservation)
        return reservation

    def reservations(self, active_at: Optional[float] = None) -> List[SessionReservation]:
        if active_at is None:
            return list(self._reservations)
        return [r for r in self._reservations if r.active_at(active_at)]

    def cancel_reservation(self, reservation_id: int) -> None:
        self._reservations = [
            r for r in self._reservations if r.reservation_id != reservation_id
        ]
