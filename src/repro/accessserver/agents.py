"""Agent registry and lease table for pull-based execution.

BatteryLab's vantage points are autonomous machines behind flaky
residential links (Section 3): the server cannot assume it can *push*
work into them.  This module holds the server-side state for the
inverted flow — :class:`AgentRecord` identities that daemons register
once (journaled and snapshotted like user accounts), and
:class:`AgentLease` claims that bind a job plus its device slots to one
agent for a bounded time.  Leases are deliberately **not** journaled: a
server crash mid-lease already flips the RUNNING job back to QUEUED
through the ordinary crash-requeue path, and the lease table rebuilds
empty — a report against a lease the restarted server never heard of is
simply refused, and the agent discards its buffered result because the
job re-ran elsewhere.

Exactly-once result upload therefore targets *agent* restarts: the
bounded ``settled`` map remembers recently settled lease ids so a
daemon replaying its outbox after a kill -9 gets an idempotent
``duplicate`` ack instead of a double settle.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["AgentError", "AgentRecord", "AgentLease", "AgentManager"]

#: How many settled lease ids the duplicate-report filter remembers.
SETTLED_LEASE_MEMORY = 1024


class AgentError(RuntimeError):
    """Raised for unknown agents/leases or conflicting claims."""


@dataclass
class AgentRecord:
    """One registered vantage-point daemon.

    ``connectors`` is the sorted tuple of device-connector types the
    daemon can run (``"fake"``, ``"noprovision"``, ``"multi"``, ...);
    ``tags`` are free-form capability labels used for matching, after
    PyExpLabSys's host-roster model.
    """

    agent_id: str
    vantage_point: Optional[str] = None
    connectors: Tuple[str, ...] = ()
    tags: Dict[str, str] = field(default_factory=dict)
    registered_at: float = 0.0

    def to_record(self) -> Dict[str, object]:
        """Stable dict form shared by the journal and snapshots."""
        return {
            "agent_id": self.agent_id,
            "vantage_point": self.vantage_point,
            "connectors": list(self.connectors),
            "tags": dict(sorted(self.tags.items())),
            "registered_at": self.registered_at,
        }

    @classmethod
    def from_record(cls, data: Dict[str, object]) -> "AgentRecord":
        return cls(
            agent_id=str(data["agent_id"]),
            vantage_point=data.get("vantage_point"),
            connectors=tuple(data.get("connectors", ())),
            tags=dict(data.get("tags", {})),
            registered_at=float(data.get("registered_at", 0.0)),
        )


@dataclass
class AgentLease:
    """A bounded-time claim of one job (and its device slots) by one agent.

    ``devices`` lists every ``(vantage_point, device_serial)`` slot the
    claim holds — one for a classic job, N for a multi-device job.  The
    first entry is the *primary* slot the job was assigned to; the rest
    are child slots held for the ``multi`` connector's children.
    """

    lease_id: str
    agent_id: str
    job_id: int
    devices: Tuple[Tuple[str, str], ...]
    ttl_s: float
    granted_at: float
    expires_at: float
    claim_elapsed_s: float = 0.0

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def renew(self, now: float) -> None:
        self.expires_at = now + self.ttl_s


class AgentManager:
    """Registry + lease table; pure in-memory domain state, no wire types.

    The access server owns one instance and funnels every mutation
    through it under the gateway's router lock, so plain dicts suffice.
    """

    def __init__(self) -> None:
        self._agents: "OrderedDict[str, AgentRecord]" = OrderedDict()
        self._leases: "OrderedDict[str, AgentLease]" = OrderedDict()
        self._lease_by_job: Dict[int, str] = {}
        self._settled: "OrderedDict[str, int]" = OrderedDict()
        self._next_lease = 1

    # -- registry -------------------------------------------------------------
    def register(
        self,
        agent_id: str,
        now: float,
        vantage_point: Optional[str] = None,
        connectors: Optional[List[str]] = None,
        tags: Optional[Dict[str, str]] = None,
    ) -> Tuple[AgentRecord, bool]:
        """Register (or re-register) a daemon; returns ``(record, created)``.

        Re-registration is idempotent and refreshes capabilities — a
        daemon announces itself on every start, and only the *first*
        registration is journaled by the caller.
        """
        if not agent_id:
            raise AgentError("agent_id must be non-empty")
        record = self._agents.get(agent_id)
        created = record is None
        if record is None:
            record = AgentRecord(agent_id=agent_id, registered_at=now)
            self._agents[agent_id] = record
        record.vantage_point = vantage_point
        record.connectors = tuple(sorted(set(connectors or ())))
        record.tags = dict(tags or {})
        return record, created

    def restore(self, data: Dict[str, object]) -> AgentRecord:
        """Re-create a journaled/snapshotted agent during recovery."""
        record = AgentRecord.from_record(data)
        self._agents[record.agent_id] = record
        return record

    def get(self, agent_id: str) -> AgentRecord:
        record = self._agents.get(agent_id)
        if record is None:
            raise AgentError(f"unknown agent {agent_id!r}; register it first")
        return record

    def agents(self) -> List[AgentRecord]:
        return list(self._agents.values())

    # -- leases ---------------------------------------------------------------
    def grant(
        self,
        agent_id: str,
        job_id: int,
        devices: List[Tuple[str, str]],
        ttl_s: float,
        now: float,
        claim_elapsed_s: float = 0.0,
    ) -> AgentLease:
        if job_id in self._lease_by_job:
            raise AgentError(
                f"job {job_id} is already leased ({self._lease_by_job[job_id]})"
            )
        if not devices:
            raise AgentError("a lease must hold at least one device slot")
        lease = AgentLease(
            lease_id=f"lease-{self._next_lease}",
            agent_id=agent_id,
            job_id=job_id,
            devices=tuple(devices),
            ttl_s=ttl_s,
            granted_at=now,
            expires_at=now + ttl_s,
            claim_elapsed_s=claim_elapsed_s,
        )
        self._next_lease += 1
        self._leases[lease.lease_id] = lease
        self._lease_by_job[job_id] = lease.lease_id
        return lease

    def lease(self, lease_id: str) -> Optional[AgentLease]:
        return self._leases.get(lease_id)

    def lease_for_job(self, job_id: int) -> Optional[AgentLease]:
        lease_id = self._lease_by_job.get(job_id)
        return self._leases.get(lease_id) if lease_id is not None else None

    def leases(self) -> List[AgentLease]:
        return list(self._leases.values())

    def renew(self, lease_id: str, now: float) -> AgentLease:
        lease = self._leases.get(lease_id)
        if lease is None:
            raise AgentError(f"unknown or expired lease {lease_id!r}")
        lease.renew(now)
        return lease

    def release(self, lease_id: str) -> Optional[AgentLease]:
        """Drop a lease without marking it settled (expiry / cancellation)."""
        lease = self._leases.pop(lease_id, None)
        if lease is not None:
            self._lease_by_job.pop(lease.job_id, None)
        return lease

    def settle(self, lease_id: str) -> Optional[AgentLease]:
        """Drop a lease after a successful report, remembering its id."""
        lease = self.release(lease_id)
        if lease is not None:
            self._settled[lease_id] = lease.job_id
            while len(self._settled) > SETTLED_LEASE_MEMORY:
                self._settled.popitem(last=False)
        return lease

    def settled_job(self, lease_id: str) -> Optional[int]:
        """Job id a recently settled lease reported for, if remembered."""
        return self._settled.get(lease_id)

    def expired(self, now: float) -> List[AgentLease]:
        return [lease for lease in self._leases.values() if lease.expired(now)]

    def held_devices(self) -> Dict[Tuple[str, str], str]:
        """``(vantage_point, serial) -> agent_id`` for every leased slot."""
        held: Dict[Tuple[str, str], str] = {}
        for lease in self._leases.values():
            for device in lease.devices:
                held[device] = lease.agent_id
        return held
