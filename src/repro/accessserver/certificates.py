"""Wildcard certificates and their renewal.

BatteryLab serves its GUI over HTTPS with a wildcard Let's Encrypt
certificate for ``*.batterylab.dev``; the access server owns the certificate,
renews it before expiry, and automatically deploys the renewed certificate
to every vantage point (Sections 3.1 and 3.4).  The model captures issuance,
expiry, the renewal window, and deployment over SSH.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


class CertificateError(RuntimeError):
    """Raised for operations on expired or missing certificates."""


@dataclass(frozen=True)
class WildcardCertificate:
    """A (very) simplified X.509 wildcard certificate."""

    common_name: str
    serial_number: int
    issued_at: float
    lifetime_s: float
    issuer: str = "letsencrypt"

    @property
    def expires_at(self) -> float:
        return self.issued_at + self.lifetime_s

    def is_valid(self, now: float) -> bool:
        return self.issued_at <= now < self.expires_at

    def remaining_s(self, now: float) -> float:
        return max(0.0, self.expires_at - now)

    @property
    def pem(self) -> bytes:
        """A stand-in PEM blob deployed to controllers."""
        return (
            f"-----BEGIN CERTIFICATE-----\n"
            f"CN={self.common_name};serial={self.serial_number};"
            f"notBefore={self.issued_at};notAfter={self.expires_at}\n"
            f"-----END CERTIFICATE-----\n"
        ).encode("utf-8")


#: Let's Encrypt certificates last 90 days and are typically renewed with 30
#: days to spare.
DEFAULT_LIFETIME_S = 90 * 24 * 3600.0
DEFAULT_RENEWAL_WINDOW_S = 30 * 24 * 3600.0


class CertificateAuthority:
    """A Let's Encrypt-style CA issuing wildcard certificates for the platform."""

    def __init__(
        self,
        domain: str = "batterylab.dev",
        lifetime_s: float = DEFAULT_LIFETIME_S,
        renewal_window_s: float = DEFAULT_RENEWAL_WINDOW_S,
    ) -> None:
        if lifetime_s <= 0:
            raise ValueError("certificate lifetime must be positive")
        if not 0 < renewal_window_s < lifetime_s:
            raise ValueError("renewal window must be positive and shorter than the lifetime")
        self._domain = domain
        self._lifetime_s = float(lifetime_s)
        self._renewal_window_s = float(renewal_window_s)
        self._next_serial = 1
        self._issued: List[WildcardCertificate] = []

    @property
    def domain(self) -> str:
        return self._domain

    @property
    def issued(self) -> List[WildcardCertificate]:
        return list(self._issued)

    def issue(self, now: float) -> WildcardCertificate:
        """Issue a fresh wildcard certificate valid from ``now``."""
        certificate = WildcardCertificate(
            common_name=f"*.{self._domain}",
            serial_number=self._next_serial,
            issued_at=now,
            lifetime_s=self._lifetime_s,
        )
        self._next_serial += 1
        self._issued.append(certificate)
        return certificate

    def needs_renewal(self, certificate: Optional[WildcardCertificate], now: float) -> bool:
        """True when no certificate exists, it expired, or it is inside the renewal window."""
        if certificate is None:
            return True
        return certificate.remaining_s(now) <= self._renewal_window_s

    def renew_if_needed(
        self, certificate: Optional[WildcardCertificate], now: float
    ) -> Optional[WildcardCertificate]:
        """Return a new certificate when renewal is due, otherwise ``None``."""
        if self.needs_renewal(certificate, now):
            return self.issue(now)
        return None


def deploy_certificate(channel, certificate: WildcardCertificate) -> str:
    """Copy a certificate to a controller over an open SSH channel.

    Returns the remote path the certificate was written to.  This is the
    operation the certificate-renewal maintenance job performs against every
    vantage point.
    """
    remote_path = "/etc/batterylab/wildcard.pem"
    channel.copy_file(remote_path, certificate.pem)
    return remote_path
