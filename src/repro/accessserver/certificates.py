"""Wildcard certificates, their renewal, and real TLS key material.

BatteryLab serves its GUI over HTTPS with a wildcard Let's Encrypt
certificate for ``*.batterylab.dev``; the access server owns the certificate,
renews it before expiry, and automatically deploys the renewed certificate
to every vantage point (Sections 3.1 and 3.4).  The model captures issuance,
expiry, the renewal window, and deployment over SSH.

For the Platform API v2 TLS gateway the simulated
:class:`WildcardCertificate` is backed by *real* key material:
:func:`ensure_tls_material` generates (or reuses) a self-signed wildcard
certificate + key on disk via the ``openssl`` binary, carrying the
simulated certificate's common name and serial, and
:func:`server_tls_context` / :func:`client_tls_context` turn that material
into the ``ssl`` contexts the gateway and the client transport wrap their
sockets with.
"""

from __future__ import annotations

import json
import shutil
import ssl
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union


class CertificateError(RuntimeError):
    """Raised for operations on expired or missing certificates."""


@dataclass(frozen=True)
class WildcardCertificate:
    """A (very) simplified X.509 wildcard certificate."""

    common_name: str
    serial_number: int
    issued_at: float
    lifetime_s: float
    issuer: str = "letsencrypt"

    @property
    def expires_at(self) -> float:
        return self.issued_at + self.lifetime_s

    def is_valid(self, now: float) -> bool:
        return self.issued_at <= now < self.expires_at

    def remaining_s(self, now: float) -> float:
        return max(0.0, self.expires_at - now)

    @property
    def pem(self) -> bytes:
        """A stand-in PEM blob deployed to controllers."""
        return (
            f"-----BEGIN CERTIFICATE-----\n"
            f"CN={self.common_name};serial={self.serial_number};"
            f"notBefore={self.issued_at};notAfter={self.expires_at}\n"
            f"-----END CERTIFICATE-----\n"
        ).encode("utf-8")


#: Let's Encrypt certificates last 90 days and are typically renewed with 30
#: days to spare.
DEFAULT_LIFETIME_S = 90 * 24 * 3600.0
DEFAULT_RENEWAL_WINDOW_S = 30 * 24 * 3600.0


class CertificateAuthority:
    """A Let's Encrypt-style CA issuing wildcard certificates for the platform."""

    def __init__(
        self,
        domain: str = "batterylab.dev",
        lifetime_s: float = DEFAULT_LIFETIME_S,
        renewal_window_s: float = DEFAULT_RENEWAL_WINDOW_S,
    ) -> None:
        if lifetime_s <= 0:
            raise ValueError("certificate lifetime must be positive")
        if not 0 < renewal_window_s < lifetime_s:
            raise ValueError("renewal window must be positive and shorter than the lifetime")
        self._domain = domain
        self._lifetime_s = float(lifetime_s)
        self._renewal_window_s = float(renewal_window_s)
        self._next_serial = 1
        self._issued: List[WildcardCertificate] = []

    @property
    def domain(self) -> str:
        return self._domain

    @property
    def issued(self) -> List[WildcardCertificate]:
        return list(self._issued)

    def issue(self, now: float) -> WildcardCertificate:
        """Issue a fresh wildcard certificate valid from ``now``."""
        certificate = WildcardCertificate(
            common_name=f"*.{self._domain}",
            serial_number=self._next_serial,
            issued_at=now,
            lifetime_s=self._lifetime_s,
        )
        self._next_serial += 1
        self._issued.append(certificate)
        return certificate

    def needs_renewal(self, certificate: Optional[WildcardCertificate], now: float) -> bool:
        """True when no certificate exists, it expired, or it is inside the renewal window."""
        if certificate is None:
            return True
        return certificate.remaining_s(now) <= self._renewal_window_s

    def renew_if_needed(
        self, certificate: Optional[WildcardCertificate], now: float
    ) -> Optional[WildcardCertificate]:
        """Return a new certificate when renewal is due, otherwise ``None``."""
        if self.needs_renewal(certificate, now):
            return self.issue(now)
        return None


# ---------------------------------------------------------------------------
# Real TLS material for the API gateway (Platform API v2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TlsMaterial:
    """On-disk certificate + key pair the TLS gateway serves with."""

    cert_path: Path
    key_path: Path
    common_name: str
    serial_number: int = 0

    def exists(self) -> bool:
        return self.cert_path.exists() and self.key_path.exists()


#: File names under a ``--cert-dir``; match the path the provisioning step
#: deploys the wildcard PEM to on controllers (``wildcard.pem``).
TLS_CERT_NAME = "wildcard.pem"
TLS_KEY_NAME = "wildcard.key"
TLS_META_NAME = "wildcard.meta.json"

#: SANs baked into generated material so local gateways verify cleanly.
_DEFAULT_SANS = ("DNS:*.batterylab.dev", "DNS:localhost", "IP:127.0.0.1")


def openssl_available() -> bool:
    """Whether the ``openssl`` binary needed to mint material is present."""
    return shutil.which("openssl") is not None


def ensure_tls_material(
    cert_dir: Union[str, Path],
    certificate: Optional[WildcardCertificate] = None,
    key_bits: int = 2048,
    days: int = 90,
) -> TlsMaterial:
    """Self-signed wildcard TLS material under ``cert_dir``, minting on demand.

    The generated certificate carries the simulated
    :class:`WildcardCertificate`'s common name (``*.batterylab.dev``) plus
    ``localhost``/``127.0.0.1`` SANs, so a gateway bound to loopback
    verifies under full hostname checking.  Existing material is reused —
    operators can also drop real Let's Encrypt files under the same names.
    """
    directory = Path(cert_dir)
    directory.mkdir(parents=True, exist_ok=True)
    common_name = certificate.common_name if certificate else "*.batterylab.dev"
    serial = certificate.serial_number if certificate else 0
    material = TlsMaterial(
        cert_path=directory / TLS_CERT_NAME,
        key_path=directory / TLS_KEY_NAME,
        common_name=common_name,
        serial_number=serial,
    )
    if material.exists():
        return material
    if not openssl_available():
        raise CertificateError(
            "generating TLS material requires the 'openssl' binary; install "
            f"it or place {TLS_CERT_NAME}/{TLS_KEY_NAME} under {directory}"
        )
    sans = ",".join(_DEFAULT_SANS)
    try:
        subprocess.run(
            [
                "openssl",
                "req",
                "-x509",
                "-newkey",
                f"rsa:{key_bits}",
                "-keyout",
                str(material.key_path),
                "-out",
                str(material.cert_path),
                "-days",
                str(days),
                "-nodes",
                "-subj",
                f"/CN={common_name}",
                "-addext",
                f"subjectAltName={sans}",
            ],
            check=True,
            capture_output=True,
        )
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = getattr(exc, "stderr", b"") or b""
        raise CertificateError(
            f"openssl failed to mint TLS material: {exc} {detail.decode(errors='replace')}"
        ) from None
    (directory / TLS_META_NAME).write_text(
        json.dumps({"common_name": common_name, "serial_number": serial}) + "\n",
        encoding="utf-8",
    )
    return material


def server_tls_context(material: TlsMaterial) -> ssl.SSLContext:
    """An ``ssl`` context the :class:`~repro.api.gateway.ApiGateway` serves with."""
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.load_cert_chain(str(material.cert_path), str(material.key_path))
    return context


def client_tls_context(material: TlsMaterial) -> ssl.SSLContext:
    """An ``ssl`` context trusting exactly the platform's wildcard certificate.

    Full verification stays on: the self-signed wildcard certificate acts
    as its own (pinned) root of trust, and hostname checking runs against
    the transport's ``server_hostname``.
    """
    context = ssl.create_default_context(cafile=str(material.cert_path))
    return context


def deploy_certificate(channel, certificate: WildcardCertificate) -> str:
    """Copy a certificate to a controller over an open SSH channel.

    Returns the remote path the certificate was written to.  This is the
    operation the certificate-renewal maintenance job performs against every
    vantage point.
    """
    remote_path = "/etc/batterylab/wildcard.pem"
    channel.copy_file(remote_path, certificate.pem)
    return remote_path
