"""The BatteryLab access server.

The access server (Section 3.1) is the single entry point for
experimenters: it authenticates them, lets authorized users create and run
jobs, schedules those jobs onto vantage points subject to the platform's
constraints, keeps job logs/workspaces for several days, runs the built-in
maintenance jobs, and owns the platform-wide assets (the ``batterylab.dev``
DNS zone, the wildcard certificate, the SSH identity trusted by every
controller).  The real deployment builds this on Jenkins in AWS; the model
keeps the behaviour and drops the Java.

Job dispatch runs through the indexed batch pipeline of
:mod:`repro.accessserver.dispatch`: :meth:`AccessServer.run_pending_jobs`
pulls waves of assignments via ``dispatch_batch`` and every scheduling
decision is published as a structured ``dispatch.*`` record on
:attr:`AccessServer.events`.  With :meth:`AccessServer.enable_auto_dispatch`
the server becomes fully event-driven — submissions and approvals schedule
dispatch ticks on the simulation event loop, so callers no longer poll
``run_pending_jobs`` themselves.  The queue ordering policy
(``fifo``/``priority``/``fair-share``) is chosen per server via the
``scheduling_policy`` constructor argument or
:meth:`AccessServer.set_scheduling_policy`.

.. note::
   Since Platform API v1 the sanctioned consumer surface is
   :mod:`repro.api`: experiment code submits and inspects jobs through a
   :class:`~repro.api.client.BatteryLabClient`, never by calling
   :meth:`AccessServer.submit_job` / :meth:`AccessServer.reserve_session`
   directly.  Those methods remain as thin compatibility shims — the
   router executes through them — but direct use outside ``repro.api``
   and the test suite is deprecated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.accessserver.agents import AgentError, AgentLease, AgentManager, AgentRecord
from repro.accessserver.auth import (
    Permission,
    Role,
    SessionManager,
    User,
    UserRegistry,
)
from repro.accessserver.certificates import CertificateAuthority, WildcardCertificate
from repro.accessserver.credits import CreditLedger, CreditPolicy
from repro.accessserver.dispatch import Assignment
from repro.accessserver.dns import DnsZone
from repro.accessserver.jobs import (
    Job,
    JobContext,
    JobSpec,
    JobStatus,
    shard_job_id_allocator,
)
from repro.accessserver.policies import SchedulingPolicy
from repro.accessserver.scheduler import JobScheduler, SessionReservation
from repro.accessserver.testers import TesterPool
from repro.network.ssh import SshChannel, SshKeyPair
from repro.obs import Observability, component_logger
from repro.simulation.entity import Entity, SimulationContext
from repro.simulation.events import Event, EventBus
from repro.vantagepoint.controller import VantagePointController
from repro.vantagepoint.provisioning import JoinRequest, ProvisioningReport, provision_vantage_point


class AccessServerError(RuntimeError):
    """Raised for platform-level errors (unknown vantage point, failed join, ...)."""


@dataclass
class VantagePointRecord:
    """A registered vantage point as seen by the access server."""

    name: str
    controller: VantagePointController
    institution: str
    dns_name: str
    report: ProvisioningReport
    approved: bool = True
    metadata: Dict[str, object] = field(default_factory=dict)


class AccessServer(Entity):
    """Central coordinator of the BatteryLab platform.

    Parameters
    ----------
    context:
        Simulation context.
    public_address:
        The cloud address vantage points white-list for SSH access.
    domain:
        Platform DNS domain (``batterylab.dev``).
    scheduling_policy:
        Queue ordering policy (name or instance); ``"fifo"`` by default.
    reservation_admission:
        ``"ignore"`` (default) or ``"defer"``; with ``"defer"`` a job is
        kept off any device whose next upcoming session reservation would
        begin before the job's timeout could elapse (see
        :class:`~repro.accessserver.dispatch.DispatchEngine`).
    """

    def __init__(
        self,
        context: SimulationContext,
        public_address: str = "52.16.0.10",
        domain: str = "batterylab.dev",
        scheduling_policy: Union[str, SchedulingPolicy] = "fifo",
        reservation_admission: str = "ignore",
    ) -> None:
        super().__init__(context, "access-server")
        self._public_address = public_address
        self.users = UserRegistry(https_only=True)
        #: Bearer token sessions for Platform API v2 (``auth.login``).
        self.sessions = SessionManager(self.users)
        self.dns = DnsZone(origin=domain)
        self.certificate_authority = CertificateAuthority(domain=domain)
        self._wildcard_certificate: Optional[WildcardCertificate] = (
            self.certificate_authority.issue(context.now)
        )
        self.events = EventBus(clock=context.clock)
        #: Platform telemetry: metrics registry + tracer (``repro.obs``).
        self.obs = Observability(clock=context.clock, bus=self.events)
        self._obs_log = component_logger("repro.accessserver.server")
        self.scheduler = JobScheduler(
            policy=scheduling_policy,
            event_bus=self.events,
            reservation_admission=reservation_admission,
        )
        # A cancelled reservation frees its device ahead of schedule; retry
        # blocked jobs right away instead of at the reservation's old end.
        # (No-op unless auto-dispatch is enabled.)
        self.events.subscribe(
            "dispatch.reservation_cancelled",
            lambda record: self._schedule_dispatch_tick(),
        )
        # Incrementally-maintained orphan set (jobs pinned to a vantage point
        # that is not registered).  Entries leave on cancel/reject — the
        # engine emits ``dispatch.cancelled`` for both — or when the missing
        # vantage point registers.  See :meth:`orphaned_jobs`.
        self._orphans: Dict[int, Job] = {}
        self.events.subscribe(
            "dispatch.cancelled",
            lambda record: self._orphans.pop(record.payload.get("job_id"), None),
        )
        self._declare_metrics()
        self.testers = TesterPool()
        #: Pull-execution state: registered edge daemons + their leases.
        self.agents = AgentManager()
        self.ssh_key = SshKeyPair.generate("batterylab-access-server", self.random)
        self._vantage_points: Dict[str, VantagePointRecord] = {}
        self._pending_approval: List[Job] = []
        self._credit_policy: Optional[CreditPolicy] = None
        self._auto_dispatch = False
        self._auto_dispatch_interval_s: Optional[float] = None
        self._auto_dispatch_max_jobs = 100
        self._auto_dispatch_event: Optional[Event] = None
        self._persistence = None
        self._analytics = None
        self._analytics_tap = None
        #: Opt-in concurrent payload execution; see enable_parallel_waves.
        self._wave_executor = None
        # (owner, idempotency_key) -> job_id: flaky-transport retries of the
        # same submission return the original job instead of double-queueing.
        self._idempotent_submissions: Dict[Tuple[str, str], int] = {}
        # Federation identity: unset for the historical single-server
        # deployment.  configure_shard() names this server and hands it a
        # disjoint lane of the job-id space (see shard_job_id_allocator).
        self.shard_id: Optional[str] = None
        self.shard_index = 0
        self.shard_count = 1
        self._job_ids = None  # None -> the process-global allocator

    # -- telemetry ---------------------------------------------------------------------
    def _declare_metrics(self) -> None:
        registry = self.obs.registry
        self._m_waves = registry.counter(
            "dispatch_waves_total", "Dispatch waves with at least one assignment."
        ).labels()
        self._m_wave_size = registry.histogram(
            "dispatch_wave_size",
            "Assignments handed out per dispatch wave.",
            bounds=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        ).labels()
        self._m_decision = registry.histogram(
            "dispatch_decision_seconds",
            "Wall time spent inside dispatch_batch per tick.",
        ).labels()
        self._m_admit = registry.histogram(
            "job_admit_seconds", "Wall time of the admit phase per job."
        ).labels()
        self._m_run = registry.histogram(
            "job_run_seconds", "Wall time of the payload run phase per job."
        ).labels()
        self._m_settle = registry.histogram(
            "job_settle_seconds", "Wall time of the settle phase per job."
        ).labels()
        self._m_executed = registry.counter(
            "jobs_executed_total",
            "Jobs settled, by terminal status.",
            labelnames=("status",),
        )
        # Children resolved once per status; the settle path pays a dict hit.
        self._m_executed_children: Dict[str, object] = {}
        self._m_parallelism = registry.gauge(
            "wave_parallelism_ratio",
            "Admitted wave size / executor worker count of the last parallel wave.",
        ).labels()
        self._g_queue_depth = registry.gauge(
            "dispatch_queue_depth",
            "Queued jobs per constraint bucket.",
            labelnames=("bucket",),
        )
        self._g_orphans = registry.gauge(
            "orphaned_jobs", "Queued jobs pinned to an unregistered vantage point."
        ).labels()
        self._m_agent_polls = registry.counter(
            "agent_polls_total",
            "agent.poll requests answered, by outcome.",
            labelnames=("outcome",),
        )
        self._m_agent_poll_children: Dict[str, object] = {}
        self._m_agent_claims = registry.counter(
            "agent_claims_total", "Leases granted to pulling agents."
        ).labels()
        self._m_agent_reports = registry.counter(
            "agent_reports_total",
            "agent.report settlements, by terminal status.",
            labelnames=("status",),
        )
        self._m_agent_report_children: Dict[str, object] = {}
        self._m_lease_expired = registry.counter(
            "agent_lease_expirations_total",
            "Leases reaped after their holder went silent.",
        ).labels()
        self._g_leases = registry.gauge(
            "agent_leases_active", "Currently granted agent leases."
        ).labels()
        self._seen_queue_buckets: set = set()
        registry.add_collect_hook(self._collect_metrics)

    def _collect_metrics(self) -> None:
        """Scrape-time gauges: queue depth per constraint bucket, orphan count."""
        self._g_orphans.set(float(len(self.orphaned_jobs())))
        self._g_leases.set(float(len(self.agents.leases())))
        sizes = self.scheduler.engine.queue.bucket_sizes()
        live = set()
        for key, depth in sizes.items():
            vp, device = key
            label = f"{vp or '*'}|{device or '*'}"
            live.add(label)
            self._g_queue_depth.labels(bucket=label).set(float(depth))
        # Zero buckets that drained since the last scrape so stale depths
        # don't linger in the exposition.
        for label in self._seen_queue_buckets - live:
            self._g_queue_depth.labels(bucket=label).set(0.0)
        self._seen_queue_buckets = live

    # -- durable state -----------------------------------------------------------------
    @property
    def persistence(self):
        """The attached :class:`~repro.accessserver.persistence.PersistenceManager`, if any."""
        return self._persistence

    def enable_persistence(
        self,
        backend,
        recover: bool = True,
        snapshot_every: int = 1000,
        fsync_every: int = 32,
    ):
        """Journal every state mutation to ``backend`` (a path or a backend).

        With ``recover=True`` (the default) any state the backend already
        holds — a previous run's snapshot and journal — is replayed into
        this server first, so the queue, reservations and credit balances
        survive a restart.  ``recover=False`` starts fresh and *discards*
        any state the backend held.  Returns the
        :class:`~repro.accessserver.persistence.PersistenceManager`.
        """
        from repro.accessserver.persistence import attach_persistence

        manager = attach_persistence(
            self,
            backend,
            recover=recover,
            snapshot_every=snapshot_every,
            fsync_every=fsync_every,
        )
        self.log(
            "persistence enabled",
            recovered=manager.last_recovery is not None,
            jobs_queued=(
                manager.last_recovery.jobs_queued if manager.last_recovery else 0
            ),
        )
        return manager

    # -- operations analytics ----------------------------------------------------------
    @property
    def analytics(self):
        """The live :class:`~repro.analytics.engine.AnalyticsEngine`, if enabled."""
        return self._analytics

    def enable_analytics(self, bucket_s: float = 60.0):
        """Fold the server's operational record stream into live analytics.

        Attaches a :class:`~repro.analytics.records.LiveBusTap` to the
        event bus so every ``dispatch.*`` / ``job.*`` / ``reservation.*`` /
        ``credit.*`` record updates the materialised views incrementally.
        When persistence is already attached, the engine is first *seeded*
        by a cold replay of the backend, so a recovered server's report
        includes pre-crash history and then continues live.  Idempotent —
        re-enabling returns the existing engine.
        """
        if self._analytics is not None:
            return self._analytics
        from repro.analytics import AnalyticsEngine, LiveBusTap

        engine = AnalyticsEngine(bucket_s=bucket_s)
        if self._persistence is not None:
            self._persistence.backend.sync()
            from repro.analytics import JournalReplaySource

            engine.fold_source(JournalReplaySource(self._persistence.backend))
        tap = LiveBusTap(engine, self)
        tap.attach()
        self._analytics = engine
        self._analytics_tap = tap
        self.log("analytics enabled", seeded_records=engine.records_folded)
        return engine

    def disable_analytics(self) -> None:
        """Detach the live tap and drop the engine (views are discarded)."""
        if self._analytics_tap is not None:
            self._analytics_tap.detach()
        self._analytics = None
        self._analytics_tap = None

    # -- platform assets -------------------------------------------------------------
    @property
    def public_address(self) -> str:
        return self._public_address

    @property
    def wildcard_certificate(self) -> Optional[WildcardCertificate]:
        return self._wildcard_certificate

    def set_wildcard_certificate(self, certificate: WildcardCertificate) -> None:
        self._wildcard_certificate = certificate

    # -- credit system -----------------------------------------------------------------
    @property
    def credit_policy(self) -> Optional[CreditPolicy]:
        return self._credit_policy

    def enable_credit_system(
        self,
        contribution_multiplier: float = 1.5,
        initial_grant_device_hours: float = 5.0,
        minimum_reservation_hours: float = 0.25,
    ) -> CreditLedger:
        """Turn on the access-by-credit model sketched in the paper's conclusion.

        Once enabled, experimenters without a credit balance cannot submit
        jobs; institutions that contribute vantage points earn credits for
        the device time they make available (see
        :mod:`repro.accessserver.credits`).  Returns the ledger so callers
        can open contributor accounts and award contributions.

        Idempotent: when the credit system is already on — typically because
        crash recovery restored it, balances included — the existing ledger
        is returned untouched rather than replaced with an empty one, so
        boot code may call this unconditionally after ``enable_persistence``.
        """
        if self._credit_policy is not None:
            self.log("credit system already enabled; keeping existing ledger")
            return self._credit_policy.ledger
        ledger = CreditLedger(
            contribution_multiplier=contribution_multiplier,
            initial_grant_device_hours=initial_grant_device_hours,
        )
        self._credit_policy = CreditPolicy(
            ledger, minimum_reservation_hours=minimum_reservation_hours
        )
        # Bridge ledger mutations onto the event bus so analytics and
        # remote ``credit.`` event subscribers see credit traffic live.
        ledger.add_observer(self._publish_credit_event)
        # The "credit" scheduling policy weighs owners by remaining balance;
        # feed it live ledger balances through the dispatch stats.
        self.scheduler.engine.set_credit_balance_provider(self._credit_balances)
        if self._persistence is not None:
            self._persistence.on_credit_enabled(
                contribution_multiplier=contribution_multiplier,
                initial_grant_device_hours=initial_grant_device_hours,
                minimum_reservation_hours=minimum_reservation_hours,
            )
        self.log("credit system enabled")
        return ledger

    def _credit_balances(self) -> Dict[str, float]:
        if self._credit_policy is None:
            return {}
        return {
            account.owner: account.balance_device_hours
            for account in self._credit_policy.ledger.accounts()
        }

    def _credit_account_for(self, owner: str):
        assert self._credit_policy is not None
        ledger = self._credit_policy.ledger
        try:
            return ledger.account(owner)
        except Exception:
            return ledger.open_account(owner, now=self.context.now)

    # -- membership --------------------------------------------------------------------
    def register_vantage_point(
        self,
        controller: VantagePointController,
        request: JoinRequest,
    ) -> VantagePointRecord:
        """Run the join procedure for a new member and register its vantage point."""
        if request.node_identifier in self._vantage_points:
            raise AccessServerError(
                f"a vantage point named {request.node_identifier!r} is already registered"
            )
        report = provision_vantage_point(
            controller,
            request,
            access_server_key=self.ssh_key,
            access_server_address=self._public_address,
            dns_registry=self.dns,
            certificate=self._wildcard_certificate,
        )
        if not report.succeeded:
            failed = ", ".join(step.name for step in report.failed_steps())
            raise AccessServerError(
                f"vantage point {request.node_identifier!r} failed provisioning: {failed}"
            )
        record = VantagePointRecord(
            name=request.node_identifier,
            controller=controller,
            institution=request.institution,
            dns_name=report.dns_name,
            report=report,
        )
        self._vantage_points[record.name] = record
        # Jobs waiting on this vantage point are orphans no longer.
        for job_id, job in list(self._orphans.items()):
            if job.spec.constraints.vantage_point == record.name:
                del self._orphans[job_id]
        for serial in controller.list_devices():
            self.scheduler.register_device(record.name, serial)
        if self._persistence is not None:
            self._persistence.on_vantage_point_registered(record)
        self.log("vantage point registered", name=record.name, devices=controller.list_devices())
        return record

    def vantage_point(self, name: str) -> VantagePointRecord:
        try:
            return self._vantage_points[name]
        except KeyError:
            raise AccessServerError(f"unknown vantage point {name!r}") from None

    def vantage_points(self) -> List[VantagePointRecord]:
        return [self._vantage_points[name] for name in sorted(self._vantage_points)]

    def open_ssh_channel(self, vantage_point_name: str) -> SshChannel:
        """Open an authenticated SSH channel to a vantage point controller."""
        record = self.vantage_point(vantage_point_name)
        return record.controller.ssh_server.open_channel(self.ssh_key, self._public_address)

    # -- job lifecycle ---------------------------------------------------------------------
    # -- federation identity -----------------------------------------------------------
    def configure_shard(
        self, shard_id: str, shard_index: int = 0, shard_count: int = 1
    ) -> None:
        """Name this server as one shard of a federation.

        ``shard_id`` is surfaced in v2 ``server.status`` envelopes, stamped
        on journal snapshots, and used by the federation router for metric
        labels.  ``shard_index``/``shard_count`` give the server a disjoint
        lane of the job-id space (shard ``k`` of ``N`` mints ``k+1, k+1+N,
        ...``), so ids stay globally unique across shards with no
        coordination.  Call before the first job is submitted.
        """
        if not shard_id:
            raise AccessServerError("shard_id must be a non-empty string")
        self.shard_id = shard_id
        self.shard_index = shard_index
        self.shard_count = shard_count
        self._job_ids = shard_job_id_allocator(shard_index, shard_count)

    def claim_job_id(self, job_id: int) -> None:
        """Fast-forward this server's job-id lane past a recovered id.

        The module-global allocator is claimed by the persistence layer
        already; a sharded server additionally advances its own lane so a
        restarted shard never re-mints an id its journal already holds.
        """
        if self._job_ids is not None:
            self._job_ids.claim(job_id)

    def _new_job(self, spec: JobSpec) -> Job:
        if self._job_ids is None:
            return Job(spec=spec)
        return Job(spec=spec, job_id=next(self._job_ids))

    def submit_job(
        self,
        user: User,
        spec: JobSpec,
        idempotency_key: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> Job:
        """Create a job on behalf of an authenticated user.

        .. deprecated:: API v1
           Compatibility shim — new code submits through
           :meth:`repro.api.client.BatteryLabClient.submit_job`.

        Pipeline changes are parked until an administrator approves them;
        ordinary jobs go straight into the queue.  When the credit system is
        enabled, non-admin owners must be able to afford the job's estimated
        device time (its timeout) before it is accepted.

        With an ``idempotency_key``, resubmitting the same ``(owner, key)``
        pair returns the job the first submission created — the safe-retry
        contract a client needs after a flaky-transport timeout.

        ``trace_id`` threads the API-boundary trace through to the job's
        lifecycle spans; when omitted (direct callers) a fresh trace is
        minted so every job remains traceable via ``obs.trace``.
        """
        started = time.perf_counter()
        self.users.authorize(user, Permission.CREATE_JOB)
        if idempotency_key is not None:
            existing = self._idempotent_submissions.get((spec.owner, idempotency_key))
            if existing is not None:
                return self.scheduler.job(existing)
        if self._credit_policy is not None and user.role is not Role.ADMIN:
            self._credit_account_for(user.username)
            self._credit_policy.authorize(
                user.username, estimated_device_hours=spec.timeout_s / 3600.0
            )
        job = self._new_job(spec)
        if spec.is_pipeline_change:
            job.status = JobStatus.PENDING_APPROVAL
            self._pending_approval.append(job)
            self.scheduler.submit(job, self.context.now)
            if self._persistence is not None:
                self._persistence.on_job_submitted(job, idempotency_key=idempotency_key)
            self._publish_job_submitted(job)
            self.log("job pending approval", job=spec.name, owner=user.username)
        else:
            self.scheduler.submit(job, self.context.now)
            if self._persistence is not None:
                self._persistence.on_job_submitted(job, idempotency_key=idempotency_key)
            self._publish_job_submitted(job)
            self.log("job queued", job=spec.name, owner=user.username)
            self._schedule_dispatch_tick()
        if idempotency_key is not None:
            self._idempotent_submissions[(spec.owner, idempotency_key)] = job.job_id
        self._track_orphan(job)
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.begin_job_trace(
                job.job_id,
                trace_id,
                start=self.context.now,
                elapsed_s=time.perf_counter() - started,
                status_after=job.status.value,
            )
        return job

    # -- lifecycle event publication ---------------------------------------------------
    # The dispatch engine already announces assignments/requeues/cancels on
    # the bus; these publications cover the mutations that previously only
    # the persistence hooks saw, so bus consumers — the analytics live tap,
    # remote ``events.subscribe`` clients on the ``job.`` / ``reservation.``
    # / ``credit.`` prefixes — observe the full lifecycle.  Topics reuse the
    # journal's record vocabulary; ``job.watch`` subscriptions filter on the
    # ``dispatch.`` prefix and are unaffected.
    def _publish_job_submitted(self, job: Job) -> None:
        self.events.publish(
            "job.submitted",
            job_id=job.job_id,
            name=job.spec.name,
            owner=job.spec.owner,
            priority=job.spec.priority,
            timeout_s=job.spec.timeout_s,
            is_pipeline_change=job.spec.is_pipeline_change,
            status=job.status.value,
            submitted_at=job.submitted_at,
        )

    def _publish_credit_event(self, kind: str, data: Dict[str, object]) -> None:
        if kind == "transaction":
            self.events.publish("credit.txn", **data)
        elif kind == "account_opened":
            self.events.publish("credit.account_opened", **data)

    def idempotency_records(self) -> List[Tuple[str, str, int]]:
        """Every remembered ``(owner, key, job_id)`` triple, for snapshots."""
        return [
            (owner, key, job_id)
            for (owner, key), job_id in sorted(self._idempotent_submissions.items())
        ]

    def restore_idempotency_record(self, owner: str, key: str, job_id: int) -> None:
        """Re-admit a journaled idempotency mapping during crash recovery."""
        self._idempotent_submissions[(owner, key)] = job_id

    def approve_job(self, admin: User, job: Job) -> None:
        """Administrator approval of a pipeline change (Section 3.1)."""
        self.users.authorize(admin, Permission.APPROVE_PIPELINE)
        if job not in self._pending_approval:
            raise AccessServerError(f"job {job.job_id} is not awaiting approval")
        self._pending_approval.remove(job)
        self.scheduler.enqueue_approved(job)
        if self._persistence is not None:
            self._persistence.on_job_approved(job)
        self.events.publish("job.approved", job_id=job.job_id)
        self.log("job approved", job=job.spec.name, approver=admin.username)
        self._schedule_dispatch_tick()

    def reject_job(self, admin: User, job: Job, reason: str = "") -> None:
        """Administrator rejection of a pipeline change: the counterpart of
        :meth:`approve_job`.  The job leaves the approval queue terminally
        cancelled, with the reason recorded on the job for its owner."""
        self.users.authorize(admin, Permission.APPROVE_PIPELINE)
        if job not in self._pending_approval:
            raise AccessServerError(f"job {job.job_id} is not awaiting approval")
        self._pending_approval.remove(job)
        job.error = f"rejected: {reason}" if reason else "rejected by administrator"
        self.scheduler.cancel(job.job_id)
        if self._persistence is not None:
            self._persistence.on_job_rejected(job)
        self.events.publish("job.rejected", job_id=job.job_id)
        self.log(
            "job rejected",
            job=job.spec.name,
            approver=admin.username,
            reason=reason,
        )

    def pending_approval(self) -> List[Job]:
        return list(self._pending_approval)

    def _controller_cpu(self, vantage_point_name: str) -> float:
        return self.vantage_point(vantage_point_name).controller.latest_cpu_percent()

    def run_pending_jobs(self, max_jobs: int = 10) -> List[Job]:
        """Dispatch and synchronously execute queued jobs, honouring all constraints.

        Assignments are computed in waves via the scheduler's
        ``dispatch_batch`` (one job at a time per device holds within each
        wave); the jobs of a wave are then executed in assignment order, and
        freed devices feed the next wave.  Each job's power-meter logs and
        artefacts end up in its workspace.  Returns the jobs that were
        executed by this call.

        With :meth:`enable_parallel_waves` active, each wave's *payloads*
        run concurrently on a worker pool while every state mutation —
        admission, status transitions, device release, credit billing,
        journal appends, EventBus publishes — stays on the calling thread
        in deterministic assignment order, so journals and event streams
        match serial execution byte for byte (see the determinism contract
        on :meth:`enable_parallel_waves`).
        """
        executed: List[Job] = []
        obs_on = self.obs.registry.enabled
        if self.agents.leases():
            # A dead agent must never strand a job or its devices: every
            # dispatch wave starts by reaping expired leases.
            self.expire_agent_leases()
        while len(executed) < max_jobs:
            decision_t0 = time.perf_counter()
            assignments = self.scheduler.dispatch_batch(
                self.context.now,
                controller_cpu=self._controller_cpu,
                max_assignments=max_jobs - len(executed),
            )
            if obs_on:
                self._m_decision.observe(time.perf_counter() - decision_t0)
            if not assignments:
                break
            if obs_on:
                self._m_waves.inc()
                self._m_wave_size.observe(float(len(assignments)))
            if self._wave_executor is not None and len(assignments) > 1:
                executed.extend(self._execute_wave_parallel(assignments))
            else:
                for assignment in assignments:
                    if self._execute_assignment(assignment):
                        executed.append(assignment.job)
        return executed

    def _execute_assignment(self, assignment: Assignment) -> bool:
        """Run one dispatched job to completion and settle its bookkeeping.

        The serial composition of the three-phase execution pipeline —
        admit, run, settle — with nothing between the phases, which is
        exactly the historical one-at-a-time behaviour.  Returns ``False``
        without executing when the job was not admitted (left the RUNNING
        state while waiting for its turn in the wave, or lost its
        execution-time eligibility re-check).
        """
        admitted = self._admit_assignment(assignment)
        if admitted is None:
            return False
        admitted.run_payload()
        self._settle_assignment(admitted)
        return True

    def _execute_wave_parallel(self, assignments: List[Assignment]) -> List[Job]:
        """Run one wave's payloads concurrently; mutations stay serialized.

        Admission happens first, in assignment order, on this thread; the
        admitted payloads then run together on the wave executor's pool
        (a barrier — the call returns when all are done); finally every
        outcome is settled in assignment order on this thread again.
        """
        admitted = []
        for assignment in assignments:
            admission = self._admit_assignment(assignment)
            if admission is not None:
                admitted.append(admission)
        if admitted and self.obs.registry.enabled:
            self._m_parallelism.set(len(admitted) / self._wave_executor.max_workers)
        self._wave_executor.run_wave(admitted)
        executed: List[Job] = []
        for admission in admitted:
            self._settle_assignment(admission)
            executed.append(admission.job)
        return executed

    def _admit_assignment(self, assignment: Assignment):
        """Phase 1 (server thread): decide whether the assignment still runs.

        Returns an :class:`~repro.accessserver.executor.AdmittedExecution`
        ready for its payload, or ``None`` when the job left the RUNNING
        state while waiting for its turn in the wave (e.g. cancelled by an
        earlier job of the same batch) or lost eligibility.
        """
        from repro.core.api import BatteryLabAPI
        from repro.accessserver.executor import AdmittedExecution

        admit_t0 = time.perf_counter()
        job = assignment.job
        if job.status is not JobStatus.RUNNING:
            return None
        # Earlier jobs of the wave may have advanced the simulated clock
        # since the batch was assigned.  Re-check the time-dependent
        # constraints (reservations, controller CPU) at execution time — a
        # reservation may have begun meanwhile — and requeue rather than run
        # on a device someone else now holds.
        if not self.scheduler.engine.eligible(
            job,
            assignment.vantage_point,
            assignment.device_serial,
            self.context.now,
            controller_cpu=self._controller_cpu,
        ):
            self.scheduler.engine.requeue(job)
            return None
        # Bill execution time, not queue-on-device time, so credits match
        # what the seed's one-at-a-time dispatch charged.
        job.mark_execution_started(self.context.now)
        record = self.vantage_point(assignment.vantage_point)
        api = BatteryLabAPI(record.controller)
        ctx = JobContext(job, api, assignment.device_serial, clock=lambda: self.context.now)
        self.scheduler.engine.begin_execution(job)
        admit_elapsed = time.perf_counter() - admit_t0
        if self.obs.registry.enabled:
            self._m_admit.observe(admit_elapsed)
        return AdmittedExecution(
            assignment=assignment,
            ctx=ctx,
            record=record,
            execution_started_at=self.context.now,
            admit_elapsed_s=admit_elapsed,
        )

    def _settle_assignment(self, admitted) -> None:
        """Phase 3 (server thread): status transition and all bookkeeping.

        Mirrors the historical post-payload block exactly — transition,
        ``end_execution``, device release, power-trace storage, credit
        settlement, then journal append and ``job.finished`` publish — so
        serial and parallel execution produce identical journals.

        Telemetry note: this is also where the job's lifecycle spans
        (``job.admit`` / ``job.run`` / ``job.settle``) are *recorded* — the
        phases were timed where they happened (admit on this thread, run
        possibly on a worker), but span IDs are minted and ``trace.span``
        bus records published here, on the server thread in assignment
        order, so parallel waves emit a byte-identical event stream.
        """
        settle_t0 = time.perf_counter()
        job = admitted.job
        if admitted.error is not None:
            # The payload may have been cancelled while it ran (its slot is
            # kept until here); only a still-RUNNING job transitions.
            if job.status is JobStatus.RUNNING:
                job.mark_failed(self.context.now, str(admitted.error))
                self.log("job failed", job=job.spec.name, error=str(admitted.error))
            else:
                self.log(
                    "job finished after cancellation",
                    job=job.spec.name,
                    status=job.status.value,
                    error=str(admitted.error),
                )
        else:
            if job.status is JobStatus.RUNNING:
                job.mark_completed(self.context.now, admitted.result)
                self.log("job completed", job=job.spec.name)
            else:
                self.log(
                    "job finished after cancellation",
                    job=job.spec.name,
                    status=job.status.value,
                )
        self.scheduler.engine.end_execution(job)
        self.scheduler.release(job)
        # Power-meter logs are collected by default and retained in
        # the workspace for several days (Section 3.1).
        monitor = admitted.record.controller.monitor
        if monitor is not None and monitor.last_trace() is not None:
            job.workspace.store("power_meter_trace", monitor.last_trace())
        # Settle consumed device time against the owner's credits.
        if self._credit_policy is not None:
            owner = job.spec.owner
            owner_is_admin = (
                owner in self.users.usernames()
                and self.users.get(owner).role is Role.ADMIN
            )
            if not owner_is_admin:
                account = self._credit_account_for(owner)
                # Charge the wall-clock the payload held the device, not
                # job.duration_s: a job cancelled mid-payload never gets
                # a finished_at, yet it occupied the device until here.
                consumed_hours = (
                    self.context.now - admitted.execution_started_at
                ) / 3600.0
                consumed_hours = min(consumed_hours, account.balance_device_hours)
                self._credit_policy.settle(
                    owner, consumed_hours, self.context.now, note=f"job {job.job_id}"
                )
        # Terminal outcomes are journaled once all bookkeeping has settled so
        # recovery replays balances exactly; cancellations were already
        # recorded via the dispatch.cancelled bus event.
        if job.status in (JobStatus.COMPLETED, JobStatus.FAILED):
            if self._persistence is not None:
                self._persistence.on_job_finished(job)
            self.events.publish(
                "job.finished",
                job_id=job.job_id,
                status=job.status.value,
                finished_at=job.finished_at,
            )
        settle_elapsed = time.perf_counter() - settle_t0
        if self.obs.registry.enabled:
            self._m_run.observe(admitted.run_elapsed_s)
            self._m_settle.observe(settle_elapsed)
            status = job.status.value
            child = self._m_executed_children.get(status)
            if child is None:
                child = self._m_executed.labels(status=status)
                self._m_executed_children[status] = child
            child.inc()
        tracer = self.obs.tracer
        if tracer.enabled:
            started_at = admitted.execution_started_at
            now = self.context.now
            tracer.record_phases(
                job.job_id,
                [
                    (
                        "job.admit",
                        started_at,
                        started_at,
                        admitted.admit_elapsed_s,
                        "ok",
                        {
                            "job_id": job.job_id,
                            "vantage_point": admitted.assignment.vantage_point,
                            "device": admitted.assignment.device_serial,
                        },
                    ),
                    (
                        "job.run",
                        started_at,
                        now,
                        admitted.run_elapsed_s,
                        "error" if admitted.error is not None else "ok",
                        {"job_id": job.job_id},
                    ),
                    (
                        "job.settle",
                        now,
                        now,
                        settle_elapsed,
                        "ok",
                        {"job_id": job.job_id, "status_after": job.status.value},
                    ),
                ],
            )

    # -- agent-pull execution ------------------------------------------------------------------
    # The inverse of run_pending_jobs: vantage-point daemons *pull* jobs
    # whose spec says ``execution="agent"`` via poll -> claim -> report.
    # A claim drives the very same dispatch-engine assign the push path
    # uses (so journals and analytics see the identical ``job.assigned``
    # record), holds the slots under a renewable lease, and a report
    # performs the push path's settle bookkeeping.  Lease expiry reuses
    # ``DispatchEngine.requeue`` — the preserve-position requeue crash
    # recovery also relies on — so a dead agent never strands a job and
    # the requeue journal record is byte-identical to a wave requeue.
    def register_agent(
        self,
        user: User,
        agent_id: str,
        vantage_point: Optional[str] = None,
        connectors: Optional[List[str]] = None,
        tags: Optional[Dict[str, str]] = None,
    ) -> AgentRecord:
        """Register (or refresh) an edge daemon's identity and capabilities.

        Only the first registration is journaled — like user accounts, the
        identity is durable while capability refreshes are cheap and
        idempotent.  A named vantage point must exist; an agent without one
        serves any vantage point's devices.
        """
        self.users.authorize(user, Permission.RUN_JOB)
        if vantage_point is not None:
            self.vantage_point(vantage_point)
        record, created = self.agents.register(
            agent_id,
            self.context.now,
            vantage_point=vantage_point,
            connectors=connectors,
            tags=tags,
        )
        if created and self._persistence is not None:
            self._persistence.on_agent_registered(record)
        self.log(
            "agent registered",
            agent=agent_id,
            vantage_point=vantage_point,
            connectors=list(record.connectors),
        )
        return record

    def _agent_candidate_slots(
        self, job: Job, record: AgentRecord
    ) -> List[Tuple[str, str]]:
        """Free slots this agent could run ``job`` on, in deterministic order.

        Honours the job's vantage-point/device-serial constraints and the
        agent's own vantage-point binding.  A job whose lease just expired
        counts its still-marked-busy slots as available — poll is read-only
        and may not reap the lease itself; the claim path expires it first.
        """
        constraints = job.spec.constraints
        target_vp = constraints.vantage_point or record.vantage_point
        if (
            constraints.vantage_point is not None
            and record.vantage_point is not None
            and constraints.vantage_point != record.vantage_point
        ):
            return []
        engine = self.scheduler.engine
        slots = [
            (slot.vantage_point, slot.device_serial)
            for slot in engine.slots.iter_free(target_vp, constraints.device_serial)
        ]
        lease = self.agents.lease_for_job(job.job_id)
        if lease is not None and lease.expired(self.context.now):
            slots = list(lease.devices) + [d for d in slots if d not in lease.devices]
        return slots

    def _agent_job_matches(self, job: Job, record: AgentRecord) -> bool:
        if job.spec.execution != "agent":
            return False
        constraints = job.spec.constraints
        if constraints.connector is not None and constraints.connector not in record.connectors:
            return False
        if constraints.device_count > 1 and "multi" not in record.connectors:
            return False
        return len(self._agent_candidate_slots(job, record)) >= constraints.device_count

    def agent_offers(self, user: User, agent_id: str, limit: int = 10) -> List[Job]:
        """Queued agent-mode jobs this agent could claim right now (FIFO order).

        Read-only — safe for the gateway's lock-free path.  Jobs held by an
        *expired* lease are offered too: the claim (a mutating op) reaps the
        lease before assigning, so a dead agent's job is re-claimable the
        moment any live agent polls.
        """
        self.users.authorize(user, Permission.RUN_JOB)
        record = self.agents.get(agent_id)
        offers: List[Job] = []
        now = self.context.now
        for job in self.scheduler.engine.queue.jobs():
            if len(offers) >= limit:
                break
            if job.status is JobStatus.QUEUED and self._agent_job_matches(job, record):
                offers.append(job)
        if len(offers) < limit:
            for lease in self.agents.leases():
                if len(offers) >= limit:
                    break
                if not lease.expired(now):
                    continue
                try:
                    job = self.scheduler.job(lease.job_id)
                except Exception:
                    continue
                if job.status is JobStatus.RUNNING and self._agent_job_matches(job, record):
                    offers.append(job)
        outcome = "offered" if offers else "empty"
        if self.obs.registry.enabled:
            child = self._m_agent_poll_children.get(outcome)
            if child is None:
                child = self._m_agent_polls.labels(outcome=outcome)
                self._m_agent_poll_children[outcome] = child
            child.inc()
        return offers

    def expire_agent_leases(self) -> int:
        """Reap expired leases: free every held slot and requeue the jobs.

        The requeue re-enters the constraint-bucketed queue at the job's
        *original* FIFO position (``preserve_position=True`` inside
        ``DispatchEngine.requeue``), mirroring crash recovery's in-flight
        re-queue semantics, and emits the same ``dispatch.requeued`` bus
        record the wave executor's lapsed-admission path does — so the
        journal cannot tell a lease expiry from any other requeue.
        """
        reaped = 0
        engine = self.scheduler.engine
        for lease in self.agents.expired(self.context.now):
            self.agents.release(lease.lease_id)
            reaped += 1
            try:
                job = self.scheduler.job(lease.job_id)
            except Exception:
                job = None
            if job is not None and job.status is JobStatus.RUNNING:
                engine.end_execution(job)
                # Child slots first: requeue() only frees the primary slot
                # recorded on the job itself.
                for vantage_point, serial in lease.devices[1:]:
                    slot = engine.slots.slot(vantage_point, serial)
                    if slot is not None and slot.busy_job_id == job.job_id:
                        engine.slots.mark_free(vantage_point, serial)
                engine.requeue(job)
                self._schedule_dispatch_tick()
            if self.obs.registry.enabled:
                self._m_lease_expired.inc()
            self.log(
                "agent lease expired",
                lease=lease.lease_id,
                agent=lease.agent_id,
                job_id=lease.job_id,
            )
        return reaped

    def agent_claim(
        self,
        user: User,
        agent_id: str,
        job_id: int,
        ttl_s: float = 30.0,
    ) -> Tuple[AgentLease, Job]:
        """Atomically lease one job — and *all* its device slots — to an agent.

        Multi-device jobs (``constraints.device_count > 1``) are
        all-or-nothing: either every slot is free and the whole family is
        marked busy under one lease, or the claim fails having touched
        nothing.  The primary slot goes through the dispatch engine's
        ``assign`` (same ``dispatch.assigned`` record as push dispatch);
        the child slots are held directly on the slot index.
        """
        started = time.perf_counter()
        self.users.authorize(user, Permission.RUN_JOB)
        if ttl_s <= 0:
            raise AgentError("lease ttl_s must be positive")
        self.expire_agent_leases()
        record = self.agents.get(agent_id)
        job = self.scheduler.job(job_id)
        if job.spec.execution != "agent":
            raise AgentError(
                f"job {job_id} is push-dispatched; only execution='agent' "
                "jobs can be claimed"
            )
        if job.status is not JobStatus.QUEUED:
            raise AgentError(
                f"job {job_id} is {job.status.value}, not claimable"
            )
        if not self._agent_job_matches(job, record):
            raise AgentError(
                f"agent {agent_id!r} does not match job {job_id} "
                "(connector, vantage point or free-device constraints)"
            )
        need = job.spec.constraints.device_count
        devices = self._agent_candidate_slots(job, record)[:need]
        if len(devices) < need:
            raise AgentError(
                f"job {job_id} needs {need} free devices; only "
                f"{len(devices)} available — claim is all-or-nothing"
            )
        now = self.context.now
        primary_vp, primary_serial = devices[0]
        self.scheduler.assign(job, primary_vp, primary_serial, now)
        for vantage_point, serial in devices[1:]:
            self.scheduler.engine.slots.mark_busy(vantage_point, serial, job.job_id)
        job.mark_execution_started(now)
        self.scheduler.engine.begin_execution(job)
        lease = self.agents.grant(
            agent_id,
            job_id,
            devices,
            ttl_s,
            now,
            claim_elapsed_s=time.perf_counter() - started,
        )
        if self.obs.registry.enabled:
            self._m_agent_claims.inc()
        self.log(
            "job leased",
            job_id=job_id,
            agent=agent_id,
            lease=lease.lease_id,
            devices=len(devices),
        )
        return lease, job

    def agent_heartbeat(self, lease_id: str) -> AgentLease:
        """Renew a lease for another TTL; expired leases are gone for good."""
        self.expire_agent_leases()
        return self.agents.renew(lease_id, self.context.now)

    def agent_report(
        self,
        lease_id: str,
        status: str,
        result: object = None,
        error: Optional[str] = None,
        children: Optional[List[Dict[str, object]]] = None,
    ) -> Tuple[Job, bool]:
        """Settle a leased job from its agent's report; idempotent on retry.

        Returns ``(job, duplicate)``.  A report against a lease that
        already settled — the agent crashed after upload but before
        recording the server's ack — answers the same job with
        ``duplicate=True`` and changes nothing, which is the exactly-once
        contract the daemon's outbox replay relies on.  Child results of a
        multi-device job are published as ``dispatch.child_result`` records
        *before* the terminal transition, so they roll up into the
        parent's ``job.watch`` stream ahead of its end frame.
        """
        settle_t0 = time.perf_counter()
        self.expire_agent_leases()
        lease = self.agents.lease(lease_id)
        if lease is None:
            settled_job = self.agents.settled_job(lease_id)
            if settled_job is not None:
                return self.scheduler.job(settled_job), True
            raise AgentError(
                f"unknown or expired lease {lease_id!r}; the job was "
                "requeued and the result must be discarded"
            )
        job = self.scheduler.job(lease.job_id)
        now = self.context.now
        for child in children or []:
            self.events.publish(
                "dispatch.child_result",
                job_id=job.job_id,
                device_serial=child.get("device_serial"),
                status=child.get("status"),
                output=child.get("output", ""),
                owner=job.spec.owner,
            )
        if job.status is JobStatus.RUNNING:
            if status == "completed":
                job.mark_completed(now, result)
                self.log("job completed", job=job.spec.name)
            else:
                job.mark_failed(now, error or "agent reported failure")
                self.log("job failed", job=job.spec.name, error=error)
        else:
            self.log(
                "agent report after cancellation",
                job=job.spec.name,
                status=job.status.value,
            )
        engine = self.scheduler.engine
        engine.end_execution(job)
        self.scheduler.release(job)
        for vantage_point, serial in lease.devices[1:]:
            slot = engine.slots.slot(vantage_point, serial)
            if slot is not None and slot.busy_job_id == job.job_id:
                engine.slots.mark_free(vantage_point, serial)
        if self._credit_policy is not None:
            owner = job.spec.owner
            owner_is_admin = (
                owner in self.users.usernames()
                and self.users.get(owner).role is Role.ADMIN
            )
            if not owner_is_admin:
                account = self._credit_account_for(owner)
                consumed_hours = (now - lease.granted_at) / 3600.0
                consumed_hours = min(consumed_hours, account.balance_device_hours)
                self._credit_policy.settle(
                    owner, consumed_hours, now, note=f"job {job.job_id}"
                )
        if job.status in (JobStatus.COMPLETED, JobStatus.FAILED):
            if self._persistence is not None:
                self._persistence.on_job_finished(job)
            self.events.publish(
                "job.finished",
                job_id=job.job_id,
                status=job.status.value,
                finished_at=job.finished_at,
            )
        self.agents.settle(lease_id)
        settle_elapsed = time.perf_counter() - settle_t0
        if self.obs.registry.enabled:
            terminal = job.status.value
            child = self._m_agent_report_children.get(terminal)
            if child is None:
                child = self._m_agent_reports.labels(status=terminal)
                self._m_agent_report_children[terminal] = child
            child.inc()
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.record_phases(
                job.job_id,
                [
                    (
                        "agent.claim",
                        lease.granted_at,
                        lease.granted_at,
                        lease.claim_elapsed_s,
                        "ok",
                        {
                            "job_id": job.job_id,
                            "agent": lease.agent_id,
                            "devices": len(lease.devices),
                        },
                    ),
                    (
                        "agent.run",
                        lease.granted_at,
                        now,
                        now - lease.granted_at,
                        "error" if job.status is JobStatus.FAILED else "ok",
                        {"job_id": job.job_id, "agent": lease.agent_id},
                    ),
                    (
                        "agent.report",
                        now,
                        now,
                        settle_elapsed,
                        "ok",
                        {"job_id": job.job_id, "status_after": job.status.value},
                    ),
                ],
            )
        self._schedule_dispatch_tick()
        return job, False

    # -- parallel wave execution ---------------------------------------------------------------
    @property
    def parallel_waves_enabled(self) -> bool:
        return self._wave_executor is not None

    def enable_parallel_waves(self, max_workers: Optional[int] = None):
        """Run each dispatch wave's payloads concurrently (opt-in).

        **Determinism contract**: state mutations — admission, status
        transitions, billing, journal appends, event publishes — stay on
        the thread calling :meth:`run_pending_jobs`, in assignment order,
        so journals and event streams are byte-identical to serial
        execution *as long as the payloads themselves are independent*:
        they must not advance the simulated clock or mutate shared
        simulation state (:class:`~repro.simulation.clock.SimClock` is not
        thread-safe).  Payloads bound by wall time — real device I/O,
        ``time.sleep``-style waits, local computation — qualify; clock
        -advancing simulation payloads should keep the serial default.

        ``max_workers`` defaults to the registered device count (the
        maximum possible wave width), with a floor of one.  Returns the
        :class:`~repro.accessserver.executor.WaveExecutor`.
        """
        from repro.accessserver.executor import WaveExecutor

        if max_workers is None:
            max_workers = max(1, self.scheduler.device_count())
        if self._wave_executor is not None:
            self._wave_executor.shutdown()
        self._wave_executor = WaveExecutor(max_workers=max_workers)
        self.log("parallel waves enabled", workers=max_workers)
        return self._wave_executor

    def disable_parallel_waves(self) -> None:
        """Return to strictly serial wave execution (the default)."""
        if self._wave_executor is not None:
            self._wave_executor.shutdown()
            self._wave_executor = None
            self.log("parallel waves disabled")

    # -- scheduling policy & event-driven dispatch ---------------------------------------------
    @property
    def scheduling_policy(self) -> SchedulingPolicy:
        return self.scheduler.policy

    def set_scheduling_policy(self, policy: Union[str, SchedulingPolicy]) -> SchedulingPolicy:
        """Swap the queue ordering policy; applies from the next dispatch tick."""
        selected = self.scheduler.set_policy(policy)
        if self._persistence is not None:
            self._persistence.on_policy_changed(selected.name)
        self.log("scheduling policy changed", policy=selected.name)
        return selected

    @property
    def auto_dispatch_enabled(self) -> bool:
        return self._auto_dispatch

    def enable_auto_dispatch(
        self,
        poll_interval_s: Optional[float] = None,
        max_jobs_per_tick: int = 100,
    ) -> None:
        """Dispatch through the simulation event loop instead of caller polling.

        Once enabled, every submission/approval schedules a dispatch tick at
        the current simulated time, so advancing the simulation executes
        queued jobs without anyone calling :meth:`run_pending_jobs`.  Jobs
        left queued behind an active session reservation are retried when
        that reservation ends.  With ``poll_interval_s`` set, an additional
        periodic tick also retries other temporarily unsatisfied constraints
        (notably a busy controller CPU, whose future is unknowable to the
        dispatcher).  Jobs run inside event callbacks here, so payloads may
        advance the simulated clock themselves — the event loop tolerates
        that re-entrancy.
        """
        self._auto_dispatch = True
        self._auto_dispatch_interval_s = poll_interval_s
        self._auto_dispatch_max_jobs = max_jobs_per_tick
        self._schedule_dispatch_tick()

    def disable_auto_dispatch(self) -> None:
        self._auto_dispatch = False
        if self._auto_dispatch_event is not None:
            self._auto_dispatch_event.cancel()
            self._auto_dispatch_event = None

    def _schedule_dispatch_tick(self, delay_s: float = 0.0) -> None:
        if not self._auto_dispatch:
            return
        if self._auto_dispatch_event is not None:
            # Keep whichever tick fires first: a pending poll scheduled far
            # out must not swallow the immediate tick a new submission earns.
            if self._auto_dispatch_event.timestamp <= self.context.now + delay_s:
                return
            self._auto_dispatch_event.cancel()
        self._auto_dispatch_event = self.context.scheduler.schedule_in(
            delay_s, self._auto_dispatch_tick, label="access-server-dispatch"
        )

    def _auto_dispatch_tick(self) -> None:
        self._auto_dispatch_event = None
        if not self._auto_dispatch:
            return
        executed = self.run_pending_jobs(max_jobs=self._auto_dispatch_max_jobs)
        if self.scheduler.queue_length() == 0:
            return
        if len(executed) >= self._auto_dispatch_max_jobs:
            # The per-tick cap cut this wave short; more work is dispatchable
            # right now, so follow up immediately rather than waiting for the
            # next submission or poll.
            self._schedule_dispatch_tick()
            return
        # Wake up at the earlier of the configured poll and the end of the
        # first active reservation — reservation expiry is the one blocking
        # condition whose timing the dispatcher knows exactly.  (Jobs blocked
        # on the controller-CPU constraint need poll_interval_s.)  Under
        # "defer" admission an *upcoming* reservation can also hold a job
        # back, and such a job cannot become placeable before that
        # reservation ends, so the wake-up considers future reservations too.
        delay = self._auto_dispatch_interval_s
        reservations = self.scheduler.engine.reservations
        if self.scheduler.engine.reservation_admission == "defer":
            reservation_end = reservations.earliest_relevant_end(self.context.now)
        else:
            reservation_end = reservations.earliest_active_end(self.context.now)
        if reservation_end is not None and reservation_end > self.context.now:
            reservation_delay = reservation_end - self.context.now
            delay = reservation_delay if delay is None else min(delay, reservation_delay)
        if delay is not None:
            self._schedule_dispatch_tick(delay)

    # -- interactive sessions ------------------------------------------------------------------
    def reserve_session(
        self,
        user: User,
        vantage_point_name: str,
        device_serial: str,
        start_s: float,
        duration_s: float,
    ) -> SessionReservation:
        """Reserve a timed interactive slot on one device.

        .. deprecated:: API v1
           Compatibility shim — new code reserves through
           :meth:`repro.api.client.BatteryLabClient.reserve_session`.
        """
        self.users.authorize(user, Permission.REMOTE_CONTROL)
        self.vantage_point(vantage_point_name)
        reservation = self.scheduler.reserve_session(
            user.username, vantage_point_name, device_serial, start_s, duration_s
        )
        if self._persistence is not None:
            self._persistence.on_reservation_created(reservation)
        self.events.publish(
            "reservation.created",
            reservation_id=reservation.reservation_id,
            username=reservation.username,
            vantage_point=reservation.vantage_point,
            device_serial=reservation.device_serial,
            start_s=reservation.start_s,
            duration_s=reservation.duration_s,
        )
        return reservation

    def share_with_tester(
        self,
        experimenter: User,
        tester_id: int,
        vantage_point_name: str,
        device_serial: str,
        duration_s: float,
        show_toolbar: bool = False,
    ):
        """Share a mirrored device with a recruited tester for manual interaction."""
        self.users.authorize(experimenter, Permission.REMOTE_CONTROL)
        record = self.vantage_point(vantage_point_name)
        session = record.controller.start_mirroring(device_serial)
        if not show_toolbar:
            session.novnc.toolbar.hide()
        else:
            session.novnc.toolbar.show()
        tester_session = self.testers.open_session(
            tester_id,
            vantage_point_name,
            device_serial,
            now=self.context.now,
            duration_s=duration_s,
            toolbar_visible=show_toolbar,
        )
        session.connect_viewer(tester_session.tester.name, role="tester")
        return tester_session

    # -- remote administration (Platform API v2) ----------------------------------------------
    def create_user(
        self,
        admin: User,
        username: str,
        role: Union[str, Role],
        token: str,
        email: str = "",
    ) -> User:
        """Open a platform account on an administrator's authority.

        The account (with its token hash, never the plaintext) is journaled
        when persistence is enabled, so remotely created users survive a
        restart and can authenticate against the recovered server.
        """
        self.users.authorize(admin, Permission.MANAGE_USERS)
        user = self.users.add_user(username, Role(role), token, email=email)
        if self._persistence is not None:
            self._persistence.on_user_created(user)
        self.log(
            "user created", username=username, role=user.role.value, by=admin.username
        )
        return user

    def grant_credits(
        self, admin: User, owner: str, amount_device_hours: float, note: str = ""
    ):
        """Administrative credit adjustment; opens the account when missing.

        Returns the (possibly new) :class:`~repro.accessserver.credits.CreditAccount`.
        The ledger's observers journal the transaction, so grants replay
        exactly on recovery.
        """
        self.users.authorize(admin, Permission.MANAGE_CREDITS)
        if self._credit_policy is None:
            raise AccessServerError("the credit system is not enabled on this server")
        account = self._credit_account_for(owner)
        self._credit_policy.ledger.adjust(
            owner,
            amount_device_hours,
            self.context.now,
            note=note or f"grant by {admin.username}",
        )
        self.log(
            "credits granted",
            owner=owner,
            amount_device_hours=amount_device_hours,
            by=admin.username,
        )
        return account

    # -- bootstrap helpers --------------------------------------------------------------------
    def bootstrap_admin(self, username: str = "admin", token: str = "admin-token") -> User:
        """Create the initial administrator account."""
        return self.users.add_user(username, Role.ADMIN, token)

    def _track_orphan(self, job: Job) -> None:
        """Index ``job`` as an orphan if its pinned vantage point is absent.

        Called on submission and on crash-recovery restore; the set shrinks
        via the ``dispatch.cancelled`` subscription (cancel/reject both emit
        it) and when the missing vantage point registers — an orphan can
        never be dispatched, so no other exit path exists.
        """
        required = job.spec.constraints.vantage_point
        if required is not None and required not in self._vantage_points:
            self._orphans[job.job_id] = job

    def orphaned_jobs(self) -> List[Job]:
        """Waiting jobs pinned to a vantage point that is not registered.

        After crash recovery these are the journaled jobs whose vantage
        point has not re-joined (``recover_into`` restores state, not
        hardware); they sit in the queue undispatchable until an operator
        re-registers the topology.  Maintained incrementally (submission /
        recovery add, cancellation and vantage-point registration remove),
        so this — and the ``status()`` report built on it — costs
        O(orphans), not O(queue).
        """
        orphaned = []
        for job_id in list(self._orphans):
            job = self._orphans[job_id]
            required = job.spec.constraints.vantage_point
            if (
                job.status not in (JobStatus.QUEUED, JobStatus.PENDING_APPROVAL)
                or required is None
                or required in self._vantage_points
            ):
                # Self-heal any entry invalidated outside the tracked exits.
                del self._orphans[job_id]
                continue
            orphaned.append(job)
        orphaned.sort(key=lambda job: job.job_id)
        return orphaned

    def status(self) -> dict:
        orphaned = self.orphaned_jobs()
        journal = None
        if self._persistence is not None:
            # Compaction lag at a glance: how much journal a recovery would
            # replay, and when the last snapshot bounded it.
            journal = {
                "records": self._persistence.sequence,
                "records_since_snapshot": self._persistence.records_since_snapshot,
                "snapshots_written": self._persistence.snapshots_written,
                "last_snapshot_at": self._persistence.last_snapshot_at,
            }
        return {
            "shard_id": self.shard_id,
            "vantage_points": [record.name for record in self.vantage_points()],
            "users": self.users.usernames(),
            "queued_jobs": self.scheduler.queue_length(),
            "pending_approval": len(self._pending_approval),
            "scheduling_policy": self.scheduler.policy.name,
            "reservation_admission": self.scheduler.engine.reservation_admission,
            "auto_dispatch": self._auto_dispatch,
            "persistence": self._persistence is not None,
            "journal": journal,
            "certificate_serial": self._wildcard_certificate.serial_number
            if self._wildcard_certificate
            else None,
            "orphaned_jobs": [job.job_id for job in orphaned],
            "orphaned_vantage_points": sorted(
                {job.spec.constraints.vantage_point for job in orphaned}
            ),
        }
