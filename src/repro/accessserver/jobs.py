"""Jobs, job workspaces and job execution context.

Experimenters "create jobs to be deployed in their favorite programming
language" (Section 3.1); in this reproduction a job's payload is a Python
callable receiving a :class:`JobContext`.  The access server enforces the
paper's rules around jobs: only authorized experimenters create/edit/run
them, pipeline changes need administrator approval, power-meter logs are
kept in the job's workspace for several days, and Android logs are available
on request through the ``execute_adb`` API.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class JobError(RuntimeError):
    """Raised for invalid job state transitions or workspace access."""


class JobStatus(str, enum.Enum):
    PENDING_APPROVAL = "pending_approval"
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class JobConstraints:
    """Experimenter and platform constraints considered at dispatch time.

    Attributes
    ----------
    vantage_point:
        Name of the vantage point the job must run at (``None`` = any).
    device_serial:
        Specific test device required (``None`` = any device at the vantage point).
    connectivity:
        Required connectivity for the test device (``"wifi"`` or ``"cellular"``).
    require_low_controller_cpu:
        Optional constraint: only dispatch while the controller CPU is low.
    max_controller_cpu_percent:
        Threshold used when ``require_low_controller_cpu`` is set.
    device_count:
        Number of device slots the job needs simultaneously.  ``1`` is the
        classic single-device job; larger values are multi-device jobs that
        only agent-pull execution can claim (all-or-nothing, through the
        ``multi`` connector).
    connector:
        Device connector type the job demands of the executing agent
        (``None`` = any connector).  Only meaningful for agent-pull jobs.
    """

    vantage_point: Optional[str] = None
    device_serial: Optional[str] = None
    connectivity: Optional[str] = None
    require_low_controller_cpu: bool = False
    max_controller_cpu_percent: float = 50.0
    device_count: int = 1
    connector: Optional[str] = None


@dataclass
class JobSpec:
    """Everything needed to run one experiment job.

    ``priority`` is the per-job scheduling input consumed by the
    ``"priority"`` policy (see :mod:`repro.accessserver.policies`): higher
    values dispatch first, ties keep submission order.  The FIFO and
    fair-share policies ignore it.

    ``execution`` selects who runs the payload: ``"push"`` (default) keeps
    the server-side executor dispatching onto device slots; ``"agent"``
    parks the job for a vantage-point daemon to pull via
    ``agent.poll``/``agent.claim`` — push dispatch skips it entirely.
    """

    name: str
    owner: str
    run: Callable[["JobContext"], object]
    description: str = ""
    constraints: JobConstraints = field(default_factory=JobConstraints)
    priority: float = 0.0
    timeout_s: float = 3600.0
    is_pipeline_change: bool = False
    log_retention_days: float = 7.0
    execution: str = "push"


@dataclass
class Workspace:
    """Per-job artefact store (power-meter logs, ADB output, results)."""

    artifacts: Dict[str, object] = field(default_factory=dict)
    created_at: float = 0.0
    retention_days: float = 7.0

    def store(self, name: str, value: object) -> None:
        if not name:
            raise JobError("artifact name must be non-empty")
        self.artifacts[name] = value

    def fetch(self, name: str) -> object:
        try:
            return self.artifacts[name]
        except KeyError:
            raise JobError(f"no artifact named {name!r} in the workspace") from None

    def names(self) -> List[str]:
        return sorted(self.artifacts)

    def expired(self, now: float) -> bool:
        return now > self.created_at + self.retention_days * 24 * 3600.0


class _JobIdAllocator:
    """Monotonic job-id source that recovery can fast-forward.

    Job ids must stay unique across an access-server restart: the
    persistence layer replays journaled jobs with their original ids and
    then calls :func:`claim_job_id` so freshly created jobs never collide
    with a recovered one.

    ``stride`` partitions the id space for federation: shard ``k`` of a
    ``stride``-wide federation allocates ``k+1, k+1+stride, ...`` so N
    independent access servers never mint the same job id and the
    federation router can compute a job's home shard as
    ``(job_id - 1) % stride`` in O(1).  The defaults (``start=1,
    stride=1``) are the historical single-server series.
    """

    def __init__(self, start: int = 1, stride: int = 1) -> None:
        if stride < 1:
            raise ValueError("stride must be at least 1")
        self._next = start
        self._stride = stride

    def __next__(self) -> int:
        value = self._next
        self._next += self._stride
        return value

    def claim(self, job_id: int) -> None:
        if job_id >= self._next:
            # Fast-forward to the next id in *this allocator's* series that
            # is strictly greater than job_id (stride-aware: a shard only
            # ever mints ids congruent to its own lane).
            steps = (job_id - self._next) // self._stride + 1
            self._next += steps * self._stride


_job_ids = _JobIdAllocator()


def claim_job_id(job_id: int) -> None:
    """Mark ``job_id`` as used so future jobs allocate strictly greater ids.

    Called by the persistence layer when it materialises a journaled job
    with its original id during crash recovery.
    """
    _job_ids.claim(job_id)


def shard_job_id_allocator(shard_index: int, shard_count: int) -> _JobIdAllocator:
    """A job-id allocator owning lane ``shard_index`` of a sharded id space.

    Shard ``k`` of ``N`` mints ``k+1, k+1+N, k+1+2N, ...`` — disjoint from
    every other lane, so a federation of N access servers allocates
    globally unique ids with no coordination, and ``(job_id - 1) % N``
    recovers the owning lane.
    """
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index {shard_index} out of range for shard_count {shard_count}"
        )
    return _JobIdAllocator(start=shard_index + 1, stride=shard_count)


@dataclass
class Job:
    """A job instance tracked by the scheduler."""

    spec: JobSpec
    job_id: int = field(default_factory=lambda: next(_job_ids))
    status: JobStatus = JobStatus.QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    assigned_vantage_point: Optional[str] = None
    assigned_device: Optional[str] = None
    result: object = None
    error: Optional[str] = None
    log_lines: List[str] = field(default_factory=list)
    workspace: Workspace = field(default_factory=Workspace)

    def log(self, message: str) -> None:
        self.log_lines.append(message)

    @property
    def duration_s(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def mark_running(self, now: float, vantage_point: str, device: Optional[str]) -> None:
        if self.status not in (JobStatus.QUEUED,):
            raise JobError(f"cannot start job {self.job_id} from status {self.status.value}")
        self.status = JobStatus.RUNNING
        self.started_at = now
        self.assigned_vantage_point = vantage_point
        self.assigned_device = device

    def mark_execution_started(self, now: float) -> None:
        """Re-stamp the start time when execution begins after a wave wait.

        Batch dispatch may assign a job well before its payload actually
        runs (earlier jobs of the wave advance the simulated clock);
        duration-based accounting charges execution time, so the start
        timestamp moves to the moment the payload launches.
        """
        if self.status is not JobStatus.RUNNING:
            raise JobError(
                f"cannot start executing job {self.job_id} from status {self.status.value}"
            )
        self.started_at = now

    def mark_requeued(self) -> None:
        """Return an assigned-but-not-yet-executed job to the queue."""
        if self.status is not JobStatus.RUNNING:
            raise JobError(f"cannot requeue job {self.job_id} from status {self.status.value}")
        self.status = JobStatus.QUEUED
        self.started_at = None
        self.assigned_vantage_point = None
        self.assigned_device = None

    def mark_completed(self, now: float, result: object) -> None:
        if self.status is not JobStatus.RUNNING:
            raise JobError(f"cannot complete job {self.job_id} from status {self.status.value}")
        self.status = JobStatus.COMPLETED
        self.finished_at = now
        self.result = result

    def mark_failed(self, now: float, error: str) -> None:
        if self.status is not JobStatus.RUNNING:
            raise JobError(f"cannot fail job {self.job_id} from status {self.status.value}")
        self.status = JobStatus.FAILED
        self.finished_at = now
        self.error = error

    def mark_cancelled(self) -> None:
        if self.status in (JobStatus.COMPLETED, JobStatus.FAILED):
            raise JobError(f"cannot cancel finished job {self.job_id}")
        self.status = JobStatus.CANCELLED


class JobContext:
    """What a running job sees: its device, the platform API, logging and storage.

    Parameters
    ----------
    job:
        The job being executed.
    api:
        A :class:`repro.core.api.BatteryLabAPI` bound to the job's vantage point.
    device_serial:
        The test device reserved for this job.
    clock:
        Callable returning the current simulated time.
    """

    def __init__(
        self,
        job: Job,
        api,
        device_serial: Optional[str],
        clock: Callable[[], float],
    ) -> None:
        self._job = job
        self._api = api
        self._device_serial = device_serial
        self._clock = clock

    @property
    def job(self) -> Job:
        return self._job

    @property
    def api(self):
        """The BatteryLab Python API (Table 1) bound to this job's vantage point."""
        return self._api

    @property
    def device_serial(self) -> Optional[str]:
        return self._device_serial

    @property
    def now(self) -> float:
        return self._clock()

    def log(self, message: str) -> None:
        self._job.log(f"[{self.now:10.1f}] {message}")

    def store_artifact(self, name: str, value: object) -> None:
        """Persist an artefact (trace, table, ADB dump) in the job workspace."""
        self._job.workspace.store(name, value)
