"""Pluggable scheduling policies for the dispatch pipeline.

The paper only mandates *constraints* ("dispatch queued jobs based on
experimenter constraints ... and BatteryLab constraints", Section 3.1) but
stays silent on *ordering* when several queued jobs compete for the same
devices.  The seed hard-coded FIFO; this module makes the ordering a
pluggable :class:`SchedulingPolicy` so a multi-tenant deployment can pick
what fits its community:

* ``fifo`` — submission order, the seed behaviour and the default;
* ``priority`` — highest :attr:`repro.accessserver.jobs.JobSpec.priority`
  first, FIFO within a priority level;
* ``fair-share`` — round-robin across job owners, preferring owners with
  the fewest running jobs, FIFO within an owner;
* ``deadline`` — earliest deadline first (EDF), where a job's deadline is
  ``submitted_at + timeout_s``: the latest moment its device time could
  still elapse in full; ties keep submission order;
* ``credit`` — weighted fair-share with each owner's remaining charge
  balance (credit device-hours) as the weight: well-funded members drain
  their queues proportionally faster, drained accounts yield the fleet.

A policy only *orders* the queue snapshot for one dispatch tick; the
constraint checks (free device, reservations, controller CPU) stay in
:class:`repro.accessserver.dispatch.DispatchEngine`.  Policies are selected
by name at any layer: ``JobScheduler(policy=...)``,
``AccessServer(scheduling_policy=...)``,
``build_default_platform(scheduling_policy=...)`` or the CLI's
``--scheduling-policy`` flag; per-job scheduling input (the priority level)
travels on the :class:`~repro.accessserver.jobs.JobSpec`.
"""

from __future__ import annotations

import abc
import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Sequence, Union

from repro.accessserver.jobs import Job


class PolicyError(ValueError):
    """Raised when an unknown scheduling policy is requested."""


@dataclass(frozen=True)
class DispatchStats:
    """Queue-wide statistics a policy may consult when ordering jobs.

    Attributes
    ----------
    now:
        Simulated time of the dispatch tick.
    running_by_owner:
        Number of currently RUNNING jobs per owner username; owners with
        no running job are absent.
    credit_balance_by_owner:
        Remaining credit balance (device-hours) per owner, populated only
        while the access server's credit system is enabled; empty
        otherwise.  Consumed by the ``credit`` policy as its fair-share
        weight.
    """

    now: float = 0.0
    running_by_owner: Mapping[str, int] = field(default_factory=dict)
    credit_balance_by_owner: Mapping[str, float] = field(default_factory=dict)


class SchedulingPolicy(abc.ABC):
    """Orders the queued jobs considered by one dispatch tick.

    ``order`` receives the queue snapshot in FIFO (submission) order and
    returns the jobs in the order the dispatcher should try to place them.
    It must return a permutation of its input — policies never drop or
    invent jobs, they only reorder.
    """

    name: str = "base"

    @abc.abstractmethod
    def order(self, jobs: Sequence[Job], stats: DispatchStats) -> List[Job]:
        """Return ``jobs`` in dispatch order."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class FifoPolicy(SchedulingPolicy):
    """Submission order — the seed scheduler's behaviour and the default."""

    name = "fifo"

    def order(self, jobs: Sequence[Job], stats: DispatchStats) -> List[Job]:
        return list(jobs)


class PriorityPolicy(SchedulingPolicy):
    """Highest ``JobSpec.priority`` first; FIFO within one priority level."""

    name = "priority"

    def order(self, jobs: Sequence[Job], stats: DispatchStats) -> List[Job]:
        # sorted() is stable, so equal priorities keep submission order.
        return sorted(jobs, key=lambda job: -job.spec.priority)


class FairSharePolicy(SchedulingPolicy):
    """Round-robin across owners, favouring owners with fewer running jobs.

    Owners are charged one share per job they already have RUNNING plus one
    per job handed out earlier in the same tick, so a burst submitter cannot
    monopolise a freshly freed fleet.  Within one owner jobs stay FIFO; ties
    between owners break on who has the earliest queued job.
    """

    name = "fair-share"

    def order(self, jobs: Sequence[Job], stats: DispatchStats) -> List[Job]:
        queues: Dict[str, Deque[Job]] = {}
        first_position: Dict[str, int] = {}
        for position, job in enumerate(jobs):
            owner = job.spec.owner
            if owner not in queues:
                queues[owner] = deque()
                first_position[owner] = position
            queues[owner].append(job)

        heap = [
            (stats.running_by_owner.get(owner, 0), first_position[owner], owner)
            for owner in queues
        ]
        heapq.heapify(heap)
        ordered: List[Job] = []
        while heap:
            shares, position, owner = heapq.heappop(heap)
            ordered.append(queues[owner].popleft())
            if queues[owner]:
                heapq.heappush(heap, (shares + 1, position, owner))
        return ordered


class DeadlinePolicy(SchedulingPolicy):
    """Earliest deadline first (EDF) over ``submitted_at + timeout_s``.

    A job's timeout is the upper bound on the device time it may consume, so
    ``submitted_at + timeout_s`` is the natural implicit deadline: the
    earliest submission that tolerates the least waiting dispatches first.
    Ties (identical deadlines) keep submission order via sort stability.
    """

    name = "deadline"

    def order(self, jobs: Sequence[Job], stats: DispatchStats) -> List[Job]:
        return sorted(jobs, key=lambda job: job.submitted_at + job.spec.timeout_s)


class CreditSharePolicy(SchedulingPolicy):
    """Weighted fair-share with the remaining charge balance as the weight.

    The paper's conclusion sketches access-by-credit; this policy closes
    the loop between the ledger and the dispatcher: owners are served
    round-robin like ``fair-share``, but each owner's share count is
    divided by their remaining credit balance (device-hours), so members
    with more unspent credit drain their queues proportionally faster and
    an owner running on fumes yields the fleet to those still holding
    balance.  Owners without a ledger account — including every owner when
    the credit system is off — weigh in at one device-hour, which reduces
    the ordering to plain fair-share.  Within one owner jobs stay FIFO;
    ties break on who has the earliest queued job.
    """

    name = "credit"

    #: Weight for owners without a ledger account; also the floor for
    #: drained accounts so a zero balance cannot divide by zero.
    DEFAULT_WEIGHT = 1.0
    MINIMUM_WEIGHT = 1e-6

    def order(self, jobs: Sequence[Job], stats: DispatchStats) -> List[Job]:
        queues: Dict[str, Deque[Job]] = {}
        first_position: Dict[str, int] = {}
        for position, job in enumerate(jobs):
            owner = job.spec.owner
            if owner not in queues:
                queues[owner] = deque()
                first_position[owner] = position
            queues[owner].append(job)

        def weight(owner: str) -> float:
            balance = stats.credit_balance_by_owner.get(owner, self.DEFAULT_WEIGHT)
            return max(balance, self.MINIMUM_WEIGHT)

        # Virtual cost of an owner's next slot: (already running + handed out
        # this tick + the slot itself) / weight.  The "+1" makes the weight
        # bite from the very first pick — two idle owners differ by balance,
        # not just submission position.
        def key(owner: str, served: int) -> float:
            return (stats.running_by_owner.get(owner, 0) + served + 1) / weight(owner)

        heap = [(key(owner, 0), first_position[owner], owner) for owner in queues]
        heapq.heapify(heap)
        ordered: List[Job] = []
        served: Dict[str, int] = {}
        while heap:
            _, position, owner = heapq.heappop(heap)
            ordered.append(queues[owner].popleft())
            served[owner] = served.get(owner, 0) + 1
            if queues[owner]:
                heapq.heappush(heap, (key(owner, served[owner]), position, owner))
        return ordered


POLICIES = {
    FifoPolicy.name: FifoPolicy,
    PriorityPolicy.name: PriorityPolicy,
    FairSharePolicy.name: FairSharePolicy,
    DeadlinePolicy.name: DeadlinePolicy,
    # "edf" is the textbook name for the same ordering.
    "edf": DeadlinePolicy,
    CreditSharePolicy.name: CreditSharePolicy,
}


def policy_names() -> List[str]:
    """The registered policy names, for CLI choices and error messages."""
    return sorted(POLICIES)


def create_policy(policy: Union[str, SchedulingPolicy]) -> SchedulingPolicy:
    """Resolve ``policy`` (a name or an instance) to a policy instance.

    Names are case-insensitive and accept ``_`` for ``-`` so both
    ``"fair-share"`` and ``"fair_share"`` work.
    """
    if isinstance(policy, SchedulingPolicy):
        return policy
    key = str(policy).strip().lower().replace("_", "-")
    try:
        return POLICIES[key]()
    except KeyError:
        raise PolicyError(
            f"unknown scheduling policy {policy!r}; available: {', '.join(policy_names())}"
        ) from None
