"""Built-in vantage-point management jobs.

Section 3.1: "We have developed several jobs which manage the vantage
points.  These jobs span from updating BatteryLab wildcard certificates, to
ensure the power meter is not active when not needed (for safety reasons),
or to factory reset a device."  Each builder below returns a
:class:`~repro.accessserver.jobs.JobSpec` that the access server schedules
like any experimenter job but owned by the platform administrator.
"""

from __future__ import annotations

from typing import Optional

from repro.accessserver.certificates import CertificateAuthority, WildcardCertificate, deploy_certificate
from repro.accessserver.jobs import JobConstraints, JobContext, JobSpec


def build_certificate_renewal_job(
    server,
    owner: str = "admin",
) -> JobSpec:
    """Renew the platform wildcard certificate (if due) and deploy it everywhere.

    ``server`` is the :class:`~repro.accessserver.server.AccessServer`; the
    job uses its CA, its current certificate and its SSH channels.
    """

    def run(ctx: JobContext) -> dict:
        ca: CertificateAuthority = server.certificate_authority
        current: Optional[WildcardCertificate] = server.wildcard_certificate
        renewed = ca.renew_if_needed(current, ctx.now)
        deployed_to = []
        if renewed is not None:
            server.set_wildcard_certificate(renewed)
            for record in server.vantage_points():
                channel = server.open_ssh_channel(record.name)
                path = deploy_certificate(channel, renewed)
                channel.close()
                deployed_to.append(f"{record.name}:{path}")
                ctx.log(f"deployed renewed certificate to {record.name}")
        else:
            ctx.log("certificate still valid; nothing to do")
        return {
            "renewed": renewed is not None,
            "serial": renewed.serial_number if renewed else (current.serial_number if current else None),
            "deployed_to": deployed_to,
        }

    return JobSpec(
        name="maintenance-certificate-renewal",
        owner=owner,
        run=run,
        description="Renew the *.batterylab.dev certificate and deploy it to every vantage point",
        constraints=JobConstraints(),
        log_retention_days=30.0,
    )


def build_power_safety_job(server, vantage_point: str, owner: str = "admin") -> JobSpec:
    """Ensure the power meter at a vantage point is off while no job needs it."""

    def run(ctx: JobContext) -> dict:
        record = server.vantage_point(vantage_point)
        controller = record.controller
        monitor = controller.monitor
        socket = controller.power_socket
        actions = []
        if monitor is not None and socket is not None:
            if monitor.sampling:
                ctx.log("monitor is actively sampling; leaving it powered")
            elif socket.is_on:
                controller.set_power_monitor(False)
                actions.append("powered off monitor")
                ctx.log("monitor idle: powered it off for safety")
        return {"vantage_point": vantage_point, "actions": actions}

    return JobSpec(
        name=f"maintenance-power-safety-{vantage_point}",
        owner=owner,
        run=run,
        description="Power the Monsoon off when no experiment needs it (safety)",
        constraints=JobConstraints(vantage_point=vantage_point),
        log_retention_days=7.0,
    )


def build_workspace_cleanup_job(server, owner: str = "admin") -> JobSpec:
    """Purge job workspaces whose retention period has elapsed.

    The paper keeps power-meter logs "available for several days within the
    job's workspace" (Section 3.1); this job is the other half of that
    statement — once the retention window passes, the artefacts are removed
    so the access server's storage stays bounded.
    """

    def run(ctx: JobContext) -> dict:
        purged = []
        for job in server.scheduler.jobs():
            workspace = job.workspace
            if workspace.artifacts and workspace.expired(ctx.now):
                workspace.artifacts.clear()
                purged.append(job.job_id)
                ctx.log(f"purged workspace of job {job.job_id}")
        return {"purged_jobs": purged, "count": len(purged)}

    return JobSpec(
        name="maintenance-workspace-cleanup",
        owner=owner,
        run=run,
        description="Delete job artefacts whose retention window has elapsed",
        constraints=JobConstraints(),
        log_retention_days=3.0,
    )


def build_factory_reset_job(
    server, vantage_point: str, device_serial: str, owner: str = "admin"
) -> JobSpec:
    """Factory-reset one test device at a vantage point."""

    def run(ctx: JobContext) -> dict:
        record = server.vantage_point(vantage_point)
        output = record.controller.factory_reset(device_serial)
        ctx.log(output)
        return {"device": device_serial, "result": output}

    return JobSpec(
        name=f"maintenance-factory-reset-{device_serial}",
        owner=owner,
        run=run,
        description=f"Factory reset device {device_serial} at {vantage_point}",
        constraints=JobConstraints(vantage_point=vantage_point, device_serial=device_serial),
        log_retention_days=7.0,
    )
