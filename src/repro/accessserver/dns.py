"""The ``batterylab.dev`` DNS zone.

Joining members get a human-readable identifier that becomes an A record in
BatteryLab's zone (``node1.batterylab.dev``), hosted on Amazon Route53 in
the real deployment.  The model is a plain authoritative zone with add /
remove / resolve plus a change log, which is enough for the join procedure
and the tests that exercise it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


class DnsError(RuntimeError):
    """Raised for lookups of names that do not exist in the zone."""


@dataclass(frozen=True)
class DnsRecord:
    name: str
    address: str
    record_type: str = "A"
    ttl_s: int = 300


class DnsZone:
    """An authoritative zone (``batterylab.dev`` by default)."""

    def __init__(self, origin: str = "batterylab.dev") -> None:
        if not origin:
            raise ValueError("zone origin must be non-empty")
        self._origin = origin
        self._records: Dict[str, DnsRecord] = {}
        self._change_log: List[str] = []

    @property
    def origin(self) -> str:
        return self._origin

    def _qualify(self, name: str) -> str:
        if name.endswith(self._origin):
            return name
        return f"{name}.{self._origin}"

    def register(self, name: str, address: str, ttl_s: int = 300) -> DnsRecord:
        """Create or update an A record for ``name`` (relative names are qualified)."""
        fqdn = self._qualify(name)
        record = DnsRecord(name=fqdn, address=address, ttl_s=ttl_s)
        action = "UPSERT" if fqdn in self._records else "CREATE"
        self._records[fqdn] = record
        self._change_log.append(f"{action} {fqdn} -> {address}")
        return record

    def deregister(self, name: str) -> None:
        fqdn = self._qualify(name)
        if fqdn in self._records:
            del self._records[fqdn]
            self._change_log.append(f"DELETE {fqdn}")

    def resolve(self, name: str) -> str:
        fqdn = self._qualify(name)
        record = self._records.get(fqdn)
        if record is None:
            raise DnsError(f"{fqdn} does not resolve in zone {self._origin}")
        return record.address

    def contains(self, name: str) -> bool:
        return self._qualify(name) in self._records

    def records(self) -> List[DnsRecord]:
        return [self._records[name] for name in sorted(self._records)]

    def change_log(self) -> List[str]:
        return list(self._change_log)
