"""Access server substrate.

BatteryLab's access server (Section 3.1) manages the vantage points and
schedules experiments on them.  The paper builds it on Jenkins in AWS; this
package reproduces the behaviours the platform depends on rather than
Jenkins itself:

* :mod:`~repro.accessserver.auth` — users, roles and the role-based
  authorization matrix guarding job creation/edit/run;
* :mod:`~repro.accessserver.jobs` — job specifications, job state, logs and
  per-job workspaces with retention;
* :mod:`~repro.accessserver.scheduler` — the queue facade that dispatches
  jobs subject to experimenter constraints (target device, connectivity) and
  platform constraints (one job at a time per device, low controller CPU);
* :mod:`~repro.accessserver.dispatch` — the indexed batch dispatch engine
  behind the scheduler (free-slot indexes, reservation interval index,
  constraint-bucketed queue, ``dispatch_batch``);
* :mod:`~repro.accessserver.policies` — pluggable queue ordering policies
  (FIFO, priority, per-owner fair-share, earliest-deadline-first);
* :mod:`~repro.accessserver.persistence` — durable state: a write-ahead
  JSONL journal with fsync batching, periodic snapshots with log
  compaction, and crash recovery that replays the queue, reservations and
  credit ledger into a fresh server;
* :mod:`~repro.accessserver.dns` — the Route53-style ``batterylab.dev`` zone;
* :mod:`~repro.accessserver.certificates` — wildcard Let's Encrypt-style
  certificates and their renewal;
* :mod:`~repro.accessserver.maintenance` — the built-in management jobs
  (certificate deployment, power-monitor safety, factory reset);
* :mod:`~repro.accessserver.testers` — recruitment of human testers and
  shared mirroring sessions;
* :class:`~repro.accessserver.server.AccessServer` — the piece that ties it
  all together.
"""

from repro.accessserver.auth import (
    AuthenticationError,
    AuthorizationError,
    Permission,
    Role,
    User,
    UserRegistry,
)
from repro.accessserver.certificates import CertificateAuthority, WildcardCertificate
from repro.accessserver.dns import DnsRecord, DnsZone
from repro.accessserver.jobs import Job, JobContext, JobSpec, JobStatus
from repro.accessserver.credits import (
    CreditAccount,
    CreditError,
    CreditLedger,
    CreditPolicy,
    CreditTransaction,
)
from repro.accessserver.maintenance import (
    build_certificate_renewal_job,
    build_factory_reset_job,
    build_power_safety_job,
    build_workspace_cleanup_job,
)
from repro.accessserver.dispatch import (
    Assignment,
    DispatchEngine,
    SchedulingError,
)
from repro.accessserver.persistence import (
    FileBackend,
    InMemoryBackend,
    PersistenceError,
    PersistenceManager,
    RecoveryReport,
    StorageBackend,
    attach_persistence,
    get_payload,
    recover_into,
    register_payload,
    unregister_payload,
)
from repro.accessserver.policies import (
    CreditSharePolicy,
    DeadlinePolicy,
    FairSharePolicy,
    FifoPolicy,
    PriorityPolicy,
    SchedulingPolicy,
    create_policy,
)
from repro.accessserver.scheduler import JobScheduler, SessionReservation
from repro.accessserver.server import AccessServer, VantagePointRecord
from repro.accessserver.testers import Tester, TesterPool, TesterSession

__all__ = [
    "AuthenticationError",
    "AuthorizationError",
    "Permission",
    "Role",
    "User",
    "UserRegistry",
    "CertificateAuthority",
    "WildcardCertificate",
    "DnsRecord",
    "DnsZone",
    "Job",
    "JobContext",
    "JobSpec",
    "JobStatus",
    "CreditAccount",
    "CreditError",
    "CreditLedger",
    "CreditPolicy",
    "CreditTransaction",
    "build_certificate_renewal_job",
    "build_factory_reset_job",
    "build_power_safety_job",
    "build_workspace_cleanup_job",
    "Assignment",
    "DispatchEngine",
    "SchedulingError",
    "SchedulingPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "FairSharePolicy",
    "DeadlinePolicy",
    "CreditSharePolicy",
    "create_policy",
    "get_payload",
    "unregister_payload",
    "StorageBackend",
    "InMemoryBackend",
    "FileBackend",
    "PersistenceError",
    "PersistenceManager",
    "RecoveryReport",
    "attach_persistence",
    "recover_into",
    "register_payload",
    "JobScheduler",
    "SessionReservation",
    "AccessServer",
    "VantagePointRecord",
    "Tester",
    "TesterPool",
    "TesterSession",
]
