"""Parallel wave execution: run a dispatch wave's payloads concurrently.

``AccessServer.run_pending_jobs`` computes assignments in *waves* (one job
at a time per device holds within a wave), then historically executed each
wave's payloads one after another — wall-clock grew linearly with fleet
size even though the assignments are independent by construction.  This
module provides the worker side of the split execution pipeline:

* **admit** (server thread, assignment order): RUNNING check, execution-time
  eligibility re-check, ``mark_execution_started``, ``begin_execution``;
* **run** (worker threads, this module): ``job.spec.run(ctx)`` only — the
  device-bound payload, which for real hardware is dominated by waiting on
  the phone/power meter;
* **settle** (server thread, assignment order): status transitions, device
  release, power-trace storage, credit billing, journal appends and
  EventBus publishes.

Because every state mutation stays on the server thread in deterministic
assignment order, journals and event streams are byte-identical to serial
execution *provided the payloads themselves are independent* — i.e. they do
not advance the simulated clock or mutate shared simulation state.  That is
the documented contract of ``AccessServer.enable_parallel_waves`` (see
DESIGN.md "Async gateway & parallel waves"); payloads that sleep on wall
time, talk to real devices, or compute locally qualify, payloads that call
``ctx.advance``-style helpers do not — those run with the serial default.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

__all__ = ["AdmittedExecution", "WaveExecutor"]


@dataclass
class AdmittedExecution:
    """One admitted assignment travelling through the execution pipeline.

    Created by the admit phase on the server thread; ``result`` / ``error``
    are filled by exactly one worker during the run phase and read by the
    settle phase on the server thread afterwards (the wave barrier orders
    the accesses, so no locking is needed).
    """

    assignment: object  # repro.accessserver.dispatch.Assignment
    ctx: object  # repro.accessserver.jobs.JobContext
    record: object  # VantagePointRecord — for power-trace collection
    execution_started_at: float
    result: object = None
    error: Optional[BaseException] = None
    # Phase timings (wall seconds) captured where each phase ran; the settle
    # phase reads them on the server thread to feed histograms and record
    # lifecycle spans without touching telemetry from worker threads.
    admit_elapsed_s: float = 0.0
    run_elapsed_s: float = 0.0

    @property
    def job(self):
        return self.assignment.job

    def run_payload(self) -> None:
        """Execute the payload, capturing the outcome (worker thread)."""
        t0 = time.perf_counter()
        try:
            self.result = self.job.spec.run(self.ctx)
        except Exception as exc:
            self.error = exc
        finally:
            self.run_elapsed_s = time.perf_counter() - t0


class WaveExecutor:
    """Runs one wave's admitted payloads on a reusable worker pool.

    ``run_wave`` is a *barrier*: it returns only when every payload of the
    wave has finished, so the caller can settle outcomes in deterministic
    assignment order.  Single-item waves run inline — no pool hop, no
    behaviour change for the common trickle case.
    """

    def __init__(self, max_workers: int = 8) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="batterylab-wave",
            )
        return self._pool

    def run_wave(
        self,
        admitted: Sequence[AdmittedExecution],
        run_one: Optional[Callable[[AdmittedExecution], None]] = None,
    ) -> None:
        """Run every admitted payload; blocks until the whole wave is done."""
        run = run_one or AdmittedExecution.run_payload
        if not admitted:
            return
        if len(admitted) == 1:
            run(admitted[0])
            return
        pool = self._ensure_pool()
        futures = [pool.submit(run, item) for item in admitted]
        # Payload exceptions are captured on the item; anything a future
        # re-raises is an executor-infrastructure failure and propagates.
        for future in futures:
            future.result()

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
