"""Indexed, event-emitting batch dispatch engine.

The seed scheduler answered "what can run now?" with a linear scan over
every queued job × every device slot × every reservation, re-polled one job
at a time by the access server.  This module replaces that hot path with an
indexed pipeline sized for the ROADMAP's many-vantage-point deployments:

* :class:`DeviceSlotIndex` — per-vantage-point sorted free-slot indexes so a
  constrained job probes exactly the slots it may use, in the same
  deterministic ``(vantage_point, device_serial)`` order as the seed scan;
* :class:`ReservationIndex` — per-device interval index over
  :class:`SessionReservation` objects; the active reservation at ``now`` is
  found with one bisect instead of a scan over every reservation;
* :class:`ConstraintQueue` — FIFO job queue bucketed by the
  ``(vantage_point, device_serial)`` constraint pair, letting a dispatch
  tick skip a whole bucket once its target slots are exhausted;
* :class:`DispatchEngine` — ties the indexes to a pluggable
  :class:`~repro.accessserver.policies.SchedulingPolicy` and computes a
  maximal set of ``(job, slot)`` assignments per :meth:`DispatchEngine.dispatch_batch`
  tick, publishing structured ``dispatch.*`` records on an
  :class:`~repro.simulation.events.EventBus` as it goes.

With the FIFO policy a batch produces exactly the assignments the seed's
repeated ``next_dispatchable``/``assign`` loop would have made on the same
inputs: assignments only ever consume free slots, so a job that was not
placeable earlier in the pass cannot become placeable later within the same
tick, making the single pass equivalent to the seed's restart-from-head
rescan.  :class:`~repro.accessserver.scheduler.JobScheduler` remains the
public facade over this engine.
"""

from __future__ import annotations

import bisect
import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.accessserver.jobs import Job
from repro.accessserver.policies import DispatchStats, SchedulingPolicy, create_policy
from repro.simulation.events import EventBus


class SchedulingError(RuntimeError):
    """Raised for conflicting reservations or invalid dispatch operations."""


@dataclass
class SessionReservation:
    """A reserved time slot for interactive (remote-control) use of a device."""

    reservation_id: int
    username: str
    vantage_point: str
    device_serial: str
    start_s: float
    duration_s: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def overlaps(self, other: "SessionReservation") -> bool:
        if self.vantage_point != other.vantage_point or self.device_serial != other.device_serial:
            return False
        return self.start_s < other.end_s and other.start_s < self.end_s

    def active_at(self, now: float) -> bool:
        return self.start_s <= now < self.end_s


@dataclass
class DeviceSlot:
    """One test device as the dispatcher sees it: free or running one job."""

    vantage_point: str
    device_serial: str
    busy_job_id: Optional[int] = None

    @property
    def key(self) -> str:
        return f"{self.vantage_point}/{self.device_serial}"


@dataclass(frozen=True)
class Assignment:
    """One (job, slot) pairing produced by a dispatch tick."""

    job: Job
    vantage_point: str
    device_serial: str
    timestamp: float


class DeviceSlotIndex:
    """Free/busy device slots indexed for O(log) constrained lookups.

    Free serials are kept per vantage point both as a sorted list (ordered
    iteration identical to the seed's sorted candidate scan) and as a set
    (O(1) membership for serial-constrained jobs).
    """

    def __init__(self) -> None:
        self._slots: Dict[Tuple[str, str], DeviceSlot] = {}
        self._free_sorted: Dict[str, List[str]] = {}
        self._free_sets: Dict[str, Set[str]] = {}
        self._vantage_points: List[str] = []
        self._free_count = 0

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def free_count(self) -> int:
        return self._free_count

    def register(self, vantage_point: str, device_serial: str) -> DeviceSlot:
        key = (vantage_point, device_serial)
        existing = self._slots.get(key)
        if existing is not None:
            return existing
        slot = DeviceSlot(vantage_point=vantage_point, device_serial=device_serial)
        self._slots[key] = slot
        if vantage_point not in self._free_sets:
            self._free_sets[vantage_point] = set()
            self._free_sorted[vantage_point] = []
            bisect.insort(self._vantage_points, vantage_point)
        self._add_free(vantage_point, device_serial)
        return slot

    def slot(self, vantage_point: str, device_serial: str) -> Optional[DeviceSlot]:
        return self._slots.get((vantage_point, device_serial))

    def keys(self) -> List[str]:
        """All registered slots as ``"vantage_point/serial"`` strings, sorted."""
        return sorted(slot.key for slot in self._slots.values())

    def is_busy(self, vantage_point: str, device_serial: str) -> bool:
        slot = self._slots.get((vantage_point, device_serial))
        return slot is not None and slot.busy_job_id is not None

    def mark_busy(self, vantage_point: str, device_serial: str, job_id: int) -> None:
        slot = self._require(vantage_point, device_serial)
        if slot.busy_job_id is not None:
            raise SchedulingError(
                f"device {slot.key!r} is already running job {slot.busy_job_id}; "
                "BatteryLab allows one job at a time per device"
            )
        slot.busy_job_id = job_id
        self._remove_free(vantage_point, device_serial)

    def mark_free(self, vantage_point: str, device_serial: str) -> None:
        slot = self._require(vantage_point, device_serial)
        if slot.busy_job_id is None:
            return
        slot.busy_job_id = None
        self._add_free(vantage_point, device_serial)

    def iter_free(
        self,
        vantage_point: Optional[str] = None,
        device_serial: Optional[str] = None,
    ) -> Iterator[DeviceSlot]:
        """Yield the free slots matching the constraint pair in sorted order.

        Callers must not mutate the index while iterating; the dispatch loop
        stops iterating before it assigns the slot it settled on.
        """
        if vantage_point is not None:
            vantage_points: List[str] = (
                [vantage_point] if vantage_point in self._free_sets else []
            )
        else:
            vantage_points = self._vantage_points
        for name in vantage_points:
            if device_serial is not None:
                if device_serial in self._free_sets[name]:
                    yield self._slots[(name, device_serial)]
            else:
                for serial in self._free_sorted[name]:
                    yield self._slots[(name, serial)]

    def _require(self, vantage_point: str, device_serial: str) -> DeviceSlot:
        slot = self._slots.get((vantage_point, device_serial))
        if slot is None:
            raise SchedulingError(f"unknown device slot {vantage_point + '/' + device_serial!r}")
        return slot

    def _add_free(self, vantage_point: str, device_serial: str) -> None:
        if device_serial not in self._free_sets[vantage_point]:
            self._free_sets[vantage_point].add(device_serial)
            bisect.insort(self._free_sorted[vantage_point], device_serial)
            self._free_count += 1

    def _remove_free(self, vantage_point: str, device_serial: str) -> None:
        if device_serial in self._free_sets[vantage_point]:
            self._free_sets[vantage_point].discard(device_serial)
            ordered = self._free_sorted[vantage_point]
            ordered.pop(bisect.bisect_left(ordered, device_serial))
            self._free_count -= 1


class ReservationIndex:
    """Per-device interval index over non-overlapping session reservations.

    Because :meth:`add` rejects overlaps, at most one reservation per device
    can be active at any instant, so the active one is found by bisecting
    the sorted start times — O(log r) instead of the seed's O(r) scan.
    """

    def __init__(self) -> None:
        self._intervals: Dict[Tuple[str, str], List[SessionReservation]] = {}
        self._starts: Dict[Tuple[str, str], List[float]] = {}
        self._by_id: "OrderedDict[int, SessionReservation]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._by_id)

    def add(self, reservation: SessionReservation) -> None:
        # Zero/negative-length intervals would defeat the neighbour-only
        # overlap check below, so the index itself enforces positivity.
        if reservation.duration_s <= 0:
            raise SchedulingError("reservation duration must be positive")
        key = (reservation.vantage_point, reservation.device_serial)
        starts = self._starts.setdefault(key, [])
        intervals = self._intervals.setdefault(key, [])
        index = bisect.bisect_right(starts, reservation.start_s)
        # Non-overlapping sorted intervals: only the immediate neighbours
        # can conflict with the new one.
        for neighbour in (
            intervals[index - 1] if index > 0 else None,
            intervals[index] if index < len(intervals) else None,
        ):
            if neighbour is not None and reservation.overlaps(neighbour):
                raise SchedulingError(
                    f"reservation overlaps with existing reservation "
                    f"{neighbour.reservation_id} held by {neighbour.username!r}"
                )
        starts.insert(index, reservation.start_s)
        intervals.insert(index, reservation)
        self._by_id[reservation.reservation_id] = reservation

    def remove(self, reservation_id: int) -> bool:
        reservation = self._by_id.pop(reservation_id, None)
        if reservation is None:
            return False
        key = (reservation.vantage_point, reservation.device_serial)
        intervals = self._intervals[key]
        index = bisect.bisect_left(self._starts[key], reservation.start_s)
        while intervals[index].reservation_id != reservation_id:
            index += 1
        intervals.pop(index)
        self._starts[key].pop(index)
        return True

    def active(self, vantage_point: str, device_serial: str, now: float) -> Optional[SessionReservation]:
        """The reservation covering ``now`` on this device, if any."""
        starts = self._starts.get((vantage_point, device_serial))
        if not starts:
            return None
        index = bisect.bisect_right(starts, now) - 1
        if index < 0:
            return None
        reservation = self._intervals[(vantage_point, device_serial)][index]
        return reservation if reservation.end_s > now else None

    def blocked_for(self, vantage_point: str, device_serial: str, now: float, owner: str) -> bool:
        """True when someone other than ``owner`` holds the device right now."""
        reservation = self.active(vantage_point, device_serial, now)
        return reservation is not None and reservation.username != owner

    def next_blocking_start(
        self, vantage_point: str, device_serial: str, now: float, owner: str
    ) -> Optional[float]:
        """Start time of the first reservation after ``now`` not held by ``owner``.

        Used by reservation-aware admission: a job whose timeout would still
        be running when someone else's reservation begins should not be
        placed on this device.  Reservations held by ``owner`` never block
        their own jobs.
        """
        key = (vantage_point, device_serial)
        starts = self._starts.get(key)
        if not starts:
            return None
        intervals = self._intervals[key]
        for index in range(bisect.bisect_right(starts, now), len(starts)):
            if intervals[index].username != owner:
                return intervals[index].start_s
        return None

    def all(self) -> List[SessionReservation]:
        """Every reservation, in insertion order (the seed's listing order)."""
        return list(self._by_id.values())

    def active_at(self, now: float) -> List[SessionReservation]:
        return [r for r in self._by_id.values() if r.active_at(now)]

    def earliest_active_end(self, now: float) -> Optional[float]:
        """When the first currently-active reservation ends, if any is active.

        Event-driven dispatchers use this as the wake-up time for jobs that
        are blocked only by a reservation.
        """
        best: Optional[float] = None
        for reservation in self._by_id.values():
            if reservation.active_at(now) and (best is None or reservation.end_s < best):
                best = reservation.end_s
        return best

    def earliest_relevant_end(self, now: float) -> Optional[float]:
        """End of the first reservation (active *or* upcoming) still ahead of ``now``.

        Under reservation-aware admission a job can be deferred by a
        reservation that has not started yet; such a job cannot become
        placeable before that reservation ends, so event-driven dispatchers
        wake at reservation ends rather than only at active-reservation ends.
        """
        best: Optional[float] = None
        for reservation in self._by_id.values():
            if reservation.end_s > now and (best is None or reservation.end_s < best):
                best = reservation.end_s
        return best


# A job's dispatch constraints collapse to this pair for bucketing purposes;
# connectivity/CPU constraints are slot-independent or owner-specific and
# cannot make a whole bucket dead for a tick.
BucketKey = Tuple[Optional[str], Optional[str]]


class ConstraintQueue:
    """FIFO job queue bucketed by the ``(vantage_point, device_serial)`` constraint.

    The global FIFO order lives in one insertion-ordered dict; buckets group
    jobs that compete for the same slot subset, letting a dispatch tick write
    off every job of a bucket at once when the bucket's slots are exhausted
    (an owner-independent condition) and stop scanning entirely once every
    remaining bucket is dead.

    A job can re-enter the queue with its original position preserved
    (``push(job, preserve_position=True)``) after a lapsed wave assignment;
    each job's first-enqueue sequence number is retained for that purpose.
    """

    def __init__(self) -> None:
        self._jobs: "OrderedDict[int, Job]" = OrderedDict()
        self._buckets: Dict[BucketKey, "OrderedDict[int, Job]"] = {}
        self._sequence = itertools.count()
        self._seq_by_job: Dict[int, int] = {}
        self._out_of_order = False

    @staticmethod
    def bucket_key(job: Job) -> BucketKey:
        constraints = job.spec.constraints
        return (constraints.vantage_point, constraints.device_serial)

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job: Job) -> bool:
        return job.job_id in self._jobs

    def push(self, job: Job, preserve_position: bool = False) -> None:
        if job.job_id in self._jobs:
            return
        if preserve_position and job.job_id in self._seq_by_job:
            # Re-entering mid-queue: the dict append puts it at the tail, so
            # the next snapshot must re-sort by original sequence.
            self._out_of_order = True
        else:
            self._seq_by_job[job.job_id] = next(self._sequence)
        self._jobs[job.job_id] = job
        self._buckets.setdefault(self.bucket_key(job), OrderedDict())[job.job_id] = job

    def remove(self, job: Job) -> bool:
        # The sequence number is deliberately retained so a later
        # preserve_position push restores the job's place.
        if self._jobs.pop(job.job_id, None) is None:
            return False
        bucket = self._buckets.get(self.bucket_key(job))
        if bucket is not None:
            bucket.pop(job.job_id, None)
            if not bucket:
                del self._buckets[self.bucket_key(job)]
        return True

    def forget(self, job: Job) -> None:
        """Drop a departed job's retained sequence number.

        Called when a job reaches a terminal state so the sequence map stays
        bounded by the queue's churn, not by every job ever queued.  A job
        still in the queue keeps its entry (the ordering depends on it).
        """
        if job.job_id not in self._jobs:
            self._seq_by_job.pop(job.job_id, None)

    def sequence_of(self, job_id: int) -> Optional[int]:
        """First-enqueue sequence number of a queued (or running) job.

        Running jobs retain their number until they reach a terminal state,
        so snapshots can record where an in-flight job would re-enter the
        queue if it had to be replayed after a crash.
        """
        return self._seq_by_job.get(job_id)

    def jobs(self) -> List[Job]:
        """Queue snapshot in FIFO (first-enqueue) order."""
        if self._out_of_order:
            ordered = sorted(self._jobs.values(), key=lambda job: self._seq_by_job[job.job_id])
            self._jobs = OrderedDict((job.job_id, job) for job in ordered)
            self._out_of_order = False
        return list(self._jobs.values())

    def bucket_keys(self) -> List[BucketKey]:
        """Constraint buckets with at least one queued job."""
        return list(self._buckets)

    def bucket_sizes(self) -> Dict[BucketKey, int]:
        return {key: len(bucket) for key, bucket in self._buckets.items()}


class DispatchEngine:
    """Computes batched (job, slot) assignments under a scheduling policy.

    Parameters
    ----------
    policy:
        A :class:`~repro.accessserver.policies.SchedulingPolicy` instance or
        registered name (``"fifo"``, ``"priority"``, ``"fair-share"``).
    event_bus:
        Optional :class:`~repro.simulation.events.EventBus`; when present the
        engine publishes ``dispatch.assigned``, ``dispatch.released``,
        ``dispatch.cancelled`` and ``dispatch.batch`` records.
    reservation_admission:
        ``"ignore"`` (default, the seed behaviour) places a job on any slot
        whose *current* reservation state allows it; ``"defer"`` additionally
        skips slots whose next upcoming reservation (held by someone else)
        starts before the job's ``timeout_s`` could elapse, so a long job is
        never parked in front of an imminent interactive session.
    """

    ADMISSION_MODES = ("ignore", "defer")

    def __init__(
        self,
        policy: Union[str, SchedulingPolicy] = "fifo",
        event_bus: Optional[EventBus] = None,
        reservation_admission: str = "ignore",
    ) -> None:
        self.slots = DeviceSlotIndex()
        self.queue = ConstraintQueue()
        self.reservations = ReservationIndex()
        self._policy = create_policy(policy)
        self._event_bus = event_bus
        self._running_by_owner: Dict[str, int] = {}
        self._executing: Set[int] = set()
        self._batches = 0
        self._assignments = 0
        self._reservation_admission = "ignore"
        self.reservation_admission = reservation_admission
        self._credit_balance_provider: Optional[Callable[[], Dict[str, float]]] = None

    # -- configuration ---------------------------------------------------------------
    @property
    def reservation_admission(self) -> str:
        return self._reservation_admission

    @reservation_admission.setter
    def reservation_admission(self, mode: str) -> None:
        if mode not in self.ADMISSION_MODES:
            raise SchedulingError(
                f"unknown reservation admission mode {mode!r}; "
                f"available: {', '.join(self.ADMISSION_MODES)}"
            )
        self._reservation_admission = mode

    @property
    def policy(self) -> SchedulingPolicy:
        return self._policy

    def set_policy(self, policy: Union[str, SchedulingPolicy]) -> SchedulingPolicy:
        self._policy = create_policy(policy)
        return self._policy

    def set_credit_balance_provider(
        self, provider: Optional[Callable[[], Dict[str, float]]]
    ) -> None:
        """Feed per-owner credit balances into each tick's :class:`DispatchStats`.

        The access server wires this when the credit system comes on; the
        ``credit`` scheduling policy consumes the balances as fair-share
        weights.  ``None`` disconnects (stats revert to empty balances).
        """
        self._credit_balance_provider = provider

    @property
    def event_bus(self) -> Optional[EventBus]:
        return self._event_bus

    @property
    def batches_dispatched(self) -> int:
        return self._batches

    @property
    def assignments_made(self) -> int:
        return self._assignments

    def running_by_owner(self) -> Dict[str, int]:
        return dict(self._running_by_owner)

    # -- assignment lifecycle ---------------------------------------------------------
    def assign(self, job: Job, vantage_point: str, device_serial: str, now: float) -> None:
        """Bind ``job`` to a free slot and mark it running."""
        self.slots.mark_busy(vantage_point, device_serial, job.job_id)
        self.queue.remove(job)
        job.mark_running(now, vantage_point, device_serial)
        owner = job.spec.owner
        self._running_by_owner[owner] = self._running_by_owner.get(owner, 0) + 1
        self._assignments += 1
        self._emit(
            "dispatch.assigned",
            job_id=job.job_id,
            job=job.spec.name,
            owner=owner,
            vantage_point=vantage_point,
            device_serial=device_serial,
            policy=self._policy.name,
        )

    def release(self, job: Job, forget: bool = True) -> None:
        """Free the slot ``job`` runs on — O(1) via the job's own assignment.

        ``forget=False`` is used internally by :meth:`requeue`, which needs
        the job's queue sequence number to survive the release.
        """
        if forget:
            self.queue.forget(job)
        vantage_point = job.assigned_vantage_point
        device_serial = job.assigned_device
        if vantage_point is None or device_serial is None:
            return
        slot = self.slots.slot(vantage_point, device_serial)
        if slot is None or slot.busy_job_id != job.job_id:
            return
        self.slots.mark_free(vantage_point, device_serial)
        owner = job.spec.owner
        remaining = self._running_by_owner.get(owner, 0) - 1
        if remaining > 0:
            self._running_by_owner[owner] = remaining
        else:
            self._running_by_owner.pop(owner, None)
        self._emit(
            "dispatch.released",
            job_id=job.job_id,
            job=job.spec.name,
            owner=owner,
            vantage_point=vantage_point,
            device_serial=device_serial,
        )

    # -- dispatch decisions -----------------------------------------------------------
    def next_dispatchable(
        self,
        now: float,
        controller_cpu: Optional[Callable[[str], float]] = None,
    ) -> Optional[Tuple[Job, str, str]]:
        """First policy-ordered queued job that can run right now, if any."""
        cpu_cache: Dict[str, float] = {}
        for job in self._policy.order(self.queue.jobs(), self._stats(now)):
            if job.spec.execution != "push":
                continue
            slot, _ = self._find_slot(job, now, controller_cpu, cpu_cache)
            if slot is not None:
                return job, slot.vantage_point, slot.device_serial
        return None

    def dispatch_batch(
        self,
        now: float,
        controller_cpu: Optional[Callable[[str], float]] = None,
        max_assignments: Optional[int] = None,
    ) -> List[Assignment]:
        """Assign a maximal set of queued jobs to free slots in one tick.

        Jobs are tried in policy order; each assignment consumes its slot
        immediately, so one-job-per-device holds within the batch.  A bucket
        whose constrained slot subset has no free slot left is skipped for
        the remainder of the tick.  Returns the assignments made (the jobs
        are now RUNNING); with FIFO this set equals what the seed's repeated
        ``next_dispatchable`` + ``assign`` loop would have produced.
        """
        assignments: List[Assignment] = []
        cpu_cache: Dict[str, float] = {}
        dead_buckets: Set[BucketKey] = set()
        for job in self._policy.order(self.queue.jobs(), self._stats(now)):
            if max_assignments is not None and len(assignments) >= max_assignments:
                break
            if self.slots.free_count == 0:
                break
            if job.spec.execution != "push":
                # Agent-pull jobs wait in the queue (keeping their FIFO
                # position) until a daemon claims them; the push executor
                # must never place them.
                continue
            bucket = ConstraintQueue.bucket_key(job)
            if bucket in dead_buckets:
                continue
            slot, saw_free_slot = self._find_slot(job, now, controller_cpu, cpu_cache)
            if slot is None:
                if not saw_free_slot:
                    dead_buckets.add(bucket)
                    # Once every bucket still holding queued jobs is dead,
                    # nothing later in the policy order can dispatch either.
                    if all(key in dead_buckets for key in self.queue.bucket_keys()):
                        break
                continue
            self.assign(job, slot.vantage_point, slot.device_serial, now)
            assignments.append(
                Assignment(
                    job=job,
                    vantage_point=slot.vantage_point,
                    device_serial=slot.device_serial,
                    timestamp=now,
                )
            )
        self._batches += 1
        self._emit(
            "dispatch.batch",
            assigned=len(assignments),
            queued=len(self.queue),
            free_slots=self.slots.free_count,
            policy=self._policy.name,
        )
        return assignments

    def requeue(self, job: Job) -> None:
        """Undo an assignment whose constraints lapsed before execution.

        Frees the slot and puts the job back in the queue — at its original
        FIFO position — so a later tick re-evaluates it against the
        then-current reservations and controller load.
        """
        vantage_point = job.assigned_vantage_point
        device_serial = job.assigned_device
        self.release(job, forget=False)
        job.mark_requeued()
        self.queue.push(job, preserve_position=True)
        self._emit(
            "dispatch.requeued",
            job_id=job.job_id,
            job=job.spec.name,
            owner=job.spec.owner,
            vantage_point=vantage_point,
            device_serial=device_serial,
        )

    def eligible(
        self,
        job: Job,
        vantage_point: str,
        device_serial: str,
        now: float,
        controller_cpu: Optional[Callable[[str], float]] = None,
    ) -> bool:
        """Re-check a specific (job, slot) pairing against the current state.

        Used by executors that received an assignment earlier in a wave and
        need to confirm the reservation/CPU constraints still hold at the
        (possibly advanced) execution time.
        """
        if self.reservations.blocked_for(vantage_point, device_serial, now, job.spec.owner):
            return False
        if self._deferred_by_upcoming_reservation(job, vantage_point, device_serial, now):
            return False
        constraints = job.spec.constraints
        if constraints.require_low_controller_cpu and controller_cpu is not None:
            if controller_cpu(vantage_point) > constraints.max_controller_cpu_percent:
                return False
        return True

    def cancel_reservation(self, reservation_id: int) -> bool:
        """Remove a session reservation, announcing it on the event bus.

        The ``dispatch.reservation_cancelled`` record lets event-driven
        dispatchers retry jobs that were blocked by the reservation instead
        of sleeping until its original end time.
        """
        removed = self.reservations.remove(reservation_id)
        if removed:
            self._emit("dispatch.reservation_cancelled", reservation_id=reservation_id)
        return removed

    def begin_execution(self, job: Job) -> None:
        """Mark a job's payload as in flight on its device.

        While a job is executing, cancelling it must *not* free the slot —
        the payload is still physically using the device; the executor's own
        release (after the payload returns) frees it.
        """
        self._executing.add(job.job_id)

    def end_execution(self, job: Job) -> None:
        self._executing.discard(job.job_id)

    def cancel(self, job: Job) -> None:
        """Drop a job from the queue and free its slot if it was running.

        A job whose payload is currently executing keeps its device until the
        executor finishes and releases it — freeing mid-execution would let a
        second job onto a device that is still in use.
        """
        slot = (
            self.slots.slot(job.assigned_vantage_point, job.assigned_device)
            if job.assigned_vantage_point is not None and job.assigned_device is not None
            else None
        )
        was_running = slot is not None and slot.busy_job_id == job.job_id
        self.queue.remove(job)
        self.queue.forget(job)  # cancellation is terminal; drop the retained sequence
        if job.job_id not in self._executing:
            self.release(job)
        self._emit(
            "dispatch.cancelled",
            job_id=job.job_id,
            job=job.spec.name,
            owner=job.spec.owner,
            was_running=was_running,
        )

    # -- internals --------------------------------------------------------------------
    def _stats(self, now: float) -> DispatchStats:
        balances: Dict[str, float] = {}
        if self._credit_balance_provider is not None:
            balances = dict(self._credit_balance_provider())
        return DispatchStats(
            now=now,
            running_by_owner=dict(self._running_by_owner),
            credit_balance_by_owner=balances,
        )

    def _find_slot(
        self,
        job: Job,
        now: float,
        controller_cpu: Optional[Callable[[str], float]],
        cpu_cache: Dict[str, float],
    ) -> Tuple[Optional[DeviceSlot], bool]:
        """First acceptable free slot for ``job`` plus whether any free slot matched.

        The second element distinguishes "this job's constraint bucket has no
        free slot at all" (owner-independent — the bucket is dead for this
        tick) from "slots exist but reservations/CPU filtered them for this
        particular job".
        """
        constraints = job.spec.constraints
        saw_free_slot = False
        for slot in self.slots.iter_free(constraints.vantage_point, constraints.device_serial):
            saw_free_slot = True
            if self.reservations.blocked_for(
                slot.vantage_point, slot.device_serial, now, job.spec.owner
            ):
                continue
            if self._deferred_by_upcoming_reservation(
                job, slot.vantage_point, slot.device_serial, now
            ):
                continue
            if constraints.require_low_controller_cpu and controller_cpu is not None:
                cpu = cpu_cache.get(slot.vantage_point)
                if cpu is None:
                    cpu = controller_cpu(slot.vantage_point)
                    cpu_cache[slot.vantage_point] = cpu
                if cpu > constraints.max_controller_cpu_percent:
                    continue
            return slot, True
        return None, saw_free_slot

    def _deferred_by_upcoming_reservation(
        self, job: Job, vantage_point: str, device_serial: str, now: float
    ) -> bool:
        """In ``"defer"`` mode, true when the job's timeout collides with a
        reservation that starts later but before the timeout could elapse."""
        if self._reservation_admission != "defer":
            return False
        upcoming = self.reservations.next_blocking_start(
            vantage_point, device_serial, now, job.spec.owner
        )
        return upcoming is not None and upcoming < now + job.spec.timeout_s

    def _emit(self, topic: str, **payload: object) -> None:
        if self._event_bus is not None:
            self._event_bus.publish(topic, **payload)
