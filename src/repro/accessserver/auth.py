"""Users, roles and the authorization matrix.

Section 3.1: experimenters must authenticate and be authorized before they
can reach the access server's web console (HTTPS only); only authorized
experimenters may create, edit or run jobs; and every pipeline change needs
an administrator's approval, enforced through "a role-based authorization
matrix".  This module implements that matrix.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional


class AuthenticationError(RuntimeError):
    """Raised when credentials are missing or wrong."""


class AuthorizationError(RuntimeError):
    """Raised when an authenticated user lacks a required permission."""


class Role(str, enum.Enum):
    ADMIN = "admin"
    EXPERIMENTER = "experimenter"
    TESTER = "tester"


class Permission(str, enum.Enum):
    CREATE_JOB = "create_job"
    EDIT_JOB = "edit_job"
    RUN_JOB = "run_job"
    APPROVE_PIPELINE = "approve_pipeline"
    MANAGE_VANTAGE_POINTS = "manage_vantage_points"
    VIEW_RESULTS = "view_results"
    REMOTE_CONTROL = "remote_control"


#: The role-based authorization matrix.  Testers only ever get remote control
#: of a device mirror shared with them; experimenters run experiments; admins
#: additionally approve pipeline changes and manage vantage points.
ROLE_PERMISSIONS: Dict[Role, FrozenSet[Permission]] = {
    Role.ADMIN: frozenset(Permission),
    Role.EXPERIMENTER: frozenset(
        {
            Permission.CREATE_JOB,
            Permission.EDIT_JOB,
            Permission.RUN_JOB,
            Permission.VIEW_RESULTS,
            Permission.REMOTE_CONTROL,
        }
    ),
    Role.TESTER: frozenset({Permission.REMOTE_CONTROL}),
}


def _hash_token(token: str) -> str:
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


@dataclass
class User:
    """One account on the access server."""

    username: str
    role: Role
    token_hash: str
    email: str = ""
    enabled: bool = True
    extra_permissions: FrozenSet[Permission] = field(default_factory=frozenset)

    def permissions(self) -> FrozenSet[Permission]:
        return ROLE_PERMISSIONS[self.role] | self.extra_permissions

    def has_permission(self, permission: Permission) -> bool:
        return permission in self.permissions()


class UserRegistry:
    """Account store plus authentication/authorization entry points."""

    def __init__(self, https_only: bool = True) -> None:
        self._users: Dict[str, User] = {}
        self._https_only = bool(https_only)

    @property
    def https_only(self) -> bool:
        """The web console is only reachable over HTTPS (Section 3.1)."""
        return self._https_only

    def add_user(
        self,
        username: str,
        role: Role,
        token: str,
        email: str = "",
        extra_permissions: Optional[FrozenSet[Permission]] = None,
    ) -> User:
        if not username:
            raise ValueError("username must be non-empty")
        if username in self._users:
            raise ValueError(f"user {username!r} already exists")
        if not token:
            raise ValueError("token must be non-empty")
        user = User(
            username=username,
            role=Role(role),
            token_hash=_hash_token(token),
            email=email,
            extra_permissions=extra_permissions or frozenset(),
        )
        self._users[username] = user
        return user

    def remove_user(self, username: str) -> None:
        self._users.pop(username, None)

    def disable_user(self, username: str) -> None:
        self.get(username).enabled = False

    def get(self, username: str) -> User:
        try:
            return self._users[username]
        except KeyError:
            raise AuthenticationError(f"unknown user {username!r}") from None

    def usernames(self) -> List[str]:
        return sorted(self._users)

    def users_with_role(self, role: Role) -> List[User]:
        return [user for user in self._users.values() if user.role is role]

    # -- authn / authz -------------------------------------------------------------
    def authenticate(self, username: str, token: str, over_https: bool = True) -> User:
        """Validate credentials; HTTP access is rejected when HTTPS-only is set."""
        if self._https_only and not over_https:
            raise AuthenticationError("the web console is only available over HTTPS")
        user = self.get(username)
        if not user.enabled:
            raise AuthenticationError(f"user {username!r} is disabled")
        if user.token_hash != _hash_token(token):
            raise AuthenticationError("invalid credentials")
        return user

    def authorize(self, user: User, permission: Permission) -> None:
        """Raise :class:`AuthorizationError` unless ``user`` holds ``permission``."""
        if not user.enabled:
            raise AuthorizationError(f"user {user.username!r} is disabled")
        if not user.has_permission(permission):
            raise AuthorizationError(
                f"user {user.username!r} (role {user.role.value}) lacks permission "
                f"{Permission(permission).value!r}"
            )
