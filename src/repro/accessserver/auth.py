"""Users, roles, the authorization matrix, and bearer token sessions.

Section 3.1: experimenters must authenticate and be authorized before they
can reach the access server's web console (HTTPS only); only authorized
experimenters may create, edit or run jobs; and every pipeline change needs
an administrator's approval, enforced through "a role-based authorization
matrix".  This module implements that matrix.

Platform API v2 adds :class:`SessionManager`: instead of resending the
username+token pair with every request, a client logs in once
(``auth.login``) and receives a short-lived bearer session token; the
manager resolves that token back to a :class:`User` on every subsequent
request and rejects expired or revoked sessions with
:class:`SessionExpiredError`.  Only the SHA-256 hash of a session token is
retained server-side, mirroring how account tokens are stored.
"""

from __future__ import annotations

import enum
import hashlib
import secrets
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional


class AuthenticationError(RuntimeError):
    """Raised when credentials are missing or wrong."""


class AuthorizationError(RuntimeError):
    """Raised when an authenticated user lacks a required permission."""


class SessionExpiredError(AuthenticationError):
    """Raised when a bearer session token is unknown, expired or revoked."""


class Role(str, enum.Enum):
    ADMIN = "admin"
    EXPERIMENTER = "experimenter"
    TESTER = "tester"


class Permission(str, enum.Enum):
    CREATE_JOB = "create_job"
    EDIT_JOB = "edit_job"
    RUN_JOB = "run_job"
    APPROVE_PIPELINE = "approve_pipeline"
    MANAGE_VANTAGE_POINTS = "manage_vantage_points"
    VIEW_RESULTS = "view_results"
    REMOTE_CONTROL = "remote_control"
    MANAGE_USERS = "manage_users"
    MANAGE_CREDITS = "manage_credits"


#: The role-based authorization matrix.  Testers only ever get remote control
#: of a device mirror shared with them; experimenters run experiments; admins
#: additionally approve pipeline changes and manage vantage points.
ROLE_PERMISSIONS: Dict[Role, FrozenSet[Permission]] = {
    Role.ADMIN: frozenset(Permission),
    Role.EXPERIMENTER: frozenset(
        {
            Permission.CREATE_JOB,
            Permission.EDIT_JOB,
            Permission.RUN_JOB,
            Permission.VIEW_RESULTS,
            Permission.REMOTE_CONTROL,
        }
    ),
    Role.TESTER: frozenset({Permission.REMOTE_CONTROL}),
}


def _hash_token(token: str) -> str:
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


@dataclass
class User:
    """One account on the access server."""

    username: str
    role: Role
    token_hash: str
    email: str = ""
    enabled: bool = True
    extra_permissions: FrozenSet[Permission] = field(default_factory=frozenset)

    def permissions(self) -> FrozenSet[Permission]:
        return ROLE_PERMISSIONS[self.role] | self.extra_permissions

    def has_permission(self, permission: Permission) -> bool:
        return permission in self.permissions()


class UserRegistry:
    """Account store plus authentication/authorization entry points."""

    def __init__(self, https_only: bool = True) -> None:
        self._users: Dict[str, User] = {}
        self._https_only = bool(https_only)

    @property
    def https_only(self) -> bool:
        """The web console is only reachable over HTTPS (Section 3.1)."""
        return self._https_only

    def add_user(
        self,
        username: str,
        role: Role,
        token: str,
        email: str = "",
        extra_permissions: Optional[FrozenSet[Permission]] = None,
    ) -> User:
        if not username:
            raise ValueError("username must be non-empty")
        if username in self._users:
            raise ValueError(f"user {username!r} already exists")
        if not token:
            raise ValueError("token must be non-empty")
        user = User(
            username=username,
            role=Role(role),
            token_hash=_hash_token(token),
            email=email,
            extra_permissions=extra_permissions or frozenset(),
        )
        self._users[username] = user
        return user

    def restore_user(
        self,
        username: str,
        role: Role,
        token_hash: str,
        email: str = "",
        enabled: bool = True,
    ) -> User:
        """Recreate an account exactly as journaled (hash, not plaintext token).

        Used by crash recovery: the journal is authoritative, so an account
        the host happened to bootstrap before recovery ran is overwritten
        with the journaled state.
        """
        user = User(
            username=username,
            role=Role(role),
            token_hash=token_hash,
            email=email,
            enabled=enabled,
        )
        self._users[username] = user
        return user

    def remove_user(self, username: str) -> None:
        self._users.pop(username, None)

    def disable_user(self, username: str) -> None:
        self.get(username).enabled = False

    def get(self, username: str) -> User:
        try:
            return self._users[username]
        except KeyError:
            raise AuthenticationError(f"unknown user {username!r}") from None

    def usernames(self) -> List[str]:
        return sorted(self._users)

    def users_with_role(self, role: Role) -> List[User]:
        return [user for user in self._users.values() if user.role is role]

    # -- authn / authz -------------------------------------------------------------
    def authenticate(self, username: str, token: str, over_https: bool = True) -> User:
        """Validate credentials; HTTP access is rejected when HTTPS-only is set."""
        if self._https_only and not over_https:
            raise AuthenticationError("the web console is only available over HTTPS")
        user = self.get(username)
        if not user.enabled:
            raise AuthenticationError(f"user {username!r} is disabled")
        if user.token_hash != _hash_token(token):
            raise AuthenticationError("invalid credentials")
        return user

    def authorize(self, user: User, permission: Permission) -> None:
        """Raise :class:`AuthorizationError` unless ``user`` holds ``permission``."""
        if not user.enabled:
            raise AuthorizationError(f"user {user.username!r} is disabled")
        if not user.has_permission(permission):
            raise AuthorizationError(
                f"user {user.username!r} (role {user.role.value}) lacks permission "
                f"{Permission(permission).value!r}"
            )


# ---------------------------------------------------------------------------
# Bearer token sessions (Platform API v2)
# ---------------------------------------------------------------------------


@dataclass
class TokenSession:
    """One issued bearer session; only the token's hash is retained."""

    username: str
    token_hash: str
    issued_at: float
    expires_at: float
    revoked: bool = False

    def active(self, now: float) -> bool:
        return not self.revoked and now < self.expires_at


class SessionManager:
    """Issues and resolves short-lived bearer session tokens.

    ``auth.login`` exchanges the long-lived account credentials for a
    session token with a bounded TTL; every later request presents only the
    session token, so the account token never travels more than once per
    session.  Sessions are in-memory by design — a restart invalidates them
    and clients simply log in again (they still hold their account
    credentials).

    Parameters
    ----------
    registry:
        The account store sessions resolve against; disabling or removing a
        user invalidates their sessions immediately.
    default_ttl_s:
        Session lifetime when ``login`` is not given an explicit one.
    max_ttl_s:
        Upper bound a client may request; longer requests are clamped.
    token_factory:
        Source of fresh token strings — injectable for deterministic tests;
        defaults to :func:`secrets.token_hex`.
    """

    def __init__(
        self,
        registry: UserRegistry,
        default_ttl_s: float = 3600.0,
        max_ttl_s: float = 24 * 3600.0,
        token_factory: Optional[Callable[[], str]] = None,
    ) -> None:
        if default_ttl_s <= 0 or max_ttl_s <= 0:
            raise ValueError("session TTLs must be positive")
        self._registry = registry
        self._default_ttl_s = float(default_ttl_s)
        self._max_ttl_s = float(max(max_ttl_s, default_ttl_s))
        self._token_factory = token_factory or (lambda: secrets.token_hex(16))
        self._sessions: Dict[str, TokenSession] = {}

    @property
    def default_ttl_s(self) -> float:
        return self._default_ttl_s

    def login(
        self,
        username: str,
        token: str,
        now: float,
        ttl_s: Optional[float] = None,
        over_https: bool = True,
    ) -> "tuple[str, TokenSession]":
        """Authenticate account credentials and mint a session.

        Returns ``(plaintext_token, session)``; the plaintext token is shown
        exactly once — the manager keeps only its hash.
        """
        # Opportunistic cleanup: every login sweeps sessions that can never
        # resolve again, so the store is bounded by *active* sessions even
        # on servers whose clients re-login at each TTL expiry forever.
        self.purge_expired(now)
        user = self._registry.authenticate(username, token, over_https=over_https)
        if ttl_s is None:
            ttl_s = self._default_ttl_s
        if ttl_s <= 0:
            raise ValueError("session ttl_s must be positive")
        ttl_s = min(float(ttl_s), self._max_ttl_s)
        session_token = self._token_factory()
        session = TokenSession(
            username=user.username,
            token_hash=_hash_token(session_token),
            issued_at=now,
            expires_at=now + ttl_s,
        )
        self._sessions[session.token_hash] = session
        return session_token, session

    def resolve(self, session_token: str, now: float, over_https: bool = True) -> User:
        """The user behind an active session token; typed failures otherwise."""
        if self._registry.https_only and not over_https:
            raise AuthenticationError("the web console is only available over HTTPS")
        session = self._sessions.get(_hash_token(session_token))
        if session is None:
            raise SessionExpiredError("unknown session token; log in again")
        if not session.active(now):
            raise SessionExpiredError("session expired or revoked; log in again")
        user = self._registry.get(session.username)
        if not user.enabled:
            raise AuthenticationError(f"user {session.username!r} is disabled")
        return user

    def revoke(self, session_token: str) -> bool:
        """Revoke one session (``auth.logout``); true when it existed."""
        session = self._sessions.get(_hash_token(session_token))
        if session is None or session.revoked:
            return False
        session.revoked = True
        return True

    def revoke_user(self, username: str) -> int:
        """Revoke every session of one user (offboarding); returns the count."""
        revoked = 0
        for session in self._sessions.values():
            if session.username == username and not session.revoked:
                session.revoked = True
                revoked += 1
        return revoked

    def purge_expired(self, now: float) -> int:
        """Drop sessions that can never resolve again; returns the count."""
        stale = [
            key for key, session in self._sessions.items() if not session.active(now)
        ]
        for key in stale:
            del self._sessions[key]
        return len(stale)

    def active_count(self, now: float) -> int:
        return sum(1 for session in self._sessions.values() if session.active(now))
