"""Durable access-server state: write-ahead journal, snapshots, recovery.

The access server is the single stateful chokepoint of the platform — every
job, reservation and credit balance lives in it — yet until this module the
whole state was in-memory and a restart lost the queue.  Testflinger solves
the same problem by keeping its job queue in MongoDB; this subsystem gets
the same durability with zero external dependencies:

* **Write-ahead journal** — every state mutation that flows through the
  access server (job submission/approval/assignment/requeue/completion/
  cancellation, reservation create/cancel, credit transactions, vantage
  point registration, policy changes) is appended to a JSONL journal
  *before* the caller returns, with batched ``fsync`` so durability does not
  serialise the dispatch hot path on disk latency.
* **Snapshots + log compaction** — every ``snapshot_every`` journal records
  the :class:`PersistenceManager` writes a full state snapshot (atomic
  tmp-file + rename) and truncates the journal, bounding recovery cost by
  the snapshot interval instead of the server's lifetime.
* **Crash recovery** — :func:`recover_into` replays snapshot + journal into
  a freshly built :class:`~repro.accessserver.server.AccessServer`,
  reconstructing the dispatch engine's constraint-bucketed queue in its
  exact pre-crash FIFO order, the reservation interval index, the credit
  ledger (balances *and* transaction history) and the pending-approval
  list.  Jobs that were assigned but still in flight when the crash hit are
  re-queued at their original position, so the post-recovery assignment
  sequence is identical to what an uninterrupted run would have produced.
* **Pluggable storage** — a :class:`StorageBackend` ABC with
  :class:`InMemoryBackend` (tests, benchmarks) and :class:`FileBackend`
  (the default behind ``--state-dir``).

Job payloads are Python callables and cannot be journaled; payloads meant
to survive a restart are registered by name via :func:`register_payload`
and referenced by that name in the journal.  A recovered job whose payload
was never re-registered fails at execution time with a clear error instead
of silently doing nothing.

The manager taps the existing ``dispatch.*`` records on the server's
:class:`~repro.simulation.events.EventBus` for everything the dispatch
engine already announces (assignments, requeues, cancellations, reservation
cancellations) and uses explicit hooks in ``server.py`` / ``credits.py``
for the mutations that never reach the bus (submissions, approvals,
completions, reservation creation, credit movements).  State mutated behind
the server's back — e.g. driving ``scheduler.submit`` directly — is
invisible to the journal by design.
"""

from __future__ import annotations

import abc
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

from repro.accessserver.credits import CreditTransaction, TransactionKind
from repro.accessserver.dispatch import SessionReservation
from repro.accessserver.jobs import (
    Job,
    JobConstraints,
    JobSpec,
    JobStatus,
    claim_job_id,
)
from repro.simulation.events import BusEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.accessserver.server import AccessServer

FORMAT_VERSION = 1

#: ``dispatch.*`` bus topics the persistence manager journals, mapped to
#: the journal record kind each becomes.  Single-sourced here because the
#: analytics live tap applies the *same* translation — a topic added to
#: one side but not the other would silently diverge live folds from
#: journal replays.
DISPATCH_TOPIC_KINDS: Dict[str, str] = {
    "dispatch.assigned": "job.assigned",
    "dispatch.requeued": "job.requeued",
    "dispatch.cancelled": "job.cancelled",
    "dispatch.reservation_cancelled": "reservation.cancelled",
}


class PersistenceError(RuntimeError):
    """Raised for journal/snapshot corruption or misuse of the subsystem."""


# ---------------------------------------------------------------------------
# Payload registry
# ---------------------------------------------------------------------------

_PAYLOADS: Dict[str, Callable] = {}
_PAYLOAD_NAMES: Dict[Callable, str] = {}


def register_payload(name: str, payload: Optional[Callable] = None):
    """Register a job payload under a durable name.

    Usable as a decorator (``@register_payload("measure-idle")``) or called
    directly (``register_payload("measure-idle", fn)``).  Jobs whose
    ``spec.run`` is a registered payload journal the name instead of the
    callable and are fully executable after recovery.  Re-registering a name
    replaces the previous payload (hosts re-register their catalogue on
    every boot).
    """

    def _register(fn: Callable) -> Callable:
        previous = _PAYLOADS.get(name)
        if previous is not None:
            _PAYLOAD_NAMES.pop(previous, None)
        _PAYLOADS[name] = fn
        _PAYLOAD_NAMES[fn] = name
        return fn

    if payload is not None:
        return _register(payload)
    return _register


def payload_name(payload: Callable) -> Optional[str]:
    """The registered name for ``payload``, or ``None`` if unregistered."""
    try:
        return _PAYLOAD_NAMES.get(payload)
    except TypeError:  # unhashable callable
        return None


def unregister_payload(name: str) -> None:
    """Drop a payload from the catalogue (idempotent).

    For short-lived payloads registered programmatically (the client SDK's
    callable convenience): the registry is process-global, so a payload
    closure left registered pins everything it captures for the process
    lifetime.
    """
    payload = _PAYLOADS.pop(name, None)
    if payload is not None:
        _PAYLOAD_NAMES.pop(payload, None)


def get_payload(name: str) -> Optional[Callable]:
    """Look up a registered payload by name; ``None`` when unregistered.

    The strict sibling of :func:`resolve_payload`: API submissions must
    reject unknown payload names up front instead of accepting a job that
    can only ever fail at execution time.
    """
    return _PAYLOADS.get(name)


def resolve_payload(name: Optional[str]) -> Callable:
    """Look up a registered payload; unknown names get a failing stand-in."""
    if name is not None and name in _PAYLOADS:
        return _PAYLOADS[name]

    def _unrecoverable(ctx):
        raise PersistenceError(
            f"job payload {name!r} was not registered with register_payload() "
            "before recovery; re-register the payload catalogue at boot"
        )

    return _unrecoverable


@register_payload("noop")
def noop_payload(ctx) -> None:
    """Built-in do-nothing payload, handy for queue/benchmark workloads."""
    return None


# ---------------------------------------------------------------------------
# Serialization helpers
# ---------------------------------------------------------------------------


def _json_safe(value: object) -> object:
    """Pass JSON-serialisable values through; degrade the rest to a repr."""
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return {"__repr__": repr(value)}


def serialize_spec(spec: JobSpec) -> Dict[str, object]:
    constraints = spec.constraints
    serialized_constraints: Dict[str, object] = {
        "vantage_point": constraints.vantage_point,
        "device_serial": constraints.device_serial,
        "connectivity": constraints.connectivity,
        "require_low_controller_cpu": constraints.require_low_controller_cpu,
        "max_controller_cpu_percent": constraints.max_controller_cpu_percent,
    }
    # Agent-pull fields are elided at their defaults so every journal and
    # snapshot written before they existed replays byte-identically.
    if constraints.device_count != 1:
        serialized_constraints["device_count"] = constraints.device_count
    if constraints.connector is not None:
        serialized_constraints["connector"] = constraints.connector
    serialized: Dict[str, object] = {
        "name": spec.name,
        "owner": spec.owner,
        "payload": payload_name(spec.run),
        "description": spec.description,
        "constraints": serialized_constraints,
        "priority": spec.priority,
        "timeout_s": spec.timeout_s,
        "is_pipeline_change": spec.is_pipeline_change,
        "log_retention_days": spec.log_retention_days,
    }
    if spec.execution != "push":
        serialized["execution"] = spec.execution
    return serialized


def deserialize_spec(data: Dict[str, object]) -> JobSpec:
    return JobSpec(
        name=data["name"],
        owner=data["owner"],
        run=resolve_payload(data.get("payload")),
        description=data.get("description", ""),
        constraints=JobConstraints(**data.get("constraints", {})),
        priority=data.get("priority", 0.0),
        timeout_s=data.get("timeout_s", 3600.0),
        is_pipeline_change=data.get("is_pipeline_change", False),
        log_retention_days=data.get("log_retention_days", 7.0),
        execution=data.get("execution", "push"),
    )


def serialize_job(job: Job, queue_seq: Optional[int] = None) -> Dict[str, object]:
    return {
        "job_id": job.job_id,
        "spec": serialize_spec(job.spec),
        "status": job.status.value,
        "submitted_at": job.submitted_at,
        "started_at": job.started_at,
        "finished_at": job.finished_at,
        "assigned_vantage_point": job.assigned_vantage_point,
        "assigned_device": job.assigned_device,
        "result": _json_safe(job.result),
        "error": job.error,
        "log_lines": list(job.log_lines),
        "queue_seq": queue_seq,
    }


def materialize_job(data: Dict[str, object]) -> Tuple[Job, bool]:
    """Rebuild a :class:`Job` from its journaled form.

    Returns ``(job, was_in_flight)``: a job that was RUNNING when the state
    was captured comes back QUEUED (its execution died with the old
    process) with its assignment cleared, flagged so recovery can report it.
    """
    status = JobStatus(data["status"])
    was_in_flight = status is JobStatus.RUNNING
    job = Job(
        spec=deserialize_spec(data["spec"]),
        job_id=data["job_id"],
        status=JobStatus.QUEUED if was_in_flight else status,
        submitted_at=data.get("submitted_at", 0.0),
        started_at=None if was_in_flight else data.get("started_at"),
        finished_at=data.get("finished_at"),
        assigned_vantage_point=None if was_in_flight else data.get("assigned_vantage_point"),
        assigned_device=None if was_in_flight else data.get("assigned_device"),
        result=data.get("result"),
        error=data.get("error"),
        log_lines=list(data.get("log_lines", ())),
    )
    job.workspace.created_at = job.submitted_at
    job.workspace.retention_days = job.spec.log_retention_days
    claim_job_id(job.job_id)
    return job, was_in_flight


def serialize_user(user) -> Dict[str, object]:
    """Journal form of one account — the token *hash*, never the plaintext."""
    return {
        "username": user.username,
        "role": user.role.value,
        "token_hash": user.token_hash,
        "email": user.email,
        "enabled": user.enabled,
    }


def _serialize_reservation(reservation: SessionReservation) -> Dict[str, object]:
    return {
        "reservation_id": reservation.reservation_id,
        "username": reservation.username,
        "vantage_point": reservation.vantage_point,
        "device_serial": reservation.device_serial,
        "start_s": reservation.start_s,
        "duration_s": reservation.duration_s,
    }


# ---------------------------------------------------------------------------
# Storage backends
# ---------------------------------------------------------------------------


class StorageBackend(abc.ABC):
    """Where the journal and snapshots physically live.

    Implementations must make :meth:`append` durable-in-order (an append is
    never visible after a later one is lost) and :meth:`write_snapshot`
    atomic (a crash mid-snapshot leaves the previous snapshot intact).
    """

    @abc.abstractmethod
    def append(self, record: Dict[str, object]) -> None:
        """Append one journal record."""

    @abc.abstractmethod
    def sync(self) -> None:
        """Force any batched appends to stable storage."""

    @abc.abstractmethod
    def read_journal(self) -> List[Dict[str, object]]:
        """All journal records since the last reset, in append order."""

    @abc.abstractmethod
    def reset_journal(self) -> None:
        """Truncate the journal (called right after a snapshot commits)."""

    @abc.abstractmethod
    def write_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Atomically replace the snapshot."""

    @abc.abstractmethod
    def read_snapshot(self) -> Optional[Dict[str, object]]:
        """The latest snapshot, or ``None`` when none was ever written."""

    def has_state(self) -> bool:
        """Whether recovery has anything to replay."""
        return self.read_snapshot() is not None or bool(self.read_journal())

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any held resources (file handles)."""


class InMemoryBackend(StorageBackend):
    """Journal and snapshot in process memory — for tests and benchmarks.

    Records are round-tripped through ``json`` so anything that would not
    survive the :class:`FileBackend` fails here too.
    """

    def __init__(self) -> None:
        self.journal: List[str] = []
        self.snapshot: Optional[str] = None
        self.appended = 0
        self.syncs = 0

    def append(self, record: Dict[str, object]) -> None:
        self.journal.append(json.dumps(record, separators=(",", ":")))
        self.appended += 1

    def sync(self) -> None:
        self.syncs += 1

    def read_journal(self) -> List[Dict[str, object]]:
        return [json.loads(line) for line in self.journal]

    def reset_journal(self) -> None:
        self.journal.clear()

    def write_snapshot(self, snapshot: Dict[str, object]) -> None:
        self.snapshot = json.dumps(snapshot, separators=(",", ":"))

    def read_snapshot(self) -> Optional[Dict[str, object]]:
        return None if self.snapshot is None else json.loads(self.snapshot)


class FileBackend(StorageBackend):
    """JSONL journal + JSON snapshot under one state directory.

    Parameters
    ----------
    state_dir:
        Directory holding ``journal.jsonl`` and ``snapshot.json``; created
        on demand.
    fsync_every:
        ``fsync`` the journal after this many appends (1 = synchronous
        durability for every record; larger values batch the syncs, trading
        the tail of the journal on power loss for throughput).  Appends are
        always *flushed* to the OS, so an application crash alone loses
        nothing.
    """

    JOURNAL_NAME = "journal.jsonl"
    SNAPSHOT_NAME = "snapshot.json"

    def __init__(self, state_dir: Union[str, Path], fsync_every: int = 32) -> None:
        if fsync_every < 1:
            raise ValueError("fsync_every must be at least 1")
        self._dir = Path(state_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._journal_path = self._dir / self.JOURNAL_NAME
        self._snapshot_path = self._dir / self.SNAPSHOT_NAME
        self._fsync_every = fsync_every
        self._handle = None
        self._pending = 0
        self.appended = 0
        self.fsyncs = 0
        self.torn_records_dropped = 0

    @property
    def state_dir(self) -> Path:
        return self._dir

    @property
    def journal_path(self) -> Path:
        return self._journal_path

    @property
    def snapshot_path(self) -> Path:
        return self._snapshot_path

    def _journal_handle(self):
        if self._handle is None:
            self._handle = open(self._journal_path, "a", encoding="utf-8")
        return self._handle

    def append(self, record: Dict[str, object]) -> None:
        handle = self._journal_handle()
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()
        self.appended += 1
        self._pending += 1
        if self._pending >= self._fsync_every:
            self.sync()

    def sync(self) -> None:
        if self._handle is not None and self._pending > 0:
            os.fsync(self._handle.fileno())
            self.fsyncs += 1
            self._pending = 0

    def read_journal(self) -> List[Dict[str, object]]:
        if not self._journal_path.exists():
            return []
        records: List[Dict[str, object]] = []
        lines = self._journal_path.read_text(encoding="utf-8").splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    # A torn tail record is the expected signature of a crash
                    # mid-append; everything before it is intact.
                    self.torn_records_dropped += 1
                    break
                raise PersistenceError(
                    f"corrupt journal record at {self._journal_path}:{index + 1}"
                )
        return records

    def reset_journal(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._pending = 0
        open(self._journal_path, "w", encoding="utf-8").close()

    def write_snapshot(self, snapshot: Dict[str, object]) -> None:
        tmp_path = self._snapshot_path.with_suffix(".json.tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self._snapshot_path)

    def read_snapshot(self) -> Optional[Dict[str, object]]:
        if not self._snapshot_path.exists():
            return None
        try:
            return json.loads(self._snapshot_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise PersistenceError(f"corrupt snapshot {self._snapshot_path}: {exc}") from exc

    def has_state(self) -> bool:
        return self._snapshot_path.exists() or (
            self._journal_path.exists() and self._journal_path.stat().st_size > 0
        )

    def close(self) -> None:
        self.sync()
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ---------------------------------------------------------------------------
# Snapshot construction
# ---------------------------------------------------------------------------


TERMINAL_STATUSES = (JobStatus.COMPLETED, JobStatus.FAILED, JobStatus.CANCELLED)


def build_snapshot(server: "AccessServer", sequence: int) -> Dict[str, object]:
    """Capture the server's full journaled state as one JSON document.

    Terminal jobs whose workspace retention has lapsed (the paper keeps job
    logs "for several days") are dropped from the snapshot, so checkpoint
    cost is bounded by the retention window and queue depth rather than
    growing with the server's whole lifetime.
    """
    scheduler = server.scheduler
    engine = scheduler.engine
    now = server.context.now
    pending_ids = {job.job_id for job in server.pending_approval()}
    jobs = [
        serialize_job(job, queue_seq=engine.queue.sequence_of(job.job_id))
        for job in scheduler.jobs()
        if not (job.status in TERMINAL_STATUSES and job.workspace.expired(now))
    ]
    credit_state: Optional[Dict[str, object]] = None
    if server.credit_policy is not None:
        ledger = server.credit_policy.ledger
        credit_state = {
            "contribution_multiplier": ledger.contribution_multiplier,
            "initial_grant_device_hours": ledger.initial_grant_device_hours,
            "minimum_reservation_hours": server.credit_policy.minimum_reservation_hours,
            "accounts": [
                {
                    "owner": account.owner,
                    "contributes_hardware": account.contributes_hardware,
                    "balance_device_hours": account.balance_device_hours,
                    "transactions": [
                        {
                            "timestamp": txn.timestamp,
                            "account": txn.account,
                            "kind": txn.kind.value,
                            "amount_device_hours": txn.amount_device_hours,
                            "note": txn.note,
                        }
                        for txn in account.transactions
                    ],
                }
                for account in ledger.accounts()
            ],
        }
    snapshot: Dict[str, object] = {
        "format": FORMAT_VERSION,
        "sequence": sequence,
        "captured_at": server.context.now,
        "policy": scheduler.policy.name,
        "reservation_admission": engine.reservation_admission,
        "next_reservation_id": scheduler._next_reservation_id,
        "users": [serialize_user(server.users.get(name)) for name in server.users.usernames()],
        "idempotency": [list(record) for record in server.idempotency_records()],
        "vantage_points": [
            {
                "name": record.name,
                "institution": record.institution,
                "dns_name": record.dns_name,
                "devices": list(record.controller.list_devices()),
            }
            for record in server.vantage_points()
        ],
        "jobs": jobs,
        "pending_approval": sorted(pending_ids),
        "reservations": [_serialize_reservation(r) for r in engine.reservations.all()],
        "credit": credit_state,
    }
    if server.shard_id is not None:
        # Shard identity rides in the snapshot so operators can tell whose
        # journal a state-dir holds — and so recovery onto an unconfigured
        # server can restore the full lane, keeping fresh ids in the
        # shard's residue class.  Omitted for single-server state so
        # historical snapshot bytes are unchanged.
        snapshot["shard_id"] = server.shard_id
        snapshot["shard_index"] = server.shard_index
        snapshot["shard_count"] = server.shard_count
    agents = server.agents.agents()
    if agents:
        # Registered edge daemons persist like user accounts; the key is
        # omitted when no agent ever registered so pre-agent snapshot
        # bytes are unchanged.
        snapshot["agents"] = [record.to_record() for record in agents]
    return snapshot


# ---------------------------------------------------------------------------
# Replay state machine
# ---------------------------------------------------------------------------


class _ReplayState:
    """Applies snapshot + journal records onto plain dicts before
    materialising them into a live server."""

    def __init__(self) -> None:
        self.jobs: Dict[int, Dict[str, object]] = {}
        self.queue_seq: Dict[int, float] = {}
        self.pending: List[int] = []
        self.reservations: Dict[int, Dict[str, object]] = {}
        self.next_reservation_id = 1
        self.policy: Optional[str] = None
        self.reservation_admission: Optional[str] = None
        self.vantage_points: Dict[str, Dict[str, object]] = {}
        self.credit: Optional[Dict[str, object]] = None
        self.users: Dict[str, Dict[str, object]] = {}
        self.idempotency: Dict[Tuple[str, str], int] = {}
        self.agents: Dict[str, Dict[str, object]] = {}
        self.sequence = 0
        self.events_replayed = 0
        self._next_seq = 0.0
        self.shard_id: Optional[str] = None
        self.shard_index = 0
        self.shard_count = 1

    def _allocate_seq(self) -> float:
        self._next_seq += 1.0
        return self._next_seq

    def load_snapshot(self, snapshot: Optional[Dict[str, object]]) -> None:
        if snapshot is None:
            return
        if snapshot.get("format") != FORMAT_VERSION:
            raise PersistenceError(
                f"unsupported snapshot format {snapshot.get('format')!r} "
                f"(expected {FORMAT_VERSION})"
            )
        self.sequence = snapshot.get("sequence", 0)
        self.shard_id = snapshot.get("shard_id")
        self.shard_index = snapshot.get("shard_index", 0)
        self.shard_count = snapshot.get("shard_count", 1)
        self.policy = snapshot.get("policy")
        self.reservation_admission = snapshot.get("reservation_admission")
        self.next_reservation_id = snapshot.get("next_reservation_id", 1)
        for vp in snapshot.get("vantage_points", ()):
            self.vantage_points[vp["name"]] = vp
        for data in snapshot.get("jobs", ()):
            self.jobs[data["job_id"]] = dict(data)
            queue_seq = data.get("queue_seq")
            if queue_seq is not None:
                self.queue_seq[data["job_id"]] = float(queue_seq)
                self._next_seq = max(self._next_seq, float(queue_seq))
        self.pending = list(snapshot.get("pending_approval", ()))
        for data in snapshot.get("reservations", ()):
            self.reservations[data["reservation_id"]] = data
        for data in snapshot.get("users", ()):
            self.users[data["username"]] = dict(data)
        for data in snapshot.get("agents", ()):
            self.agents[data["agent_id"]] = dict(data)
        for owner, key, job_id in snapshot.get("idempotency", ()):
            self.idempotency[(owner, key)] = job_id
        credit = snapshot.get("credit")
        if credit is not None:
            self.credit = {
                "contribution_multiplier": credit["contribution_multiplier"],
                "initial_grant_device_hours": credit["initial_grant_device_hours"],
                "minimum_reservation_hours": credit["minimum_reservation_hours"],
                "accounts": {
                    account["owner"]: {
                        "contributes_hardware": account["contributes_hardware"],
                        "balance_device_hours": account["balance_device_hours"],
                        "transactions": list(account["transactions"]),
                    }
                    for account in credit.get("accounts", ())
                },
            }

    def apply(self, record: Dict[str, object]) -> None:
        sequence = record.get("seq", 0)
        if sequence <= self.sequence:
            return  # already folded into the snapshot
        self.sequence = sequence
        self.events_replayed += 1
        kind = record.get("kind")
        data = record.get("data", {})
        handler = getattr(self, "_apply_" + str(kind).replace(".", "_"), None)
        if handler is None:
            raise PersistenceError(f"unknown journal record kind {kind!r}")
        handler(data)

    # -- job lifecycle ------------------------------------------------------
    def _apply_job_submitted(self, data: Dict[str, object]) -> None:
        job = dict(data["job"])
        self.jobs[job["job_id"]] = job
        key = data.get("idempotency_key")
        if key is not None:
            self.idempotency[(job["spec"]["owner"], key)] = job["job_id"]
        if job["status"] == JobStatus.PENDING_APPROVAL.value:
            self.pending.append(job["job_id"])
        else:
            self.queue_seq[job["job_id"]] = self._allocate_seq()

    def _apply_job_approved(self, data: Dict[str, object]) -> None:
        job_id = data["job_id"]
        job = self.jobs.get(job_id)
        if job is None:
            return
        if job_id in self.pending:
            self.pending.remove(job_id)
        job["status"] = JobStatus.QUEUED.value
        self.queue_seq.setdefault(job_id, self._allocate_seq())

    def _apply_job_assigned(self, data: Dict[str, object]) -> None:
        job = self.jobs.get(data["job_id"])
        if job is None:
            return
        job["status"] = JobStatus.RUNNING.value
        job["assigned_vantage_point"] = data.get("vantage_point")
        job["assigned_device"] = data.get("device_serial")
        job["started_at"] = data.get("timestamp")

    def _apply_job_requeued(self, data: Dict[str, object]) -> None:
        job = self.jobs.get(data["job_id"])
        if job is None:
            return
        job["status"] = JobStatus.QUEUED.value
        job["assigned_vantage_point"] = None
        job["assigned_device"] = None
        job["started_at"] = None

    def _apply_job_finished(self, data: Dict[str, object]) -> None:
        job = self.jobs.get(data["job_id"])
        if job is None:
            return
        job["status"] = data["status"]
        job["finished_at"] = data.get("finished_at")
        job["result"] = data.get("result")
        job["error"] = data.get("error")
        job["log_lines"] = data.get("log_lines", job.get("log_lines", []))
        self.queue_seq.pop(data["job_id"], None)

    def _apply_job_cancelled(self, data: Dict[str, object]) -> None:
        job = self.jobs.get(data["job_id"])
        if job is None:
            return
        job["status"] = JobStatus.CANCELLED.value
        self.queue_seq.pop(data["job_id"], None)
        if data["job_id"] in self.pending:
            self.pending.remove(data["job_id"])

    def _apply_job_rejected(self, data: Dict[str, object]) -> None:
        job = self.jobs.get(data["job_id"])
        if job is None:
            return
        job["error"] = data.get("error")

    # -- reservations -------------------------------------------------------
    def _apply_reservation_created(self, data: Dict[str, object]) -> None:
        self.reservations[data["reservation_id"]] = dict(data)
        self.next_reservation_id = max(self.next_reservation_id, data["reservation_id"] + 1)

    def _apply_reservation_cancelled(self, data: Dict[str, object]) -> None:
        self.reservations.pop(data["reservation_id"], None)

    # -- configuration ------------------------------------------------------
    def _apply_policy_changed(self, data: Dict[str, object]) -> None:
        self.policy = data["policy"]

    def _apply_vantage_point_registered(self, data: Dict[str, object]) -> None:
        self.vantage_points[data["name"]] = dict(data)

    def _apply_user_created(self, data: Dict[str, object]) -> None:
        self.users[data["username"]] = dict(data)

    def _apply_agent_registered(self, data: Dict[str, object]) -> None:
        self.agents[data["agent_id"]] = dict(data)

    # -- credits ------------------------------------------------------------
    def _apply_credit_enabled(self, data: Dict[str, object]) -> None:
        self.credit = {
            "contribution_multiplier": data["contribution_multiplier"],
            "initial_grant_device_hours": data["initial_grant_device_hours"],
            "minimum_reservation_hours": data["minimum_reservation_hours"],
            "accounts": {},
        }

    def _apply_credit_account_opened(self, data: Dict[str, object]) -> None:
        if self.credit is None:
            return
        self.credit["accounts"].setdefault(
            data["owner"],
            {
                "contributes_hardware": data.get("contributes_hardware", False),
                "balance_device_hours": 0.0,
                "transactions": [],
            },
        )

    def _apply_credit_txn(self, data: Dict[str, object]) -> None:
        if self.credit is None:
            return
        account = self.credit["accounts"].get(data["account"])
        if account is None:
            return
        account["balance_device_hours"] += data["amount_device_hours"]
        account["transactions"].append(dict(data))


@dataclass
class RecoveryReport:
    """What :func:`recover_into` rebuilt, for logs, tests and benchmarks."""

    snapshot_loaded: bool = False
    events_replayed: int = 0
    last_sequence: int = 0
    journaled_policy: Optional[str] = None
    journaled_admission: Optional[str] = None
    jobs_restored: int = 0
    jobs_queued: int = 0
    jobs_requeued_in_flight: int = 0
    pending_approval: int = 0
    reservations_restored: int = 0
    credit_accounts_restored: int = 0
    users_restored: int = 0
    agents_restored: int = 0
    idempotency_keys_restored: int = 0
    missing_vantage_points: List[str] = field(default_factory=list)
    missing_payloads: List[str] = field(default_factory=list)
    orphaned_jobs: List[int] = field(default_factory=list)


def recover_into(server: "AccessServer", backend: StorageBackend) -> RecoveryReport:
    """Replay a snapshot + journal into a freshly built access server.

    The server must be newly constructed (empty queue, no reservations); its
    vantage points should already be re-registered by the host — recovery
    restores *state*, not live SSH connections to controllers.  Devices of
    journaled vantage points that have not re-joined are left unregistered
    (and reported) so the dispatcher cannot assign jobs to hardware that is
    not there.
    """
    state = _ReplayState()
    snapshot = backend.read_snapshot()
    state.load_snapshot(snapshot)
    for record in backend.read_journal():
        state.apply(record)

    report = RecoveryReport(
        snapshot_loaded=snapshot is not None,
        events_replayed=state.events_replayed,
        last_sequence=state.sequence,
        journaled_policy=state.policy,
        journaled_admission=state.reservation_admission,
    )
    scheduler = server.scheduler

    # Shard identity is *journaled* configuration: an unconfigured server
    # recovering a shard's state-dir adopts the full lane (before any job
    # ids are claimed, so claims land in the lane allocator) — a bare
    # ``serve``/``status`` on shard state never mints out-of-lane ids.  A
    # host that already configured a different identity keeps it; the
    # mismatch is logged, not silently overwritten.
    if state.shard_id is not None:
        if server.shard_id is None:
            server.configure_shard(
                state.shard_id,
                shard_index=state.shard_index,
                shard_count=state.shard_count,
            )
        elif server.shard_id != state.shard_id:
            server.log(
                "journaled shard identity differs; keeping this run's configuration",
                journaled=state.shard_id,
                active=server.shard_id,
            )

    # Scheduling policy and admission mode are *this run's* configuration —
    # the host (or CLI flags) chose them when constructing the server — so
    # the journaled values are reported, not restored; a mismatch is logged.
    if state.policy is not None and state.policy != scheduler.policy.name:
        server.log(
            "journaled scheduling policy differs; keeping this run's configuration",
            journaled=state.policy,
            active=scheduler.policy.name,
        )
    if (
        state.reservation_admission is not None
        and state.reservation_admission != scheduler.engine.reservation_admission
    ):
        server.log(
            "journaled reservation admission differs; keeping this run's configuration",
            journaled=state.reservation_admission,
            active=scheduler.engine.reservation_admission,
        )

    registered = {record.name for record in server.vantage_points()}
    for name, vp in state.vantage_points.items():
        if name in registered:
            continue
        report.missing_vantage_points.append(name)

    # Accounts are restored by hash — the journal never saw a plaintext
    # token — and overwrite same-named bootstrap accounts: the journal is
    # authoritative, exactly as for credit balances.
    for username in sorted(state.users):
        data = state.users[username]
        server.users.restore_user(
            username,
            role=data["role"],
            token_hash=data["token_hash"],
            email=data.get("email", ""),
            enabled=data.get("enabled", True),
        )
        report.users_restored += 1

    for agent_id in sorted(state.agents):
        server.agents.restore(state.agents[agent_id])
        report.agents_restored += 1

    for (owner, key), job_id in state.idempotency.items():
        if job_id in state.jobs:
            server.restore_idempotency_record(owner, key, job_id)
            report.idempotency_keys_restored += 1

    if state.credit is not None:
        if server.credit_policy is None:
            ledger = server.enable_credit_system(
                contribution_multiplier=state.credit["contribution_multiplier"],
                initial_grant_device_hours=state.credit["initial_grant_device_hours"],
                minimum_reservation_hours=state.credit["minimum_reservation_hours"],
            )
        else:
            ledger = server.credit_policy.ledger
        for owner in sorted(state.credit["accounts"]):
            account = state.credit["accounts"][owner]
            ledger.restore_account(
                owner,
                contributes_hardware=account["contributes_hardware"],
                balance_device_hours=account["balance_device_hours"],
                transactions=[
                    CreditTransaction(
                        timestamp=txn["timestamp"],
                        account=txn["account"],
                        kind=TransactionKind(txn["kind"]),
                        amount_device_hours=txn["amount_device_hours"],
                        note=txn.get("note", ""),
                    )
                    for txn in account["transactions"]
                ],
            )
            report.credit_accounts_restored += 1

    for reservation_id in sorted(state.reservations):
        data = state.reservations[reservation_id]
        scheduler.restore_reservation(
            SessionReservation(
                reservation_id=data["reservation_id"],
                username=data["username"],
                vantage_point=data["vantage_point"],
                device_serial=data["device_serial"],
                start_s=data["start_s"],
                duration_s=data["duration_s"],
            )
        )
        report.reservations_restored += 1
    scheduler.claim_reservation_id(state.next_reservation_id - 1)

    pending_ids = set(state.pending)
    queued: List[Tuple[float, Job]] = []
    for job_id in sorted(state.jobs):
        data = state.jobs[job_id]
        job, was_in_flight = materialize_job(data)
        # materialize_job claimed the process-global allocator; a sharded
        # server additionally fast-forwards its own job-id lane.
        server.claim_job_id(job.job_id)
        payload_ref = data["spec"].get("payload")
        if payload_ref not in _PAYLOADS and job.status in (
            JobStatus.QUEUED,
            JobStatus.PENDING_APPROVAL,
        ):
            report.missing_payloads.append(job.spec.name)
        report.jobs_restored += 1
        if was_in_flight:
            report.jobs_requeued_in_flight += 1
        if job.job_id in pending_ids and job.status is JobStatus.PENDING_APPROVAL:
            scheduler.restore_job(job, queued=False)
            server._pending_approval.append(job)
            server._track_orphan(job)
            report.pending_approval += 1
        elif job.status is JobStatus.QUEUED:
            seq = state.queue_seq.get(job.job_id)
            queued.append((seq if seq is not None else float("inf"), job))
        else:
            scheduler.restore_job(job, queued=False)
    for _, job in sorted(queued, key=lambda item: item[0]):
        scheduler.restore_job(job, queued=True)
        server._track_orphan(job)
        report.jobs_queued += 1

    # Jobs pinned to a vantage point that has not re-joined can never
    # dispatch until an operator re-registers the topology; one predicate —
    # AccessServer.orphaned_jobs(), which status() keeps reporting live —
    # decides both the recovery report and the ongoing view.
    report.orphaned_jobs = [job.job_id for job in server.orphaned_jobs()]

    server.log(
        "state recovered",
        jobs=report.jobs_restored,
        queued=report.jobs_queued,
        requeued_in_flight=report.jobs_requeued_in_flight,
        reservations=report.reservations_restored,
        events_replayed=report.events_replayed,
        orphaned_jobs=report.orphaned_jobs,
        missing_vantage_points=report.missing_vantage_points,
    )
    return report


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------


class PersistenceManager:
    """Journals every access-server mutation and checkpoints periodically.

    Created via :func:`attach_persistence` (or the convenience
    :meth:`~repro.accessserver.server.AccessServer.enable_persistence`);
    not normally constructed directly.

    Parameters
    ----------
    server:
        The access server to shadow.
    backend:
        Where journal and snapshots live.
    snapshot_every:
        Write a snapshot and truncate the journal after this many journal
        records, bounding replay cost at recovery time.
    start_sequence:
        Sequence number to continue from — the recovered state's last
        applied sequence.  Sequence numbers must never restart: the
        ``seq <= snapshot.sequence`` replay guard is what keeps a journal
        left behind by a crash between snapshot write and journal truncation
        from being applied twice.
    """

    BUS_TOPICS = tuple(DISPATCH_TOPIC_KINDS)

    def __init__(
        self,
        server: "AccessServer",
        backend: StorageBackend,
        snapshot_every: int = 1000,
        start_sequence: int = 0,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be at least 1")
        self._server = server
        self._backend = backend
        self._snapshot_every = snapshot_every
        self._sequence = start_sequence
        self._records_since_snapshot = 0
        self._snapshots_written = 0
        self._last_snapshot_at: Optional[float] = None
        self._attached = False
        self.last_recovery: Optional[RecoveryReport] = None
        # Telemetry (rides on the server's registry when present).
        obs = getattr(server, "obs", None)
        if obs is not None:
            registry = obs.registry
            self._m_append = registry.histogram(
                "journal_append_seconds", "Wall time of one journal append."
            ).labels()
            self._g_fsyncs = registry.gauge(
                "journal_fsyncs_total", "fsync batches flushed by the backend."
            ).labels()
            self._g_since_snapshot = registry.gauge(
                "journal_records_since_snapshot",
                "Journal records a recovery would replay.",
            ).labels()
            self._g_snapshot_age = registry.gauge(
                "snapshot_age_seconds",
                "Simulated seconds since the last checkpoint (0 before the first).",
            ).labels()
            registry.add_collect_hook(self._collect_metrics)
        else:
            self._m_append = None

    def _collect_metrics(self) -> None:
        self._g_fsyncs.set(float(getattr(self._backend, "fsyncs", 0)))
        self._g_since_snapshot.set(float(self._records_since_snapshot))
        if self._last_snapshot_at is not None:
            self._g_snapshot_age.set(self._server.context.now - self._last_snapshot_at)
        else:
            self._g_snapshot_age.set(0.0)

    # -- introspection ------------------------------------------------------
    @property
    def backend(self) -> StorageBackend:
        return self._backend

    @property
    def sequence(self) -> int:
        """Sequence number of the last journaled record."""
        return self._sequence

    @property
    def snapshots_written(self) -> int:
        return self._snapshots_written

    @property
    def records_since_snapshot(self) -> int:
        return self._records_since_snapshot

    @property
    def last_snapshot_at(self) -> Optional[float]:
        """Simulated time of the last checkpoint (``None`` before the first)."""
        return self._last_snapshot_at

    # -- lifecycle ----------------------------------------------------------
    def attach(self) -> None:
        """Subscribe to the server's event bus and mutation hooks."""
        if self._attached:
            return
        for topic in self.BUS_TOPICS:
            self._server.events.subscribe(topic, self._on_bus_event)
        if self._server.credit_policy is not None:
            self._server.credit_policy.ledger.add_observer(self._on_credit_event)
        self._server._persistence = self
        self._attached = True

    def detach(self) -> None:
        """Stop journaling; the backend is left open for inspection."""
        if not self._attached:
            return
        for topic in self.BUS_TOPICS:
            self._server.events.unsubscribe(topic, self._on_bus_event)
        if self._server.credit_policy is not None:
            self._server.credit_policy.ledger.remove_observer(self._on_credit_event)
        self._server._persistence = None
        self._attached = False

    def close(self) -> None:
        """Detach and release the backend (final fsync included)."""
        self.detach()
        self._backend.close()

    def checkpoint(self) -> None:
        """Write a snapshot of the current state and truncate the journal."""
        self._backend.sync()
        self._backend.write_snapshot(build_snapshot(self._server, self._sequence))
        self._backend.reset_journal()
        self._records_since_snapshot = 0
        self._snapshots_written += 1
        self._last_snapshot_at = self._server.context.now

    # -- explicit server hooks ---------------------------------------------
    def on_job_submitted(self, job: Job, idempotency_key: Optional[str] = None) -> None:
        data: Dict[str, object] = {"job": serialize_job(job)}
        if idempotency_key is not None:
            data["idempotency_key"] = idempotency_key
        self._append("job.submitted", data)

    def on_user_created(self, user) -> None:
        self._append("user.created", serialize_user(user))

    def on_agent_registered(self, record) -> None:
        self._append("agent.registered", record.to_record())

    def on_job_rejected(self, job: Job) -> None:
        # The cancellation itself is journaled via the dispatch.cancelled
        # bus tap; this record carries what the tap cannot see — the
        # rejection reason recorded on the job for its owner.
        self._append("job.rejected", {"job_id": job.job_id, "error": job.error})

    def on_job_approved(self, job: Job) -> None:
        self._append("job.approved", {"job_id": job.job_id})

    def on_job_finished(self, job: Job) -> None:
        self._append(
            "job.finished",
            {
                "job_id": job.job_id,
                "status": job.status.value,
                "finished_at": job.finished_at,
                "result": _json_safe(job.result),
                "error": job.error,
                "log_lines": list(job.log_lines),
            },
        )

    def on_reservation_created(self, reservation: SessionReservation) -> None:
        self._append("reservation.created", _serialize_reservation(reservation))

    def on_policy_changed(self, policy_name: str) -> None:
        self._append("policy.changed", {"policy": policy_name})

    def on_vantage_point_registered(self, record) -> None:
        self._append(
            "vantage_point.registered",
            {
                "name": record.name,
                "institution": record.institution,
                "dns_name": record.dns_name,
                "devices": list(record.controller.list_devices()),
            },
        )

    def on_credit_enabled(
        self,
        contribution_multiplier: float,
        initial_grant_device_hours: float,
        minimum_reservation_hours: float,
    ) -> None:
        self._append(
            "credit.enabled",
            {
                "contribution_multiplier": contribution_multiplier,
                "initial_grant_device_hours": initial_grant_device_hours,
                "minimum_reservation_hours": minimum_reservation_hours,
            },
        )
        self._server.credit_policy.ledger.add_observer(self._on_credit_event)

    # -- bus / ledger taps --------------------------------------------------
    def _on_bus_event(self, record: BusEvent) -> None:
        payload = record.payload
        if record.topic == "dispatch.assigned":
            self._append(
                "job.assigned",
                {
                    "job_id": payload["job_id"],
                    "vantage_point": payload["vantage_point"],
                    "device_serial": payload["device_serial"],
                    "timestamp": record.timestamp,
                },
            )
        elif record.topic == "dispatch.requeued":
            self._append("job.requeued", {"job_id": payload["job_id"]})
        elif record.topic == "dispatch.cancelled":
            self._append("job.cancelled", {"job_id": payload["job_id"]})
        elif record.topic == "dispatch.reservation_cancelled":
            self._append(
                "reservation.cancelled", {"reservation_id": payload["reservation_id"]}
            )

    def _on_credit_event(self, kind: str, data: Dict[str, object]) -> None:
        if kind == "account_opened":
            self._append("credit.account_opened", dict(data))
        elif kind == "transaction":
            self._append("credit.txn", dict(data))

    # -- internals ----------------------------------------------------------
    def _append(self, kind: str, data: Dict[str, object]) -> None:
        append_t0 = time.perf_counter()
        self._sequence += 1
        self._backend.append(
            {
                "seq": self._sequence,
                "ts": self._server.context.now,
                "kind": kind,
                "data": data,
            }
        )
        self._records_since_snapshot += 1
        if self._m_append is not None:
            self._m_append.observe(time.perf_counter() - append_t0)
        if self._records_since_snapshot >= self._snapshot_every:
            self.checkpoint()


def attach_persistence(
    server: "AccessServer",
    backend: Union[StorageBackend, str, Path],
    recover: bool = True,
    snapshot_every: int = 1000,
    fsync_every: int = 32,
) -> PersistenceManager:
    """Wire durable state onto an access server (recovering first if asked).

    ``backend`` may be a :class:`StorageBackend` instance or a state
    directory path (which becomes a :class:`FileBackend`).  When ``recover``
    is true and the backend holds state, that state is replayed into the
    server *before* journaling starts; either way an initial checkpoint is
    written so the on-disk state is immediately coherent.

    .. warning:: ``recover=False`` means "start fresh": the initial
       checkpoint overwrites whatever snapshot/journal the backend already
       held.  To keep old state untouched, point the server at a different
       backend instead.
    """
    if isinstance(backend, (str, Path)):
        backend = FileBackend(backend, fsync_every=fsync_every)
    if server.persistence is not None:
        raise PersistenceError("persistence is already attached to this server")
    report: Optional[RecoveryReport] = None
    if recover and backend.has_state():
        report = recover_into(server, backend)
    manager = PersistenceManager(
        server,
        backend,
        snapshot_every=snapshot_every,
        start_sequence=report.last_sequence if report is not None else 0,
    )
    manager.attach()
    manager.last_recovery = report
    manager.checkpoint()
    return manager
