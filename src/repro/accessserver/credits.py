"""Credit system for platform access.

The paper's conclusion sketches how BatteryLab should grow: "Our vision is
an open source and open access platform that users can join by sharing
resources.  However, we anticipate potential access via a credit system for
experimenters lacking the resources for the initial setup."

This module implements that credit system:

* institutions *earn* credits for the device-hours their vantage points make
  available to others;
* experimenters without hardware *spend* credits for the device-hours their
  jobs and interactive sessions consume;
* members who contribute hardware get a configurable ratio of free usage
  (contributing one device-hour earns more than one device-hour of usage, to
  incentivise joining).

The ledger is intentionally simple — integer-free floating device-hours with
an auditable transaction log — because the interesting behaviour is the
policy (who may run a job), which :class:`CreditPolicy` encapsulates and the
access server can consult before dispatching.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class CreditError(RuntimeError):
    """Raised for unknown accounts or overdrafts."""


class TransactionKind(str, enum.Enum):
    GRANT = "grant"
    CONTRIBUTION = "contribution"
    USAGE = "usage"
    ADJUSTMENT = "adjustment"


@dataclass(frozen=True)
class CreditTransaction:
    """One ledger entry (positive amounts add credits, negative remove them)."""

    timestamp: float
    account: str
    kind: TransactionKind
    amount_device_hours: float
    note: str = ""


@dataclass
class CreditAccount:
    """Balance and history for one user or institution."""

    owner: str
    balance_device_hours: float = 0.0
    contributes_hardware: bool = False
    transactions: List[CreditTransaction] = field(default_factory=list)


class CreditLedger:
    """Tracks every member's credit balance.

    Parameters
    ----------
    contribution_multiplier:
        Credits earned per device-hour of hardware made available; values
        above 1.0 reward members that contribute vantage points.
    initial_grant_device_hours:
        Starter credits for new experimenters (lets them try the platform
        before committing hardware or funds).
    """

    def __init__(
        self,
        contribution_multiplier: float = 1.5,
        initial_grant_device_hours: float = 5.0,
    ) -> None:
        if contribution_multiplier <= 0:
            raise ValueError("contribution multiplier must be positive")
        if initial_grant_device_hours < 0:
            raise ValueError("initial grant must be non-negative")
        self._accounts: Dict[str, CreditAccount] = {}
        self._contribution_multiplier = float(contribution_multiplier)
        self._initial_grant = float(initial_grant_device_hours)
        self._observers: List[Callable[[str, Dict[str, object]], None]] = []

    @property
    def contribution_multiplier(self) -> float:
        return self._contribution_multiplier

    @property
    def initial_grant_device_hours(self) -> float:
        return self._initial_grant

    # -- observers ----------------------------------------------------------------
    def add_observer(self, callback: Callable[[str, Dict[str, object]], None]) -> None:
        """Register a mutation observer.

        The callback receives ``("account_opened", data)`` when an account is
        created and ``("transaction", data)`` for every ledger entry, with
        primitive-valued ``data`` dicts.  The persistence layer uses this to
        journal credit mutations without the ledger knowing about journals.
        """
        self._observers.append(callback)

    def remove_observer(self, callback: Callable[[str, Dict[str, object]], None]) -> None:
        if callback in self._observers:
            self._observers.remove(callback)

    def _notify(self, kind: str, data: Dict[str, object]) -> None:
        for callback in list(self._observers):
            callback(kind, data)

    # -- accounts -----------------------------------------------------------------
    def open_account(
        self, owner: str, contributes_hardware: bool = False, now: float = 0.0
    ) -> CreditAccount:
        if owner in self._accounts:
            raise CreditError(f"account {owner!r} already exists")
        account = CreditAccount(owner=owner, contributes_hardware=contributes_hardware)
        self._accounts[owner] = account
        self._notify(
            "account_opened", {"owner": owner, "contributes_hardware": contributes_hardware}
        )
        if self._initial_grant > 0:
            self._record(
                account,
                TransactionKind.GRANT,
                self._initial_grant,
                now,
                note="initial grant for new members",
            )
        return account

    def account(self, owner: str) -> CreditAccount:
        try:
            return self._accounts[owner]
        except KeyError:
            raise CreditError(f"unknown credit account {owner!r}") from None

    def accounts(self) -> List[CreditAccount]:
        return [self._accounts[name] for name in sorted(self._accounts)]

    def balance(self, owner: str) -> float:
        return self.account(owner).balance_device_hours

    # -- earning and spending -------------------------------------------------------
    def credit_contribution(self, owner: str, device_hours: float, now: float, note: str = "") -> float:
        """Award credits for hosting ``device_hours`` of available test-device time."""
        if device_hours < 0:
            raise ValueError("device_hours must be non-negative")
        account = self.account(owner)
        earned = device_hours * self._contribution_multiplier
        self._record(account, TransactionKind.CONTRIBUTION, earned, now, note=note)
        return earned

    def charge_usage(self, owner: str, device_hours: float, now: float, note: str = "") -> float:
        """Charge an experimenter for consumed device time; overdrafts are rejected."""
        if device_hours < 0:
            raise ValueError("device_hours must be non-negative")
        account = self.account(owner)
        if account.contributes_hardware:
            # Hardware contributors use the platform for free (they pay in kind).
            self._record(account, TransactionKind.USAGE, 0.0, now, note=f"waived: {note}")
            return 0.0
        if account.balance_device_hours < device_hours:
            raise CreditError(
                f"account {owner!r} has {account.balance_device_hours:.2f} device-hours, "
                f"needs {device_hours:.2f}"
            )
        self._record(account, TransactionKind.USAGE, -device_hours, now, note=note)
        return device_hours

    def adjust(self, owner: str, amount_device_hours: float, now: float, note: str = "") -> None:
        """Manual administrative adjustment (refunds, penalties)."""
        self._record(self.account(owner), TransactionKind.ADJUSTMENT, amount_device_hours, now, note=note)

    def can_afford(self, owner: str, device_hours: float) -> bool:
        account = self.account(owner)
        return account.contributes_hardware or account.balance_device_hours >= device_hours

    def restore_account(
        self,
        owner: str,
        contributes_hardware: bool,
        balance_device_hours: float,
        transactions: List[CreditTransaction],
    ) -> CreditAccount:
        """Recreate an account exactly as journaled — no grant, no observers.

        Used by crash recovery: the replayed transactions already include any
        initial grant, so the account is rebuilt verbatim rather than opened
        through the normal (grant-issuing, observer-notifying) path.  The
        journal is authoritative — an account the host happened to open
        before recovery ran is overwritten with the journaled state.
        """
        account = CreditAccount(
            owner=owner,
            balance_device_hours=balance_device_hours,
            contributes_hardware=contributes_hardware,
            transactions=list(transactions),
        )
        self._accounts[owner] = account
        return account

    def _record(
        self,
        account: CreditAccount,
        kind: TransactionKind,
        amount: float,
        now: float,
        note: str = "",
    ) -> None:
        account.balance_device_hours += amount
        account.transactions.append(
            CreditTransaction(
                timestamp=now,
                account=account.owner,
                kind=kind,
                amount_device_hours=amount,
                note=note,
            )
        )
        self._notify(
            "transaction",
            {
                "timestamp": now,
                "account": account.owner,
                "kind": kind.value,
                "amount_device_hours": amount,
                "note": note,
            },
        )


class CreditPolicy:
    """Decides whether a job or session may run, and settles its cost afterwards.

    The access server consults :meth:`authorize` before dispatching a job for
    an owner and calls :meth:`settle` with the actual device time consumed
    when the job finishes.
    """

    def __init__(self, ledger: CreditLedger, minimum_reservation_hours: float = 0.25) -> None:
        if minimum_reservation_hours < 0:
            raise ValueError("minimum reservation must be non-negative")
        self._ledger = ledger
        self._minimum_reservation_hours = float(minimum_reservation_hours)

    @property
    def ledger(self) -> CreditLedger:
        return self._ledger

    @property
    def minimum_reservation_hours(self) -> float:
        return self._minimum_reservation_hours

    def authorize(self, owner: str, estimated_device_hours: Optional[float] = None) -> None:
        """Raise :class:`CreditError` unless ``owner`` can afford the estimated usage."""
        estimate = max(
            self._minimum_reservation_hours,
            estimated_device_hours if estimated_device_hours is not None else 0.0,
        )
        if not self._ledger.can_afford(owner, estimate):
            raise CreditError(
                f"user {owner!r} lacks credits for an estimated {estimate:.2f} device-hours"
            )

    def settle(self, owner: str, actual_device_hours: float, now: float, note: str = "") -> float:
        """Charge the actual usage once a job or session completes."""
        return self._ledger.charge_usage(owner, actual_device_hours, now, note=note)
