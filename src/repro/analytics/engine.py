"""The analytics engine: one reducer pipeline, two record sources.

:class:`AnalyticsEngine` owns the reducers and exposes the two consumer
surfaces the platform-operations story needs:

* :meth:`report` — the materialised operations report (per-owner
  utilisation and credit burn, queue-wait / run-time percentiles,
  per-device occupancy and failure rate, reservation bookings) as a plain
  JSON-stable dict;
* :meth:`timeseries` — fleet throughput over time at any bucket size no
  finer than the fold resolution.

Feed it either way — both through the *same* ``fold()``:

* cold: ``AnalyticsEngine.from_backend(state_dir)`` replays a persistence
  snapshot + journal (see
  :class:`~repro.analytics.records.JournalReplaySource`);
* hot: :meth:`AccessServer.enable_analytics()
  <repro.accessserver.server.AccessServer.enable_analytics>` attaches a
  :class:`~repro.analytics.records.LiveBusTap`, seeding from the attached
  persistence backend first so a recovered server's report includes its
  pre-crash history.

Determinism contract: the report dict has sorted keys/rows and rounded
floats, and :func:`report_json` is the canonical byte form — the golden
test replays a committed fixture journal and asserts those bytes, and the
live-vs-replay equivalence test asserts both sources fold to the same
report for one workload.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from repro.accessserver.persistence import StorageBackend
from repro.analytics.records import (
    KIND_RESERVATION_CANCELLED,
    KIND_RESERVATION_CREATED,
    JournalReplaySource,
    OpsRecord,
    RecordSource,
)
from repro.analytics.reducers import (
    CreditReducer,
    JobLifecycleReducer,
    ReservationReducer,
    ThroughputReducer,
    round6,
)


def report_json(report: Dict[str, object]) -> str:
    """The canonical byte form of a report (golden-test stable)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


class AnalyticsEngine:
    """Folds canonical operations records into materialised views.

    Parameters
    ----------
    bucket_s:
        Fold resolution of the throughput timeseries; ``timeseries()`` can
        re-bucket to any coarser size but never finer.
    """

    def __init__(self, bucket_s: float = 60.0) -> None:
        self._lifecycle = JobLifecycleReducer()
        self._credits = CreditReducer()
        self._reservations = ReservationReducer()
        self._throughput = ThroughputReducer(base_bucket_s=bucket_s)
        self._records_folded = 0
        self._first_ts: Optional[float] = None
        self._last_ts: Optional[float] = None

    #: Kinds excluded from the observation-window watermarks: a booking
    #: describes *future* device time (and a snapshot retains only its
    #: start), so letting it stretch first_ts/last_ts would skew every
    #: occupancy denominator — and diverge replay from live after
    #: compaction.  The window spans job and credit *activity* only.
    _WINDOW_EXEMPT = (KIND_RESERVATION_CREATED, KIND_RESERVATION_CANCELLED)

    # -- folding ------------------------------------------------------------
    def fold(self, record: OpsRecord) -> None:
        """Apply one canonical record to every reducer (O(1))."""
        self._records_folded += 1
        if record.kind not in self._WINDOW_EXEMPT:
            if self._first_ts is None or record.ts < self._first_ts:
                self._first_ts = record.ts
            if self._last_ts is None or record.ts > self._last_ts:
                self._last_ts = record.ts
        self._lifecycle.fold(record)
        self._credits.fold(record)
        self._reservations.fold(record)
        self._throughput.fold(record)

    def fold_source(self, source: Union[RecordSource, Iterable[OpsRecord]]) -> int:
        """Fold every record a source yields; returns how many were folded."""
        records = source.records() if isinstance(source, RecordSource) else source
        count = 0
        for record in records:
            self.fold(record)
            count += 1
        return count

    @classmethod
    def from_backend(
        cls,
        backend: Union[StorageBackend, str, Path],
        bucket_s: float = 60.0,
    ) -> "AnalyticsEngine":
        """Cold replay: build an engine from a journal/snapshot backend."""
        engine = cls(bucket_s=bucket_s)
        engine.fold_source(JournalReplaySource(backend))
        return engine

    # -- introspection ------------------------------------------------------
    @property
    def records_folded(self) -> int:
        return self._records_folded

    @property
    def window(self) -> Dict[str, Optional[float]]:
        return {
            "first_ts": round6(self._first_ts) if self._first_ts is not None else None,
            "last_ts": round6(self._last_ts) if self._last_ts is not None else None,
        }

    # -- views --------------------------------------------------------------
    def report(self, include_throughput: bool = True) -> Dict[str, object]:
        """The full operations report as a JSON-stable dict.

        ``include_throughput=False`` skips materialising the timeseries —
        for consumers (the ``analytics.report`` API view) that serve it
        through the dedicated ``analytics.timeseries`` operation instead.
        """
        first = self._first_ts if self._first_ts is not None else 0.0
        last = self._last_ts if self._last_ts is not None else 0.0
        window_s = max(0.0, last - first)
        # The owners table is the union of job activity and credit
        # activity: a contributor institution earning credits without
        # submitting jobs still appears, so fleet-wide credit movement
        # reconciles against the report.
        rows = {str(row["owner"]): dict(row) for row in self._lifecycle.owner_rows()}
        for account in self._credits.accounts():
            rows.setdefault(
                account,
                {
                    "owner": account,
                    "submitted": 0,
                    "completed": 0,
                    "failed": 0,
                    "cancelled": 0,
                    "rejected": 0,
                    "device_seconds": 0.0,
                    "queue_wait_s": 0.0,
                },
            )
        owners = []
        for owner in sorted(rows):
            row = rows[owner]
            row["credits_burned_device_hours"] = round6(self._credits.burned(owner))
            row["credits_granted_device_hours"] = round6(self._credits.granted(owner))
            owners.append(row)
        report: Dict[str, object] = {
            "records_folded": self._records_folded,
            "window": self.window,
            "jobs": self._lifecycle.job_counts(),
            "owners": owners,
            "queue_wait": self._lifecycle.wait_distribution(),
            "run_time": self._lifecycle.run_distribution(),
            "devices": self._lifecycle.device_rows(window_s),
            "reservations": self._reservations.view(),
        }
        if include_throughput:
            report["throughput"] = self._throughput.timeseries()
        return report

    def report_json(self) -> str:
        return report_json(self.report())

    def timeseries(self, bucket_s: Optional[float] = None) -> Dict[str, object]:
        """Fleet throughput re-bucketed to ``bucket_s`` (fold resolution default)."""
        return self._throughput.timeseries(bucket_s)
