"""Incremental reducers folding canonical records into operational views.

Each reducer is a small state machine with ``fold(record)`` — O(1) dict
updates per record, so the live tap adds negligible cost to the dispatch
hot path — and a ``view()`` producing plain, JSON-stable dicts (keys
sorted, floats rounded) so two folds of the same stream serialise to
identical bytes.

* :class:`JobLifecycleReducer` — per-job timelines (submission, first
  assignment, requeues, terminal state) aggregated into per-owner
  utilisation, per-device occupancy/failure-rate, fleet-wide job counts
  and queue-wait / run-time percentile samples.
* :class:`CreditReducer` — per-account credit burn (usage) and grants.
* :class:`ReservationReducer` — interactive-session booking counters.
* :class:`ThroughputReducer` — fleet throughput timeseries with
  configurable bucketing (base buckets at fold time, re-bucketed to any
  coarser multiple at query time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.accessserver.jobs import JobStatus
from repro.analytics.records import (
    KIND_CREDIT_TXN,
    KIND_JOB_APPROVED,
    KIND_JOB_ASSIGNED,
    KIND_JOB_CANCELLED,
    KIND_JOB_FINISHED,
    KIND_JOB_REJECTED,
    KIND_JOB_REQUEUED,
    KIND_JOB_SUBMITTED,
    KIND_RESERVATION_CANCELLED,
    KIND_RESERVATION_CREATED,
    OpsRecord,
)


def round6(value: float) -> float:
    """Canonical float rounding for every reported value (byte stability)."""
    return round(float(value), 6)


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of pre-sorted ``samples`` (empty -> 0.0)."""
    if not samples:
        return 0.0
    rank = max(1, math.ceil(fraction * len(samples)))
    return samples[min(rank, len(samples)) - 1]


def distribution_view(samples: List[float]) -> Dict[str, object]:
    """Summary statistics of a sample list as a stable dict."""
    ordered = sorted(samples)
    count = len(ordered)
    return {
        "samples": count,
        "mean_s": round6(sum(ordered) / count) if count else 0.0,
        "p50_s": round6(percentile(ordered, 0.50)),
        "p90_s": round6(percentile(ordered, 0.90)),
        "p99_s": round6(percentile(ordered, 0.99)),
        "max_s": round6(ordered[-1]) if count else 0.0,
    }


@dataclass
class _JobTimeline:
    """What the fold has seen of one job so far."""

    owner: str = ""
    status: str = JobStatus.QUEUED.value
    submitted_at: float = 0.0
    first_assigned_at: Optional[float] = None
    last_assigned_at: Optional[float] = None
    slot: Optional[Tuple[str, str]] = None  # (vantage_point, device_serial)
    requeues: int = 0
    rejected: bool = False


@dataclass
class _DeviceStats:
    assignments: int = 0
    requeues: int = 0
    completed: int = 0
    failed: int = 0
    busy_seconds: float = 0.0


@dataclass
class _OwnerStats:
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    device_seconds: float = 0.0
    queue_wait_s: float = 0.0


class JobLifecycleReducer:
    """Folds the job lifecycle into owner, device and fleet views."""

    def __init__(self) -> None:
        self._jobs: Dict[int, _JobTimeline] = {}
        self._owners: Dict[str, _OwnerStats] = {}
        self._devices: Dict[Tuple[str, str], _DeviceStats] = {}
        self._wait_samples: List[float] = []
        self._run_samples: List[float] = []
        self._requeues = 0

    # -- folding ------------------------------------------------------------
    def fold(self, record: OpsRecord) -> None:
        handler = self._HANDLERS.get(record.kind)
        if handler is not None:
            handler(self, record)

    def _owner(self, owner: str) -> _OwnerStats:
        stats = self._owners.get(owner)
        if stats is None:
            stats = self._owners[owner] = _OwnerStats()
        return stats

    def _device(self, slot: Tuple[str, str]) -> _DeviceStats:
        stats = self._devices.get(slot)
        if stats is None:
            stats = self._devices[slot] = _DeviceStats()
        return stats

    def _on_submitted(self, record: OpsRecord) -> None:
        data = record.data
        job_id = data["job_id"]
        timeline = _JobTimeline(
            owner=str(data.get("owner", "")),
            status=str(data.get("status", JobStatus.QUEUED.value)),
            submitted_at=float(data.get("submitted_at", record.ts)),
        )
        self._jobs[job_id] = timeline
        self._owner(timeline.owner).submitted += 1

    def _on_approved(self, record: OpsRecord) -> None:
        timeline = self._jobs.get(record.data["job_id"])
        if timeline is None:
            return
        timeline.status = JobStatus.QUEUED.value

    def _on_assigned(self, record: OpsRecord) -> None:
        timeline = self._jobs.get(record.data["job_id"])
        if timeline is None:
            return
        vantage_point = record.data.get("vantage_point")
        device_serial = record.data.get("device_serial")
        slot = (str(vantage_point or "?"), str(device_serial or "?"))
        if timeline.first_assigned_at is None:
            timeline.first_assigned_at = record.ts
            wait = record.ts - timeline.submitted_at
            self._wait_samples.append(wait)
            self._owner(timeline.owner).queue_wait_s += wait
        timeline.last_assigned_at = record.ts
        timeline.slot = slot
        timeline.status = JobStatus.RUNNING.value
        self._device(slot).assignments += 1

    def _close_interval(self, timeline: _JobTimeline, end_ts: float) -> float:
        """Close an open device-occupancy interval; returns its length."""
        if timeline.slot is None or timeline.last_assigned_at is None:
            return 0.0
        busy = max(0.0, end_ts - timeline.last_assigned_at)
        self._device(timeline.slot).busy_seconds += busy
        return busy

    def _on_requeued(self, record: OpsRecord) -> None:
        timeline = self._jobs.get(record.data["job_id"])
        if timeline is None:
            return
        self._close_interval(timeline, record.ts)
        if timeline.slot is not None:
            self._device(timeline.slot).requeues += 1
        timeline.requeues += 1
        self._requeues += 1
        timeline.slot = None
        timeline.last_assigned_at = None
        timeline.status = JobStatus.QUEUED.value

    def _on_finished(self, record: OpsRecord) -> None:
        timeline = self._jobs.get(record.data["job_id"])
        if timeline is None:
            return
        status = str(record.data["status"])
        finished_at = float(record.data.get("finished_at", record.ts))
        busy = self._close_interval(timeline, finished_at)
        owner = self._owner(timeline.owner)
        owner.device_seconds += busy
        if timeline.last_assigned_at is not None:
            self._run_samples.append(finished_at - timeline.last_assigned_at)
        if status == JobStatus.COMPLETED.value:
            owner.completed += 1
            if timeline.slot is not None:
                self._device(timeline.slot).completed += 1
        elif status == JobStatus.FAILED.value:
            owner.failed += 1
            if timeline.slot is not None:
                self._device(timeline.slot).failed += 1
        timeline.status = status
        timeline.slot = None
        timeline.last_assigned_at = None

    def _on_cancelled(self, record: OpsRecord) -> None:
        timeline = self._jobs.get(record.data["job_id"])
        if timeline is None:
            return
        busy = self._close_interval(timeline, record.ts)
        owner = self._owner(timeline.owner)
        owner.device_seconds += busy
        owner.cancelled += 1
        timeline.status = JobStatus.CANCELLED.value
        timeline.slot = None
        timeline.last_assigned_at = None

    def _on_rejected(self, record: OpsRecord) -> None:
        timeline = self._jobs.get(record.data["job_id"])
        if timeline is None or timeline.rejected:
            return
        timeline.rejected = True
        self._owner(timeline.owner).rejected += 1

    _HANDLERS = {
        KIND_JOB_SUBMITTED: _on_submitted,
        KIND_JOB_APPROVED: _on_approved,
        KIND_JOB_ASSIGNED: _on_assigned,
        KIND_JOB_REQUEUED: _on_requeued,
        KIND_JOB_FINISHED: _on_finished,
        KIND_JOB_CANCELLED: _on_cancelled,
        KIND_JOB_REJECTED: _on_rejected,
    }

    # -- views --------------------------------------------------------------
    def job_counts(self) -> Dict[str, int]:
        counts = {
            "submitted": len(self._jobs),
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "rejected": 0,
            "requeues": self._requeues,
            "running": 0,
            "queued": 0,
            "pending_approval": 0,
        }
        for timeline in self._jobs.values():
            if timeline.status == JobStatus.COMPLETED.value:
                counts["completed"] += 1
            elif timeline.status == JobStatus.FAILED.value:
                counts["failed"] += 1
            elif timeline.status == JobStatus.CANCELLED.value:
                counts["cancelled"] += 1
            elif timeline.status == JobStatus.RUNNING.value:
                counts["running"] += 1
            elif timeline.status == JobStatus.PENDING_APPROVAL.value:
                counts["pending_approval"] += 1
            else:
                counts["queued"] += 1
            if timeline.rejected:
                counts["rejected"] += 1
        return counts

    def owner_rows(self) -> List[Dict[str, object]]:
        rows = []
        for owner in sorted(self._owners):
            stats = self._owners[owner]
            rows.append(
                {
                    "owner": owner,
                    "submitted": stats.submitted,
                    "completed": stats.completed,
                    "failed": stats.failed,
                    "cancelled": stats.cancelled,
                    "rejected": stats.rejected,
                    "device_seconds": round6(stats.device_seconds),
                    "queue_wait_s": round6(stats.queue_wait_s),
                }
            )
        return rows

    def device_rows(self, window_s: float) -> List[Dict[str, object]]:
        rows = []
        for slot in sorted(self._devices):
            stats = self._devices[slot]
            terminal = stats.completed + stats.failed
            rows.append(
                {
                    "vantage_point": slot[0],
                    "device_serial": slot[1],
                    "assignments": stats.assignments,
                    "requeues": stats.requeues,
                    "completed": stats.completed,
                    "failed": stats.failed,
                    "busy_seconds": round6(stats.busy_seconds),
                    "failure_rate": round6(stats.failed / terminal) if terminal else 0.0,
                    "occupancy": round6(stats.busy_seconds / window_s)
                    if window_s > 0
                    else 0.0,
                }
            )
        return rows

    def wait_distribution(self) -> Dict[str, object]:
        return distribution_view(self._wait_samples)

    def run_distribution(self) -> Dict[str, object]:
        return distribution_view(self._run_samples)


class CreditReducer:
    """Per-account credit burn (negative usage) and grants (positive)."""

    def __init__(self) -> None:
        self._burned: Dict[str, float] = {}
        self._granted: Dict[str, float] = {}

    def fold(self, record: OpsRecord) -> None:
        if record.kind != KIND_CREDIT_TXN:
            return
        account = str(record.data.get("account", ""))
        amount = float(record.data.get("amount_device_hours", 0.0))
        if amount < 0:
            self._burned[account] = self._burned.get(account, 0.0) - amount
        elif amount > 0:
            self._granted[account] = self._granted.get(account, 0.0) + amount

    def burned(self, account: str) -> float:
        return self._burned.get(account, 0.0)

    def granted(self, account: str) -> float:
        return self._granted.get(account, 0.0)

    def accounts(self) -> List[str]:
        return sorted(set(self._burned) | set(self._granted))


class ReservationReducer:
    """Interactive-session bookings: counts and device-hours reserved."""

    def __init__(self) -> None:
        self.created = 0
        self.cancelled = 0
        self.booked_device_hours = 0.0

    def fold(self, record: OpsRecord) -> None:
        if record.kind == KIND_RESERVATION_CREATED:
            self.created += 1
            self.booked_device_hours += float(record.data.get("duration_s", 0.0)) / 3600.0
        elif record.kind == KIND_RESERVATION_CANCELLED:
            self.cancelled += 1

    def view(self) -> Dict[str, object]:
        return {
            "created": self.created,
            "cancelled": self.cancelled,
            "booked_device_hours": round6(self.booked_device_hours),
        }


@dataclass
class _Bucket:
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0


class ThroughputReducer:
    """Fleet throughput bucketed at ``base_bucket_s`` resolution.

    ``timeseries(bucket_s)`` re-buckets to any coarser *multiple* of the
    base resolution (a non-multiple is rounded up, a finer size clamps to
    the base — the response's ``bucket_s`` reports what was used), so one
    fold serves every zoom level with honest bucket labels.
    """

    def __init__(self, base_bucket_s: float = 60.0) -> None:
        if base_bucket_s <= 0:
            raise ValueError("base_bucket_s must be positive")
        self.base_bucket_s = float(base_bucket_s)
        self._buckets: Dict[int, _Bucket] = {}

    def _bucket(self, ts: float) -> _Bucket:
        index = int(ts // self.base_bucket_s)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = _Bucket()
        return bucket

    def fold(self, record: OpsRecord) -> None:
        if record.kind == KIND_JOB_SUBMITTED:
            self._bucket(float(record.data.get("submitted_at", record.ts))).submitted += 1
        elif record.kind == KIND_JOB_FINISHED:
            ts = float(record.data.get("finished_at", record.ts))
            status = record.data.get("status")
            if status == JobStatus.FAILED.value:
                self._bucket(ts).failed += 1
            else:
                self._bucket(ts).completed += 1
        elif record.kind == KIND_JOB_CANCELLED:
            self._bucket(record.ts).cancelled += 1

    def timeseries(self, bucket_s: Optional[float] = None) -> Dict[str, object]:
        size = self.base_bucket_s if bucket_s is None else float(bucket_s)
        if size < self.base_bucket_s:
            size = self.base_bucket_s  # cannot zoom below fold resolution
        else:
            # Base buckets are assigned whole; a query size that is not a
            # multiple of the base would mislabel counts near boundaries,
            # so round it up to the next multiple (reported in bucket_s).
            size = math.ceil(round(size / self.base_bucket_s, 9)) * self.base_bucket_s
        merged: Dict[int, _Bucket] = {}
        for index in sorted(self._buckets):
            start = index * self.base_bucket_s
            target = int(start // size)
            bucket = merged.setdefault(target, _Bucket())
            source = self._buckets[index]
            bucket.submitted += source.submitted
            bucket.completed += source.completed
            bucket.failed += source.failed
            bucket.cancelled += source.cancelled
        return {
            "bucket_s": round6(size),
            "buckets": [
                {
                    "start_s": round6(index * size),
                    "submitted": merged[index].submitted,
                    "completed": merged[index].completed,
                    "failed": merged[index].failed,
                    "cancelled": merged[index].cancelled,
                }
                for index in sorted(merged)
            ],
        }
