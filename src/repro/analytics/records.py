"""Canonical operations records and the two sources that produce them.

The analytics subsystem is an event-sourcing fold: every operational fact
it reports is derived from a stream of :class:`OpsRecord` values — one
timestamped, primitive-valued record per platform mutation.  Two sources
produce that stream, and the whole design hinges on them being
*indistinguishable* to the reducers downstream:

* :class:`JournalReplaySource` — **cold**: reads a persistence
  :class:`~repro.accessserver.persistence.StorageBackend` (the write-ahead
  journal plus its snapshot) and normalises each journal record.  Snapshot
  compaction folds old records away, so the source first *synthesises*
  records from the snapshot's materialised state (a job row becomes its
  ``job.submitted``/``job.assigned``/``job.finished`` lifecycle at the
  timestamps the row retained) and then applies journal records with
  ``seq`` greater than the snapshot's — the same replay guard crash
  recovery uses.
* :class:`LiveBusTap` — **hot**: subscribes to the access server's
  :class:`~repro.simulation.events.EventBus` and normalises each
  ``dispatch.*`` record plus the ``job.*`` / ``reservation.*`` /
  ``credit.*`` lifecycle topics the server publishes alongside its
  persistence hooks, folding into the engine as the simulation runs.

Both sources map into one canonical vocabulary (the journal's record
kinds), so a report folded live and a report folded from a cold replay of
the same *uncompacted* journal are byte-identical — the equivalence the
test suite pins.  Once a checkpoint folds the journal into a snapshot,
replay sees only what the snapshot retains: totals and final timelines
survive, but requeue counts, approval latency, exact cancel times,
retention-expired terminal jobs and already-cancelled reservations do
not (see DESIGN.md, "live-vs-replay semantics").  Records that carry no
operational signal (``dispatch.batch``, ``policy.changed``, account
bookkeeping) normalise to ``None`` and are skipped by both sources
symmetrically.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.accessserver.jobs import JobStatus
from repro.accessserver.persistence import (
    DISPATCH_TOPIC_KINDS,
    FileBackend,
    StorageBackend,
)
from repro.simulation.events import BusEvent

#: Canonical record kinds the reducers consume.  The vocabulary is the
#: write-ahead journal's — the live tap translates bus topics into it.
KIND_JOB_SUBMITTED = "job.submitted"
KIND_JOB_APPROVED = "job.approved"
KIND_JOB_ASSIGNED = "job.assigned"
KIND_JOB_REQUEUED = "job.requeued"
KIND_JOB_FINISHED = "job.finished"
KIND_JOB_CANCELLED = "job.cancelled"
KIND_JOB_REJECTED = "job.rejected"
KIND_RESERVATION_CREATED = "reservation.created"
KIND_RESERVATION_CANCELLED = "reservation.cancelled"
KIND_CREDIT_TXN = "credit.txn"


@dataclass(frozen=True)
class OpsRecord:
    """One canonical operational fact: ``(ts, kind, data)``.

    ``data`` holds only JSON primitives; two sources observing the same
    underlying mutation must produce equal records.
    """

    ts: float
    kind: str
    data: Dict[str, object] = field(default_factory=dict)


def _assigned_data(
    job_id, vantage_point, device_serial
) -> Dict[str, object]:
    """Canonical ``job.assigned`` payload (single-sourced across sources)."""
    return {
        "job_id": job_id,
        "vantage_point": vantage_point,
        "device_serial": device_serial,
    }


def _reservation_data(data: Dict[str, object]) -> Dict[str, object]:
    """Canonical ``reservation.created`` payload from any source's fields."""
    return {
        "reservation_id": data["reservation_id"],
        "username": data.get("username", ""),
        "vantage_point": data.get("vantage_point"),
        "device_serial": data.get("device_serial"),
        "start_s": float(data.get("start_s", 0.0)),
        "duration_s": float(data.get("duration_s", 0.0)),
    }


def _credit_txn_data(data: Dict[str, object]) -> Dict[str, object]:
    """Canonical ``credit.txn`` payload from any source's fields."""
    return {
        "account": data["account"],
        "kind": data.get("kind", ""),
        "amount_device_hours": float(data.get("amount_device_hours", 0.0)),
    }


def _job_submitted_data(job: Dict[str, object]) -> Dict[str, object]:
    """Canonical ``job.submitted`` payload from a serialized job row."""
    spec = job.get("spec", {})
    return {
        "job_id": job["job_id"],
        "name": spec.get("name", ""),
        "owner": spec.get("owner", ""),
        "priority": float(spec.get("priority", 0.0)),
        "timeout_s": float(spec.get("timeout_s", 3600.0)),
        "is_pipeline_change": bool(spec.get("is_pipeline_change", False)),
        "status": job.get("status", JobStatus.QUEUED.value),
        "submitted_at": float(job.get("submitted_at", 0.0)),
    }


def normalize_journal_record(record: Dict[str, object]) -> Optional[OpsRecord]:
    """One raw journal record -> its canonical form (``None`` = no signal)."""
    kind = record.get("kind")
    ts = float(record.get("ts", 0.0))
    data = record.get("data", {})
    if kind == KIND_JOB_SUBMITTED:
        return OpsRecord(ts, kind, _job_submitted_data(data["job"]))
    if kind == KIND_JOB_ASSIGNED:
        return OpsRecord(
            ts,
            kind,
            _assigned_data(
                data["job_id"], data.get("vantage_point"), data.get("device_serial")
            ),
        )
    if kind == KIND_JOB_FINISHED:
        return OpsRecord(
            ts,
            kind,
            {
                "job_id": data["job_id"],
                "status": data["status"],
                "finished_at": float(data.get("finished_at") or ts),
            },
        )
    if kind in (KIND_JOB_APPROVED, KIND_JOB_REQUEUED, KIND_JOB_CANCELLED, KIND_JOB_REJECTED):
        return OpsRecord(ts, kind, {"job_id": data["job_id"]})
    if kind == KIND_RESERVATION_CREATED:
        return OpsRecord(ts, kind, _reservation_data(data))
    if kind == KIND_RESERVATION_CANCELLED:
        return OpsRecord(ts, kind, {"reservation_id": data["reservation_id"]})
    if kind == KIND_CREDIT_TXN:
        return OpsRecord(float(data.get("timestamp", ts)), kind, _credit_txn_data(data))
    # user.created, vantage_point.registered, policy.changed, credit.enabled,
    # credit.account_opened, job.rejected reasons ... — configuration and
    # bookkeeping records with no utilisation signal.
    return None


#: Bus topics the live tap translates into journal-vocabulary kinds —
#: imported from the persistence layer so the two consumers of the
#: ``dispatch.*`` stream can never apply different translations.
_BUS_TRANSLATIONS = DISPATCH_TOPIC_KINDS

#: Bus topics the access server publishes already in canonical vocabulary
#: (alongside its persistence hooks — see ``server.py``).
_BUS_CANONICAL = (
    KIND_JOB_SUBMITTED,
    KIND_JOB_APPROVED,
    KIND_JOB_FINISHED,
    KIND_JOB_REJECTED,
    KIND_RESERVATION_CREATED,
    KIND_CREDIT_TXN,
)


def normalize_bus_event(event: BusEvent) -> Optional[OpsRecord]:
    """One live bus record -> its canonical form (``None`` = no signal)."""
    topic = event.topic
    payload = event.payload
    translated = _BUS_TRANSLATIONS.get(topic)
    if translated == KIND_JOB_ASSIGNED:
        return OpsRecord(
            event.timestamp,
            KIND_JOB_ASSIGNED,
            _assigned_data(
                payload["job_id"],
                payload.get("vantage_point"),
                payload.get("device_serial"),
            ),
        )
    if translated in (KIND_JOB_REQUEUED, KIND_JOB_CANCELLED):
        return OpsRecord(event.timestamp, translated, {"job_id": payload["job_id"]})
    if translated == KIND_RESERVATION_CANCELLED:
        return OpsRecord(
            event.timestamp, translated, {"reservation_id": payload["reservation_id"]}
        )
    if topic == KIND_JOB_SUBMITTED:
        return OpsRecord(
            event.timestamp,
            topic,
            {
                "job_id": payload["job_id"],
                "name": payload.get("name", ""),
                "owner": payload.get("owner", ""),
                "priority": float(payload.get("priority", 0.0)),
                "timeout_s": float(payload.get("timeout_s", 3600.0)),
                "is_pipeline_change": bool(payload.get("is_pipeline_change", False)),
                "status": payload.get("status", JobStatus.QUEUED.value),
                "submitted_at": float(payload.get("submitted_at", event.timestamp)),
            },
        )
    if topic in (KIND_JOB_APPROVED, KIND_JOB_REJECTED):
        return OpsRecord(event.timestamp, topic, {"job_id": payload["job_id"]})
    if topic == KIND_JOB_FINISHED:
        return OpsRecord(
            event.timestamp,
            topic,
            {
                "job_id": payload["job_id"],
                "status": payload["status"],
                "finished_at": float(payload.get("finished_at") or event.timestamp),
            },
        )
    if topic == KIND_RESERVATION_CREATED:
        return OpsRecord(event.timestamp, topic, _reservation_data(payload))
    if topic == KIND_CREDIT_TXN:
        return OpsRecord(
            float(payload.get("timestamp", event.timestamp)),
            topic,
            _credit_txn_data(payload),
        )
    return None


_TERMINAL = (JobStatus.COMPLETED.value, JobStatus.FAILED.value)


def synthesize_snapshot_records(snapshot: Optional[Dict[str, object]]) -> List[OpsRecord]:
    """Reconstruct canonical records from a snapshot's materialised state.

    Compaction folds journal history into the snapshot; this inverts what
    can be inverted: each job row becomes its lifecycle at the timestamps
    the row kept (requeue history and approval latency are gone — the
    documented cost of compaction), reservations become their creation
    records, and credit accounts replay their retained transaction logs.
    A cancelled row kept no cancellation time, so its record is stamped at
    the best bound the snapshot retains (``finished_at`` or submission).
    """
    if snapshot is None:
        return []
    records: List[OpsRecord] = []
    for job in snapshot.get("jobs", ()):
        spec = job.get("spec", {})
        submitted = dict(_job_submitted_data(job))
        # The row's status is the *folded* status; at submission time the
        # job was either queued or awaiting approval.
        submitted["status"] = (
            JobStatus.PENDING_APPROVAL.value
            if spec.get("is_pipeline_change", False)
            else JobStatus.QUEUED.value
        )
        submitted_at = float(job.get("submitted_at", 0.0))
        records.append(OpsRecord(submitted_at, KIND_JOB_SUBMITTED, submitted))
        status = job.get("status")
        if (
            spec.get("is_pipeline_change", False)
            and status != JobStatus.PENDING_APPROVAL.value
        ):
            # The row left the approval queue before the checkpoint; the
            # snapshot kept no approval timestamp (documented compaction
            # loss), so the best bound is submission time.
            records.append(
                OpsRecord(submitted_at, KIND_JOB_APPROVED, {"job_id": job["job_id"]})
            )
        started_at = job.get("started_at")
        if started_at is not None and status in (JobStatus.RUNNING.value, *_TERMINAL):
            records.append(
                OpsRecord(
                    float(started_at),
                    KIND_JOB_ASSIGNED,
                    _assigned_data(
                        job["job_id"],
                        job.get("assigned_vantage_point"),
                        job.get("assigned_device"),
                    ),
                )
            )
        if status in _TERMINAL:
            finished_at = float(job.get("finished_at") or submitted_at)
            records.append(
                OpsRecord(
                    finished_at,
                    KIND_JOB_FINISHED,
                    {"job_id": job["job_id"], "status": status, "finished_at": finished_at},
                )
            )
        elif status == JobStatus.CANCELLED.value:
            cancelled_at = float(job.get("finished_at") or submitted_at)
            records.append(
                OpsRecord(cancelled_at, KIND_JOB_CANCELLED, {"job_id": job["job_id"]})
            )
            # A cancelled row whose error records an administrator
            # rejection was a rejected pipeline change; the journal's
            # job.rejected record was folded away but the flag survives.
            if str(job.get("error") or "").startswith("rejected"):
                records.append(
                    OpsRecord(
                        cancelled_at, KIND_JOB_REJECTED, {"job_id": job["job_id"]}
                    )
                )
    for reservation in snapshot.get("reservations", ()):
        records.append(
            OpsRecord(
                float(reservation.get("start_s", 0.0)),
                KIND_RESERVATION_CREATED,
                _reservation_data(reservation),
            )
        )
    credit = snapshot.get("credit")
    if credit is not None:
        for account in credit.get("accounts", ()):
            for txn in account.get("transactions", ()):
                data = dict(txn)
                data.setdefault("account", account.get("owner", ""))
                records.append(
                    OpsRecord(
                        float(txn.get("timestamp", 0.0)),
                        KIND_CREDIT_TXN,
                        _credit_txn_data(data),
                    )
                )
    return records


class RecordSource(abc.ABC):
    """Anything that yields canonical :class:`OpsRecord` values to fold."""

    @abc.abstractmethod
    def records(self) -> Iterator[OpsRecord]:
        """The canonical record stream, in fold order."""


class JournalReplaySource(RecordSource):
    """Cold source: snapshot synthesis + journal records past the snapshot.

    Accepts a :class:`~repro.accessserver.persistence.StorageBackend` or a
    state-directory path (which becomes a read-only ``FileBackend``).
    """

    def __init__(self, backend: Union[StorageBackend, str, Path]) -> None:
        if isinstance(backend, (str, Path)):
            backend = FileBackend(backend)
        self._backend = backend

    @property
    def backend(self) -> StorageBackend:
        return self._backend

    def records(self) -> Iterator[OpsRecord]:
        snapshot = self._backend.read_snapshot()
        for record in synthesize_snapshot_records(snapshot):
            yield record
        floor = snapshot.get("sequence", 0) if snapshot is not None else 0
        for raw in self._backend.read_journal():
            if raw.get("seq", 0) <= floor:
                continue  # already folded into the snapshot (same replay
                # guard recover_into applies)
            normalized = normalize_journal_record(raw)
            if normalized is not None:
                yield normalized


class LiveBusTap:
    """Hot source: folds the server's event bus into an engine as it runs.

    Not a :class:`RecordSource` iterator — records are pushed by the bus —
    but it feeds the *same* reducer pipeline through
    :meth:`~repro.analytics.engine.AnalyticsEngine.fold`.
    """

    def __init__(self, engine, server) -> None:
        self._engine = engine
        self._server = server
        self._attached = False

    @property
    def attached(self) -> bool:
        return self._attached

    def attach(self) -> None:
        if self._attached:
            return
        self._server.events.subscribe(None, self._on_event)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        self._server.events.unsubscribe(None, self._on_event)
        self._attached = False

    def _on_event(self, event: BusEvent) -> None:
        record = normalize_bus_event(event)
        if record is not None:
            self._engine.fold(record)
