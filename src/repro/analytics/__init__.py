"""Journal-backed event sourcing for platform operations analytics.

BatteryLab is a *shared* measurement platform, which makes operations
questions — who uses the fleet, how long do jobs wait, which devices are
hot or flaky — first-class concerns.  This package folds the records the
platform already produces (the write-ahead journal from
:mod:`repro.accessserver.persistence`, the live event bus the dispatch
pipeline publishes on) into materialised operational views:

* :class:`~repro.analytics.engine.AnalyticsEngine` — the reducer
  pipeline; ``report()`` and ``timeseries()`` are the consumer surface.
* :class:`~repro.analytics.records.JournalReplaySource` /
  :class:`~repro.analytics.records.LiveBusTap` — the cold and hot record
  sources; both normalise into one canonical vocabulary so live and
  replayed reports are identical for the same workload.

Exposed end to end: API v2 operations ``analytics.report`` /
``analytics.timeseries`` (:mod:`repro.api`), the CLI ``report``
subcommand, and ``examples/operations_report.py``.
"""

from repro.analytics.engine import AnalyticsEngine, report_json
from repro.analytics.records import (
    JournalReplaySource,
    LiveBusTap,
    OpsRecord,
    RecordSource,
    normalize_bus_event,
    normalize_journal_record,
    synthesize_snapshot_records,
)
from repro.analytics.reducers import (
    CreditReducer,
    JobLifecycleReducer,
    ReservationReducer,
    ThroughputReducer,
    distribution_view,
    percentile,
)

__all__ = [
    "AnalyticsEngine",
    "CreditReducer",
    "JobLifecycleReducer",
    "JournalReplaySource",
    "LiveBusTap",
    "OpsRecord",
    "RecordSource",
    "ReservationReducer",
    "ThroughputReducer",
    "distribution_view",
    "normalize_bus_event",
    "normalize_journal_record",
    "percentile",
    "report_json",
    "synthesize_snapshot_records",
]
