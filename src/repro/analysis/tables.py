"""Plain-text and Markdown table rendering.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers turn lists of row dictionaries into aligned
plain-text tables (for the bench output) and Markdown tables (for
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render rows as an aligned plain-text table.

    ``columns`` fixes the column order; by default the keys of the first row
    are used.  Missing values render as empty cells.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    keys = list(columns) if columns is not None else list(rows[0].keys())
    header = [str(key) for key in keys]
    body = [[_stringify(row.get(key, "")) for key in keys] for row in rows]
    widths = [
        max(len(header[i]), max(len(line[i]) for line in body)) for i in range(len(keys))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(keys))))
    lines.append("  ".join("-" * widths[i] for i in range(len(keys))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(keys))))
    return "\n".join(lines)


def rows_to_markdown(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(no rows)"
    keys = list(columns) if columns is not None else list(rows[0].keys())
    lines = [
        "| " + " | ".join(str(key) for key in keys) + " |",
        "|" + "|".join("---" for _ in keys) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(row.get(key, "")) for key in keys) + " |")
    return "\n".join(lines)
