"""Analysis helpers.

Small, dependency-light utilities used by the experiment drivers and the
benchmark harness to turn raw traces and sample series into the statistics
and tables the paper reports: empirical CDFs (Figures 2, 4 and 5), summary
statistics with mean/median/std/error bars (Figures 3 and 6), battery
discharge aggregation, and plain-text table rendering for EXPERIMENTS.md
and the benchmark output.
"""

from repro.analysis.cdf import EmpiricalCdf, empirical_cdf
from repro.analysis.stats import SeriesSummary, summarize
from repro.analysis.tables import format_table, rows_to_markdown

__all__ = [
    "EmpiricalCdf",
    "empirical_cdf",
    "SeriesSummary",
    "summarize",
    "format_table",
    "rows_to_markdown",
]
