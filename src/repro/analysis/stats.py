"""Summary statistics for measurement series.

Figures 3 and 6 of the paper report "average battery discharge (standard
deviation as errorbars)"; the system-performance text reports means with
plus/minus deviations.  :func:`summarize` produces exactly those fields from
a series of repetition-level measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


@dataclass(frozen=True)
class SeriesSummary:
    """Mean/median/std/extremes of one measurement series."""

    label: str
    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "label": self.label,
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }

    def errorbar(self) -> str:
        """Render as ``mean ± std`` the way the paper's text reports it."""
        return f"{self.mean:.2f} ± {self.std:.2f}"


def summarize(samples: Sequence[float], label: str = "") -> SeriesSummary:
    """Compute the :class:`SeriesSummary` of a non-empty sample sequence."""
    array = np.asarray(list(samples), dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarize an empty series")
    return SeriesSummary(
        label=label,
        count=int(array.size),
        mean=float(np.mean(array)),
        median=float(np.median(array)),
        std=float(np.std(array, ddof=1)) if array.size > 1 else 0.0,
        minimum=float(np.min(array)),
        maximum=float(np.max(array)),
    )


def relative_difference(value: float, reference: float) -> float:
    """``(value - reference) / reference`` guarded against a zero reference."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return (value - reference) / reference
