"""Empirical cumulative distribution functions.

Three of the paper's figures are CDFs (current drawn, device CPU,
controller CPU).  :class:`EmpiricalCdf` wraps a sample set with the queries
those figures need: evaluation at a point, quantiles, and the fraction of
samples above a threshold (used for statements like "in 10% of the
measurements the load is over 95%").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class EmpiricalCdf:
    """An immutable empirical CDF over a one-dimensional sample."""

    values: np.ndarray
    probabilities: np.ndarray
    label: str = ""

    def __len__(self) -> int:
        return len(self.values)

    def evaluate(self, x: float) -> float:
        """P(X <= x) under the empirical distribution."""
        if len(self.values) == 0:
            return 0.0
        return float(np.searchsorted(self.values, x, side="right") / len(self.values))

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of the sample (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if len(self.values) == 0:
            raise ValueError("cannot take a quantile of an empty CDF")
        return float(np.quantile(self.values, q))

    def median(self) -> float:
        return self.quantile(0.5)

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples strictly greater than ``threshold``."""
        if len(self.values) == 0:
            return 0.0
        return float(np.mean(self.values > threshold))

    def as_points(self, points: int = 100) -> List[Tuple[float, float]]:
        """Down-sampled (value, probability) pairs for plotting or reporting."""
        if len(self.values) == 0:
            return []
        if points >= len(self.values):
            return list(zip(self.values.tolist(), self.probabilities.tolist()))
        indices = np.linspace(0, len(self.values) - 1, points).astype(int)
        return list(
            zip(self.values[indices].tolist(), self.probabilities[indices].tolist())
        )


def empirical_cdf(samples: Sequence[float], label: str = "") -> EmpiricalCdf:
    """Build an :class:`EmpiricalCdf` from raw samples."""
    array = np.asarray(list(samples), dtype=float)
    if array.ndim != 1:
        raise ValueError("samples must be one-dimensional")
    order = np.sort(array)
    if len(order) == 0:
        return EmpiricalCdf(values=order, probabilities=order.copy(), label=label)
    probabilities = np.arange(1, len(order) + 1) / len(order)
    return EmpiricalCdf(values=order, probabilities=probabilities, label=label)
