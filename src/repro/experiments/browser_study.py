"""Browser energy study (Figures 3 and 4).

The demonstration of Section 4.2: four Android browsers (Brave, Chrome,
Edge, Firefox) each sequentially load ten popular news sites over ADB-over-
WiFi automation, wait six seconds per page and scroll repeatedly; every
browser is re-tested several times, and the whole experiment is repeated
with device mirroring active and inactive.

The paper's findings this module regenerates:

* Figure 3 — mean battery discharge per browser with standard-deviation
  error bars; Brave consumes the least, Firefox the most, and mirroring adds
  a roughly constant overhead regardless of the browser;
* Figure 4 — CDFs of device CPU utilisation for Brave and Chrome with and
  without mirroring; Brave's median sits around 12% versus Chrome's 20%, and
  mirroring shifts both up by about 5%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cdf import EmpiricalCdf, empirical_cdf
from repro.analysis.stats import SeriesSummary, summarize
from repro.automation.channels import AdbAutomation
from repro.automation.scripts import BrowserAutomationScript, BrowserRunStats
from repro.core.platform import BatteryLabPlatform, VantagePointHandle, build_default_platform
from repro.core.results import MeasurementResult
from repro.core.session import MeasurementSession
from repro.device.adb import AdbTransport
from repro.workloads.browsers import browser_profile

#: Browsers of the demonstration study, in the paper's presentation order.
DEFAULT_BROWSERS: Tuple[str, ...] = ("brave", "chrome", "edge", "firefox")


@dataclass
class BrowserRunRecord:
    """One monitored browser run (one repetition)."""

    browser: str
    mirroring: bool
    repetition: int
    result: MeasurementResult
    stats: BrowserRunStats
    bytes_transferred: int

    def discharge_mah(self) -> float:
        return self.result.discharge_mah()


@dataclass
class BrowserStudyResult:
    """All runs of the browser study plus the derived figures."""

    runs: List[BrowserRunRecord] = field(default_factory=list)

    def browsers(self) -> List[str]:
        seen: List[str] = []
        for run in self.runs:
            if run.browser not in seen:
                seen.append(run.browser)
        return seen

    def runs_for(self, browser: str, mirroring: bool) -> List[BrowserRunRecord]:
        return [
            run
            for run in self.runs
            if run.browser == browser and run.mirroring is mirroring
        ]

    # -- Figure 3 -----------------------------------------------------------------
    def discharge_summary(self, browser: str, mirroring: bool) -> SeriesSummary:
        values = [run.discharge_mah() for run in self.runs_for(browser, mirroring)]
        return summarize(values, label=f"{browser}{'+mirroring' if mirroring else ''}")

    def discharge_rows(self) -> List[dict]:
        """Rows of Figure 3: mean discharge and std per browser and mirroring mode."""
        rows = []
        for browser in self.browsers():
            for mirroring in (False, True):
                if not self.runs_for(browser, mirroring):
                    continue
                summary = self.discharge_summary(browser, mirroring)
                rows.append(
                    {
                        "browser": browser,
                        "mirroring": mirroring,
                        "mean_discharge_mah": round(summary.mean, 2),
                        "std_discharge_mah": round(summary.std, 2),
                        "runs": summary.count,
                    }
                )
        return rows

    def discharge_ranking(self, mirroring: bool = False) -> List[str]:
        """Browsers ordered from least to most consumed energy."""
        browsers = [b for b in self.browsers() if self.runs_for(b, mirroring)]
        return sorted(browsers, key=lambda b: self.discharge_summary(b, mirroring).mean)

    def mirroring_overhead_mah(self, browser: str) -> float:
        """Extra discharge caused by mirroring for one browser (Figure 3's gap)."""
        return (
            self.discharge_summary(browser, True).mean
            - self.discharge_summary(browser, False).mean
        )

    # -- Figure 4 -----------------------------------------------------------------
    def device_cpu_samples(self, browser: str, mirroring: bool) -> List[float]:
        samples: List[float] = []
        for run in self.runs_for(browser, mirroring):
            samples.extend(run.result.device_cpu_percent)
        return samples

    def device_cpu_cdf(self, browser: str, mirroring: bool) -> EmpiricalCdf:
        return empirical_cdf(
            self.device_cpu_samples(browser, mirroring),
            label=f"{browser}{'+mirroring' if mirroring else ''}",
        )

    def device_cpu_rows(self) -> List[dict]:
        rows = []
        for browser in self.browsers():
            for mirroring in (False, True):
                samples = self.device_cpu_samples(browser, mirroring)
                if not samples:
                    continue
                summary = summarize(samples)
                rows.append(
                    {
                        "browser": browser,
                        "mirroring": mirroring,
                        "median_cpu_percent": round(summary.median, 1),
                        "p90_cpu_percent": round(
                            empirical_cdf(samples).quantile(0.9), 1
                        ),
                    }
                )
        return rows


def run_browser_measurement(
    platform: BatteryLabPlatform,
    handle: VantagePointHandle,
    browser: str,
    mirroring: bool,
    dwell_s: float = 6.0,
    scrolls_per_page: int = 20,
    scroll_interval_s: float = 1.5,
    urls: Optional[Sequence[str]] = None,
    sample_rate_hz: float = 100.0,
    label: Optional[str] = None,
) -> Tuple[MeasurementResult, BrowserRunStats, int]:
    """Run one monitored browser workload and return its result.

    The browser state is cleaned over ADB *before* the measurement window
    opens (the paper's recommendation), then the measurement session switches
    the device to battery bypass and the automation script drives the full
    site list once.
    """
    controller = handle.controller
    device = handle.device()
    profile = browser_profile(browser)
    behaviour = handle.browser(device.serial, browser)
    behaviour.reset_counters()
    channel = AdbAutomation(controller, device.serial, AdbTransport.WIFI)
    script = BrowserAutomationScript(
        channel,
        profile,
        platform.context,
        urls=urls,
        dwell_s=dwell_s,
        scrolls_per_page=scrolls_per_page,
        scroll_interval_s=scroll_interval_s,
    )
    handle.monitor.set_sample_rate(sample_rate_hz)
    # Setup outside the measurement window: clean state + first-launch dialogs.
    script.prepare()
    session = MeasurementSession(
        controller,
        device.serial,
        mirroring=mirroring,
        label=label or f"{browser}{'+mirroring' if mirroring else ''}",
    )
    session.start()
    stats = script.run_iteration()
    result = session.stop()
    channel.stop_app(profile.package)
    platform.run_for(2.0)
    return result, stats, behaviour.bytes_transferred


def run_browser_study(
    browsers: Sequence[str] = DEFAULT_BROWSERS,
    repetitions: int = 5,
    mirroring_modes: Sequence[bool] = (False, True),
    dwell_s: float = 6.0,
    scrolls_per_page: int = 20,
    scroll_interval_s: float = 1.5,
    sites: Optional[Sequence[str]] = None,
    sample_rate_hz: float = 100.0,
    seed: int = 7,
) -> BrowserStudyResult:
    """Reproduce Figures 3 and 4.

    One platform is built per mirroring mode; within it the browsers are
    tested sequentially and each browser is re-tested ``repetitions`` times,
    mirroring the paper's procedure.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    study = BrowserStudyResult()
    for mirroring in mirroring_modes:
        platform = build_default_platform(seed=seed, browsers=tuple(browsers))
        handle = platform.vantage_point()
        for browser in browsers:
            for repetition in range(repetitions):
                result, stats, transferred = run_browser_measurement(
                    platform,
                    handle,
                    browser,
                    mirroring,
                    dwell_s=dwell_s,
                    scrolls_per_page=scrolls_per_page,
                    scroll_interval_s=scroll_interval_s,
                    urls=sites,
                    sample_rate_hz=sample_rate_hz,
                    label=f"{browser}-rep{repetition}{'+mirroring' if mirroring else ''}",
                )
                study.runs.append(
                    BrowserRunRecord(
                        browser=browser,
                        mirroring=mirroring,
                        repetition=repetition,
                        result=result,
                        stats=stats,
                        bytes_transferred=transferred,
                    )
                )
    return study
