"""Experiment drivers: one per table/figure of the paper's evaluation.

==============  ======================================================  ==========================================
Paper item      Content                                                 Driver
==============  ======================================================  ==========================================
Figure 2        CDF of current drawn (direct / relay, +/- mirroring)    :func:`repro.experiments.accuracy.run_accuracy_experiment`
Figure 3        Per-browser battery discharge, +/- mirroring            :func:`repro.experiments.browser_study.run_browser_study`
Figure 4        CDF of device CPU (Brave vs Chrome, +/- mirroring)      :func:`repro.experiments.browser_study.run_browser_study`
Figure 5        CDF of controller CPU (+/- mirroring)                   :func:`repro.experiments.controller_load.run_controller_load_experiment`
Table 1         BatteryLab API                                          :class:`repro.core.api.BatteryLabAPI`
Table 2         ProtonVPN statistics per location                       :func:`repro.experiments.vpn_study.run_vpn_speedtests`
Figure 6        Brave/Chrome discharge through VPN tunnels              :func:`repro.experiments.vpn_study.run_vpn_energy_study`
Section 4.2     System performance (CPU/memory/network/latency)         :func:`repro.experiments.system_perf.run_system_performance`
==============  ======================================================  ==========================================

Every driver builds its own platform(s) from a seed, runs entirely on the
simulation clock, and returns a result object with ``rows()`` suitable for
the benchmark harness and EXPERIMENTS.md.
"""

from repro.experiments.accuracy import AccuracyStudyResult, run_accuracy_experiment
from repro.experiments.browser_study import (
    BrowserRunRecord,
    BrowserStudyResult,
    run_browser_measurement,
    run_browser_study,
)
from repro.experiments.controller_load import (
    ControllerLoadResult,
    run_controller_load_experiment,
)
from repro.experiments.system_perf import SystemPerformanceResult, run_system_performance
from repro.experiments.vpn_study import (
    VpnEnergyStudyResult,
    run_vpn_energy_study,
    run_vpn_speedtests,
)

__all__ = [
    "AccuracyStudyResult",
    "run_accuracy_experiment",
    "BrowserRunRecord",
    "BrowserStudyResult",
    "run_browser_measurement",
    "run_browser_study",
    "ControllerLoadResult",
    "run_controller_load_experiment",
    "SystemPerformanceResult",
    "run_system_performance",
    "VpnEnergyStudyResult",
    "run_vpn_energy_study",
    "run_vpn_speedtests",
]
