"""Accuracy experiment (Figure 2).

Section 4.1 compares the current drawn during a 5-minute local mp4 playback
in four wiring/mirroring scenarios:

* **direct** — device wired straight to the Monsoon (the classic local setup);
* **relay** — device wired through BatteryLab's relay circuit switch;
* **direct-mirroring** — direct wiring with scrcpy/noVNC mirroring active;
* **relay-mirroring** — the full BatteryLab path with mirroring active.

The paper finds a negligible difference between direct and relay, and a
median current increase from roughly 160 mA to roughly 220 mA when mirroring
is active.  :func:`run_accuracy_experiment` regenerates the four CDFs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.cdf import EmpiricalCdf
from repro.core.platform import build_default_platform
from repro.core.results import MeasurementResult
from repro.core.session import MeasurementSession
from repro.workloads.video import VIDEO_PLAYER_PACKAGE

#: The four scenarios of Figure 2: (label, use_relay, mirroring).
SCENARIOS: Tuple[Tuple[str, bool, bool], ...] = (
    ("direct", False, False),
    ("relay", True, False),
    ("direct-mirroring", False, True),
    ("relay-mirroring", True, True),
)


@dataclass
class AccuracyStudyResult:
    """Per-scenario measurement results for Figure 2."""

    duration_s: float
    results: Dict[str, MeasurementResult] = field(default_factory=dict)

    def scenario(self, name: str) -> MeasurementResult:
        return self.results[name]

    def cdfs(self) -> Dict[str, EmpiricalCdf]:
        return {name: result.current_cdf() for name, result in self.results.items()}

    def median_currents(self) -> Dict[str, float]:
        return {name: result.median_current_ma() for name, result in self.results.items()}

    def relay_overhead_ma(self) -> float:
        """Median current added by the relay path (should be negligible)."""
        return (
            self.results["relay"].median_current_ma()
            - self.results["direct"].median_current_ma()
        )

    def mirroring_overhead_ma(self) -> float:
        """Median current added by device mirroring on the relay path."""
        return (
            self.results["relay-mirroring"].median_current_ma()
            - self.results["relay"].median_current_ma()
        )

    def rows(self) -> List[dict]:
        return [
            {
                "scenario": name,
                "median_ma": round(result.median_current_ma(), 1),
                "mean_ma": round(result.mean_current_ma(), 1),
                "p95_ma": round(result.trace.percentile_current_ma(95), 1),
                "discharge_mah": round(result.discharge_mah(), 2),
            }
            for name, result in self.results.items()
        ]


def run_accuracy_experiment(
    duration_s: float = 300.0,
    sample_rate_hz: float = 1000.0,
    seed: int = 7,
    video_path: str = "file:///sdcard/Movies/test.mp4",
) -> AccuracyStudyResult:
    """Reproduce Figure 2.

    Each scenario runs on a freshly built platform (same seed) so the four
    measurements start from identical device state, exactly as the paper
    repeats the same playback in each wiring configuration.

    Parameters
    ----------
    duration_s:
        Length of the playback measurement (the paper uses 5 minutes).
    sample_rate_hz:
        Monitor sampling rate.  The hardware samples at 5 kHz; the default
        decimates to 1 kHz, which the sampling-rate ablation shows is
        indistinguishable for these statistics.
    seed:
        Root seed for the simulation.
    video_path:
        On-device path of the pre-loaded mp4.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    study = AccuracyStudyResult(duration_s=duration_s)
    for label, use_relay, mirroring in SCENARIOS:
        platform = build_default_platform(seed=seed, browsers=())
        handle = platform.vantage_point()
        controller = handle.controller
        device = handle.device()
        handle.monitor.set_sample_rate(sample_rate_hz)
        controller.set_power_monitor(True)
        handle.monitor.set_vout(device.profile.battery_voltage_v)
        # Start the local mp4 playback via ADB over WiFi, then let the first
        # frames render before the measurement window opens.
        controller.execute_adb(
            device.serial,
            "shell am start -a android.intent.action.VIEW "
            f"-d {video_path} -n {VIDEO_PLAYER_PACKAGE}/.Player",
        )
        platform.run_for(2.0)
        session = MeasurementSession(
            controller,
            device.serial,
            mirroring=mirroring,
            use_relay=use_relay,
            label=label,
        )
        result = session.measure(duration_s)
        controller.execute_adb(
            device.serial, f"shell am force-stop {VIDEO_PLAYER_PACKAGE}"
        )
        study.results[label] = result
    return study
