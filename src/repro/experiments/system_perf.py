"""System performance analysis (Section 4.2, "System Performance").

Beyond the CPU CDFs, the paper reports four controller-side figures for a
mirrored ~7-minute Chrome test:

* mirroring costs roughly an extra 50% of controller CPU on average;
* the memory impact is small (about +6%, staying under 20% of the Pi's 1 GB);
* the networking demand is about 32 MB of upload traffic per test (the
  scrcpy stream is capped at 1 Mbps, an upper bound of ~50 MB, and noVNC's
  compression brings it down);
* the click-to-pixel mirroring latency is 1.44 (±0.12) s over 40 trials
  measured while co-located with the vantage point (1 ms network RTT).

:func:`run_system_performance` regenerates all four from a monitored Chrome
run with and without mirroring plus a latency probe.  The measurement runs
are submitted as *platform jobs* through the Platform API v1 client SDK
(:mod:`repro.api`) — the experiment driver never touches
``AccessServer`` directly, exactly like a remote experimenter: submit,
dispatch, fetch the JSON results back over the API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.accessserver.persistence import register_payload, unregister_payload
from repro.analysis.stats import summarize
from repro.core.platform import build_default_platform
from repro.experiments.browser_study import run_browser_measurement
from repro.mirroring.latency import LatencySummary, MirroringLatencyProbe


@dataclass
class SystemPerformanceResult:
    """The Section 4.2 system-performance figures, reproduced."""

    browser: str
    test_duration_s: float
    controller_cpu_mean_plain: float
    controller_cpu_mean_mirroring: float
    memory_percent_plain: float
    memory_percent_mirroring: float
    upload_bytes: int
    latency: LatencySummary

    @property
    def cpu_extra_percent(self) -> float:
        """Extra average controller CPU caused by mirroring (percentage points)."""
        return self.controller_cpu_mean_mirroring - self.controller_cpu_mean_plain

    @property
    def memory_extra_percent(self) -> float:
        return self.memory_percent_mirroring - self.memory_percent_plain

    @property
    def upload_mb(self) -> float:
        return self.upload_bytes / 1e6

    def rows(self) -> List[dict]:
        return [
            {"metric": "controller CPU, no mirroring (%)", "value": round(self.controller_cpu_mean_plain, 1)},
            {"metric": "controller CPU, mirroring (%)", "value": round(self.controller_cpu_mean_mirroring, 1)},
            {"metric": "extra CPU from mirroring (pp)", "value": round(self.cpu_extra_percent, 1)},
            {"metric": "memory, no mirroring (%)", "value": round(self.memory_percent_plain, 1)},
            {"metric": "memory, mirroring (%)", "value": round(self.memory_percent_mirroring, 1)},
            {"metric": "extra memory from mirroring (pp)", "value": round(self.memory_extra_percent, 1)},
            {"metric": "upload traffic per test (MB)", "value": round(self.upload_mb, 1)},
            {"metric": "test duration (min)", "value": round(self.test_duration_s / 60.0, 1)},
            {"metric": "mirroring latency mean (s)", "value": round(self.latency.mean_s, 2)},
            {"metric": "mirroring latency std (s)", "value": round(self.latency.std_s, 2)},
        ]


def run_system_performance(
    browser: str = "chrome",
    dwell_s: float = 6.0,
    scrolls_per_page: int = 20,
    scroll_interval_s: float = 1.5,
    sample_rate_hz: float = 100.0,
    latency_trials: int = 40,
    network_rtt_ms: float = 1.0,
    seed: int = 7,
) -> SystemPerformanceResult:
    """Reproduce the Section 4.2 system-performance numbers.

    Each monitored browser run is submitted as a job through the Platform
    API v1 client; the payload returns the scalar figures as JSON, which is
    all a remote experimenter would get back over the wire.
    """
    measurements = {}
    for mirroring in (False, True):
        platform = build_default_platform(seed=seed, browsers=(browser,))
        handle = platform.vantage_point()
        client = platform.client()
        label = f"sysperf-{browser}{'+mirroring' if mirroring else ''}"

        def measure(ctx, platform=platform, handle=handle, mirroring=mirroring, label=label):
            result, _, _ = run_browser_measurement(
                platform,
                handle,
                browser,
                mirroring,
                dwell_s=dwell_s,
                scrolls_per_page=scrolls_per_page,
                scroll_interval_s=scroll_interval_s,
                sample_rate_hz=sample_rate_hz,
                label=label,
            )
            return {
                "controller_cpu_mean": summarize(result.controller_cpu_percent).mean,
                "memory_percent": result.controller_memory_percent,
                "upload_bytes": result.mirroring_upload_bytes,
                "duration_s": result.duration_s(),
            }

        # Register the payload under an explicit name and drop it after the
        # run: the closure captures the whole platform, and the catalogue is
        # process-global — leaving it registered would pin the platform in
        # memory for the process lifetime.
        payload_name = f"sysperf/{label}"
        register_payload(payload_name, measure)
        try:
            view = client.submit_job(label, payload_name)
            platform.run_queue()
            results = client.job_results(view.job_id)
        finally:
            unregister_payload(payload_name)
        if results.status != "completed":
            raise RuntimeError(
                f"system-performance job {label!r} did not complete: "
                f"{results.status} ({results.error})"
            )
        measurements[mirroring] = results.result
        latency_random = platform.context.random_stream("latency-probe")
    probe = MirroringLatencyProbe(latency_random, network_rtt_ms=network_rtt_ms)
    latency = probe.run(latency_trials)
    plain = measurements[False]
    mirrored = measurements[True]
    return SystemPerformanceResult(
        browser=browser,
        test_duration_s=mirrored["duration_s"],
        controller_cpu_mean_plain=plain["controller_cpu_mean"],
        controller_cpu_mean_mirroring=mirrored["controller_cpu_mean"],
        memory_percent_plain=plain["memory_percent"],
        memory_percent_mirroring=mirrored["memory_percent"],
        upload_bytes=mirrored["upload_bytes"],
        latency=latency,
    )
