"""Controller load experiment (Figure 5).

Section 4.2 digs into the Raspberry Pi's CPU utilisation during the Chrome
browser runs: "When device mirroring is inactive, the controller is mostly
underloaded, i.e., constant CPU utilization at 25% [caused by] the
communication with the Monsoon to pull battery readings at highest
frequency.  When device mirroring is enabled, the median load instead
increases to about 75%.  Further, in 10% of the measurements the load is
quite high and over 95%."

:func:`run_controller_load_experiment` regenerates the two controller-CPU
CDFs (mirroring inactive/active) from a monitored Chrome run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.cdf import EmpiricalCdf, empirical_cdf
from repro.core.platform import build_default_platform
from repro.experiments.browser_study import run_browser_measurement


@dataclass
class ControllerLoadResult:
    """Controller CPU series with and without device mirroring."""

    browser: str
    cpu_samples: Dict[bool, List[float]] = field(default_factory=dict)

    def cdf(self, mirroring: bool) -> EmpiricalCdf:
        return empirical_cdf(
            self.cpu_samples[mirroring],
            label=f"controller{'+mirroring' if mirroring else ''}",
        )

    def median(self, mirroring: bool) -> float:
        return self.cdf(mirroring).median()

    def fraction_above(self, threshold: float, mirroring: bool) -> float:
        return self.cdf(mirroring).fraction_above(threshold)

    def rows(self) -> List[dict]:
        rows = []
        for mirroring in (False, True):
            if mirroring not in self.cpu_samples:
                continue
            cdf = self.cdf(mirroring)
            rows.append(
                {
                    "mirroring": mirroring,
                    "median_cpu_percent": round(cdf.median(), 1),
                    "p90_cpu_percent": round(cdf.quantile(0.9), 1),
                    "fraction_above_95": round(cdf.fraction_above(95.0), 3),
                    "samples": len(cdf),
                }
            )
        return rows


def run_controller_load_experiment(
    browser: str = "chrome",
    repetitions: int = 2,
    dwell_s: float = 6.0,
    scrolls_per_page: int = 20,
    scroll_interval_s: float = 1.5,
    sample_rate_hz: float = 100.0,
    seed: int = 7,
) -> ControllerLoadResult:
    """Reproduce Figure 5 for one browser (Chrome in the paper)."""
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    result = ControllerLoadResult(browser=browser)
    for mirroring in (False, True):
        platform = build_default_platform(seed=seed, browsers=(browser,))
        handle = platform.vantage_point()
        samples: List[float] = []
        for repetition in range(repetitions):
            measurement, _, _ = run_browser_measurement(
                platform,
                handle,
                browser,
                mirroring,
                dwell_s=dwell_s,
                scrolls_per_page=scrolls_per_page,
                scroll_interval_s=scroll_interval_s,
                sample_rate_hz=sample_rate_hz,
                label=f"controller-load-{browser}-rep{repetition}",
            )
            samples.extend(measurement.controller_cpu_percent)
        result.cpu_samples[mirroring] = samples
    return result
