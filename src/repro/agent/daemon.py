"""The vantage-point agent daemon: poll, claim, execute, report.

:class:`AgentDaemon` is the long-running process an operator starts next to
a vantage point's devices (``repro agent`` on the CLI).  Its loop:

1. **register** — announce identity, connector types and tags (idempotent);
2. **resume** — replay the outbox journal: finish half-run jobs without
   re-executing journaled phases, and re-upload results whose server ack
   was lost (the server answers ``duplicate`` if the first upload landed);
3. **poll** — ``agent.poll``, optionally long-polling server-side;
4. **claim** — ``agent.claim`` the first offer; multi-device jobs arrive
   with every slot already held all-or-nothing under one lease;
5. **execute** — run the configured connector's provision → test → cleanup
   phases, journaling each outcome and renewing the lease between phases;
6. **report** — ``agent.report`` the terminal status, then journal the ack.

Every journal append happens *before* the daemon acts on the recorded
step, so a ``kill -9`` anywhere leaves the outbox describing exactly what
to do next; see :mod:`repro.agent.outbox` for the resume rules.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.agent.connectors import (
    CONNECTOR_PHASES,
    PHASE_FAILED,
    ConnectorContext,
    PhaseResult,
    create_connector,
)
from repro.agent.outbox import Outbox
from repro.api.errors import ApiError, NotFoundApiError, TransportApiError
from repro.api.schemas import AgentLeaseView, AgentView, json_safe
from repro.obs import component_logger

__all__ = ["AgentDaemon"]


class AgentDaemon:
    """One edge daemon bound to a client, an outbox and a connector type.

    Parameters
    ----------
    client:
        A :class:`~repro.api.client.BatteryLabClient` authenticated as a
        user holding the ``run_job`` permission.
    agent_id:
        Stable identity; re-registration under the same id refreshes
        capabilities instead of creating a new agent.
    outbox:
        The journal path (or a prepared :class:`~repro.agent.outbox.Outbox`)
        backing crash recovery and exactly-once uploads.
    connector:
        Registered connector type to execute jobs with; ``connectors``
        optionally announces additional types this daemon could serve.
    """

    def __init__(
        self,
        client,
        agent_id: str,
        outbox,
        connector: str = "fake",
        vantage_point: Optional[str] = None,
        tags: Optional[Dict[str, str]] = None,
        connector_config: Optional[Dict[str, object]] = None,
        connectors: Optional[List[str]] = None,
        lease_ttl_s: float = 30.0,
    ) -> None:
        self.client = client
        self.agent_id = agent_id
        self.outbox = outbox if isinstance(outbox, Outbox) else Outbox(str(outbox))
        self.connector_type = connector
        self.vantage_point = vantage_point
        self.tags = dict(tags or {})
        self.connector_config = dict(connector_config or {})
        self.announced_connectors = sorted(set(connectors or ()) | {connector})
        self.lease_ttl_s = lease_ttl_s
        self._log = component_logger("repro.agent.daemon")

    # -- lifecycle ------------------------------------------------------------
    def register(self) -> AgentView:
        """Announce this daemon to the server (idempotent)."""
        view = self.client.agent_register(
            self.agent_id,
            vantage_point=self.vantage_point,
            connectors=self.announced_connectors,
            tags=self.tags,
        )
        self._log.info(
            "agent %s registered (connectors=%s)",
            self.agent_id,
            ",".join(self.announced_connectors),
        )
        return view

    def resume(self) -> List[int]:
        """Finish every half-done lease the outbox remembers.

        Journaled phases are never re-executed; results whose ack was lost
        are re-uploaded (idempotently).  Returns the settled job ids.
        """
        settled: List[int] = []
        states = self.outbox.lease_states()
        for lease_id in self.outbox.pending():
            job_id = self._finish_lease(lease_id, states[lease_id])
            if job_id is not None:
                settled.append(job_id)
        return settled

    def run_once(self, wait_s: float = 0.0) -> Optional[int]:
        """One poll → claim → execute → report cycle.

        Returns the settled job id, or ``None`` when nothing was claimable
        (or the claim was lost to a racing agent — a normal outcome, not an
        error).
        """
        poll = self.client.agent_poll(self.agent_id, wait_s=wait_s)
        for offer in poll.offers:
            try:
                lease = self.client.agent_claim(
                    self.agent_id, offer.job_id, ttl_s=self.lease_ttl_s
                )
            except ApiError:
                continue  # another agent won the race; try the next offer
            return self.execute(lease)
        return None

    def run_forever(
        self,
        stop_event=None,
        poll_wait_s: float = 2.0,
        idle_sleep_s: float = 0.2,
        retry_s: float = 1.0,
    ) -> None:
        """Serve until ``stop_event`` is set, retrying through outages."""
        self.register()
        while stop_event is None or not stop_event.is_set():
            try:
                self.resume()
                settled = self.run_once(wait_s=poll_wait_s)
            except TransportApiError as exc:
                self._log.warning("gateway unreachable (%s); retrying", exc)
                time.sleep(retry_s)
                continue
            if settled is None and poll_wait_s <= 0:
                time.sleep(idle_sleep_s)

    # -- execution ------------------------------------------------------------
    def execute(self, lease: AgentLeaseView) -> Optional[int]:
        """Run a freshly claimed lease end to end."""
        self.outbox.append(
            "claim",
            lease_id=lease.lease_id,
            agent_id=self.agent_id,
            job_id=lease.job_id,
            job_name=lease.job_name,
            owner=lease.owner,
            payload=lease.payload,
            devices=[[d.vantage_point, d.device_serial] for d in lease.devices],
        )
        ctx = self._context(
            lease.job_id,
            lease.job_name,
            lease.owner,
            lease.payload,
            [(d.vantage_point, d.device_serial) for d in lease.devices],
        )
        result_record = self._run_phases(lease.lease_id, ctx, [], set())
        if result_record is None:
            return None
        return self._upload(lease.lease_id, result_record)

    def _finish_lease(
        self, lease_id: str, state: Dict[str, object]
    ) -> Optional[int]:
        result_record = state["result"]
        if result_record is None:
            # Crashed mid-run: the lease must still be ours to continue.
            try:
                self.client.agent_heartbeat(lease_id, self.agent_id)
            except NotFoundApiError:
                # Expired while we were dead; the server requeued the job
                # and someone else may be running it — discard everything.
                self.outbox.append(
                    "discarded", lease_id=lease_id, reason="lease expired while down"
                )
                return None
            claim = state["claim"]
            done_records = list(state["phases"])
            done_results = [PhaseResult.from_record(p) for p in done_records]
            ctx = self._context(
                int(claim["job_id"]),
                str(claim.get("job_name", "")),
                str(claim.get("owner", "")),
                claim.get("payload"),
                [tuple(d) for d in claim.get("devices", [])],
            )
            for record in done_records:
                # The test phase's computed result/children were journaled
                # with its phase record (the phase itself never re-runs, so
                # they are not re-derivable).
                if record.get("phase") == "test":
                    ctx.result = record.get("result")
                    ctx.children = list(record.get("children", ()))
            result_record = self._run_phases(
                lease_id, ctx, done_results, {r.phase for r in done_results}
            )
            if result_record is None:
                return None
        return self._upload(lease_id, result_record)

    def _context(
        self,
        job_id: int,
        job_name: str,
        owner: str,
        payload: Optional[str],
        devices: List[Tuple[str, str]],
    ) -> ConnectorContext:
        primary_vp, primary_serial = devices[0] if devices else ("", "")
        return ConnectorContext(
            job_id=job_id,
            job_name=job_name,
            owner=owner,
            payload=payload,
            vantage_point=primary_vp,
            device_serial=primary_serial,
            credentials={"username": self.client.username, "owner": owner},
            extra_devices=[tuple(d) for d in devices[1:]],
            config=dict(self.connector_config),
        )

    def _run_phases(
        self,
        lease_id: str,
        ctx: ConnectorContext,
        results: List[PhaseResult],
        already_done: Set[str],
    ) -> Optional[Dict[str, object]]:
        """Run the phases not yet journaled; returns the result record.

        A failed provision or test never skips cleanup — the device must be
        released regardless.  Returns ``None`` when the lease lapsed
        mid-run (the work is abandoned; the server already requeued it).
        """
        connector = create_connector(self.connector_type, self.connector_config)
        for phase in CONNECTOR_PHASES:
            if phase in already_done:
                continue
            result = connector.run_phase(phase, ctx)
            results.append(result)
            extra: Dict[str, object] = {}
            if phase == "test":
                # Journal what the test computed: a crash between here and
                # the result record must not lose it — the phase is marked
                # done and will never execute again.
                extra["result"] = (
                    ctx.result if json_safe(ctx.result) else repr(ctx.result)
                )
                if ctx.children:
                    extra["children"] = self._children_record(ctx.children)
            self.outbox.append(
                "phase", lease_id=lease_id, **result.to_record(), **extra
            )
            try:
                self.client.agent_heartbeat(lease_id, self.agent_id)
            except NotFoundApiError:
                self.outbox.append(
                    "discarded", lease_id=lease_id, reason="lease expired mid-run"
                )
                return None
            except ApiError:
                pass  # transient renewal trouble; the TTL may still hold
        failed = [r for r in results if r.status == PHASE_FAILED]
        status = "failed" if failed else "completed"
        result_value = ctx.result if json_safe(ctx.result) else repr(ctx.result)
        return self.outbox.append(
            "result",
            lease_id=lease_id,
            status=status,
            result=result_value,
            error="; ".join(f"{r.phase}: {r.output}" for r in failed) or None,
            children=self._children_record(ctx.children),
        )

    @staticmethod
    def _children_record(children: List[Dict[str, object]]) -> List[Dict[str, object]]:
        return [
            {
                "vantage_point": child.get("vantage_point"),
                "device_serial": child.get("device_serial"),
                "status": child.get("status"),
                "output": child.get("output", ""),
            }
            for child in children
        ]

    def _upload(self, lease_id: str, record: Dict[str, object]) -> Optional[int]:
        """Report the journaled result; exactly-once thanks to both sides.

        Raises :class:`~repro.api.errors.TransportApiError` when the
        gateway is unreachable — the result stays in the outbox and the
        next :meth:`resume` retries.
        """
        try:
            view = self.client.agent_report(
                lease_id,
                self.agent_id,
                str(record["status"]),
                result=record.get("result"),
                error=record.get("error"),
                children=list(record.get("children") or []),
            )
        except NotFoundApiError:
            # The lease expired before the upload landed: the server
            # requeued the job and this result must not win — discard.
            self.outbox.append(
                "discarded", lease_id=lease_id, reason="lease unknown at upload"
            )
            return None
        self.outbox.append(
            "uploaded", lease_id=lease_id, duplicate=view.duplicate
        )
        return view.job.job_id
