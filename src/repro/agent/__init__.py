"""Agent-pull execution: edge daemons that pull work from the access server.

BatteryLab's vantage points sit behind residential NATs and flaky links
(Section 3), so the platform cannot rely on pushing work into them.  This
package inverts the flow: a :class:`~repro.agent.daemon.AgentDaemon` runs
*next to* the devices, long-polls the server for matching jobs over
Platform API v2 (``agent.poll``), claims them under a renewable lease
(``agent.claim``/``agent.heartbeat``), executes them through a pluggable
:class:`~repro.agent.connectors.DeviceConnector`, and uploads the outcome
(``agent.report``) — surviving its own crashes through a journal-backed
:class:`~repro.agent.outbox.Outbox` so results upload exactly once.
"""

from repro.agent.connectors import (
    CONNECTOR_PHASES,
    ConnectorContext,
    ConnectorError,
    DeviceConnector,
    FakeConnector,
    MultiConnector,
    NoProvisionConnector,
    PhaseResult,
    connector_types,
    create_connector,
    register_connector,
)
from repro.agent.daemon import AgentDaemon
from repro.agent.outbox import Outbox, SimulatedCrash

__all__ = [
    "CONNECTOR_PHASES",
    "ConnectorContext",
    "ConnectorError",
    "DeviceConnector",
    "FakeConnector",
    "MultiConnector",
    "NoProvisionConnector",
    "PhaseResult",
    "connector_types",
    "create_connector",
    "register_connector",
    "AgentDaemon",
    "Outbox",
    "SimulatedCrash",
]
