"""Pluggable device connectors: how an agent actually drives a device.

A :class:`DeviceConnector` is the daemon-side counterpart of Testflinger's
device connectors: one class per way of attaching to hardware, each running
the same three-phase lifecycle — **provision** (put the device in a known
state), **test** (execute the claimed job's payload against it), **cleanup**
(release it) — with per-phase output capture so every byte a phase prints
lands in the phase's journaled record instead of the daemon's stdout.

Connectors are looked up by type name in a process-global registry
(:func:`register_connector` / :func:`create_connector`), so deployments add
hardware support without touching the daemon.  Three types ship built-in:

* ``noprovision`` — skips provisioning entirely (pre-imaged devices);
* ``fake`` — a fully simulated device for tests and benchmarks, with a
  configurable failure injection point (``fail_phase``);
* ``multi`` — fans a multi-device job out to one child connector per extra
  device slot; children inherit the parent job's credentials.
"""

from __future__ import annotations

import contextlib
import io
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "CONNECTOR_PHASES",
    "ConnectorError",
    "PhaseResult",
    "ConnectorContext",
    "DeviceConnector",
    "NoProvisionConnector",
    "FakeConnector",
    "MultiConnector",
    "register_connector",
    "create_connector",
    "connector_types",
]

#: The fixed phase order every connector runs.
CONNECTOR_PHASES = ("provision", "test", "cleanup")

#: Phase outcome markers.
PHASE_OK = "ok"
PHASE_FAILED = "failed"
PHASE_SKIPPED = "skipped"


class ConnectorError(RuntimeError):
    """Raised for unknown connector types or invalid phase requests."""


@dataclass
class PhaseResult:
    """One executed phase: its outcome and everything it printed."""

    phase: str
    status: str
    output: str = ""

    def to_record(self) -> Dict[str, object]:
        return {"phase": self.phase, "status": self.status, "output": self.output}

    @classmethod
    def from_record(cls, data: Dict[str, object]) -> "PhaseResult":
        return cls(
            phase=str(data["phase"]),
            status=str(data["status"]),
            output=str(data.get("output", "")),
        )


@dataclass
class ConnectorContext:
    """What a connector phase sees: the claimed job and its device.

    ``credentials`` is the identity the work runs under — the agent's own
    account plus the job owner's name.  :class:`MultiConnector` copies the
    *parent's* credentials into every child context, which is the
    credential-inheritance rule multi-device jobs rely on.

    ``result`` is set by the test phase and becomes the job's reported
    result; ``children`` accumulates per-child-device outcomes for
    multi-device jobs.
    """

    job_id: int
    job_name: str
    owner: str
    payload: Optional[str]
    vantage_point: str
    device_serial: str
    credentials: Dict[str, str] = field(default_factory=dict)
    extra_devices: List[Tuple[str, str]] = field(default_factory=list)
    config: Dict[str, object] = field(default_factory=dict)
    result: object = None
    children: List[Dict[str, object]] = field(default_factory=list)

    def child_context(self, vantage_point: str, device_serial: str) -> "ConnectorContext":
        """A child device's context, inheriting the parent's credentials."""
        return ConnectorContext(
            job_id=self.job_id,
            job_name=self.job_name,
            owner=self.owner,
            payload=self.payload,
            vantage_point=vantage_point,
            device_serial=device_serial,
            credentials=dict(self.credentials),
            config=dict(self.config),
        )


class _AgentJobContext:
    """The minimal job-context a payload sees when an *agent* runs it.

    The daemon has no live platform API — it is on the device side of the
    wire — so payloads written against the full
    :class:`~repro.accessserver.jobs.JobContext` get the same ``log`` /
    ``store_artifact`` / ``device_serial`` surface with ``api=None``;
    payloads needing the API fail in the test phase, which is the correct
    signal that the job should run push-mode instead.
    """

    def __init__(self, ctx: ConnectorContext) -> None:
        self._ctx = ctx
        self.api = None
        self.job_id = ctx.job_id
        self.vantage_point = ctx.vantage_point
        self.device_serial = ctx.device_serial
        self.now = 0.0
        self.artifacts: Dict[str, object] = {}

    def log(self, message: str) -> None:
        print(message)

    def store_artifact(self, name: str, value: object) -> None:
        self.artifacts[name] = value


class DeviceConnector:
    """Base class: one way of attaching a device, run in three phases.

    Subclasses implement any of :meth:`provision` / :meth:`test` /
    :meth:`cleanup`; a phase that is not overridden is *skipped* (recorded
    with status ``"skipped"``, never silently dropped).  The daemon runs
    phases one at a time through :meth:`run_phase` so it can journal each
    outcome and renew its lease between phases.
    """

    #: Registry key; set by the :func:`register_connector` decorator.
    type_name = ""

    def __init__(self, config: Optional[Dict[str, object]] = None) -> None:
        self.config = dict(config or {})

    # -- phase implementations (override any subset) -------------------------
    def provision(self, ctx: ConnectorContext) -> Optional[str]:
        raise NotImplementedError

    def test(self, ctx: ConnectorContext) -> Optional[str]:
        raise NotImplementedError

    def cleanup(self, ctx: ConnectorContext) -> Optional[str]:
        raise NotImplementedError

    # -- execution ------------------------------------------------------------
    def run_phase(self, phase: str, ctx: ConnectorContext) -> PhaseResult:
        """Run one phase with output capture; never raises.

        Everything the phase prints, plus its return value (if any), is the
        phase's ``output``; an exception marks the phase ``failed`` with the
        error appended to whatever was already captured.
        """
        if phase not in CONNECTOR_PHASES:
            raise ConnectorError(
                f"unknown phase {phase!r}; phases are {CONNECTOR_PHASES}"
            )
        method = getattr(type(self), phase)
        if method is getattr(DeviceConnector, phase):
            return PhaseResult(phase=phase, status=PHASE_SKIPPED)
        buffer = io.StringIO()
        try:
            with contextlib.redirect_stdout(buffer):
                returned = method(self, ctx)
        except Exception as exc:  # noqa: BLE001 - phase boundary
            output = buffer.getvalue() + f"{type(exc).__name__}: {exc}"
            return PhaseResult(phase=phase, status=PHASE_FAILED, output=output)
        output = buffer.getvalue()
        if returned is not None:
            output += str(returned)
        return PhaseResult(phase=phase, status=PHASE_OK, output=output)

    def run(self, ctx: ConnectorContext) -> List[PhaseResult]:
        """Run all phases in order (convenience for tests; the daemon drives
        phases individually so it can journal and heartbeat between them)."""
        return [self.run_phase(phase, ctx) for phase in CONNECTOR_PHASES]


# -- registry ----------------------------------------------------------------

_CONNECTORS: Dict[str, Callable[..., DeviceConnector]] = {}


def register_connector(name: str):
    """Class decorator registering a connector type under ``name``.

    Re-registering a name replaces the previous type (daemons rebuild their
    catalogue at import time), mirroring the payload registry's semantics.
    """

    def _register(cls):
        cls.type_name = name
        _CONNECTORS[name] = cls
        return cls

    return _register


def create_connector(
    name: str, config: Optional[Dict[str, object]] = None
) -> DeviceConnector:
    """Instantiate a registered connector type."""
    cls = _CONNECTORS.get(name)
    if cls is None:
        raise ConnectorError(
            f"unknown connector type {name!r}; registered types: "
            f"{sorted(_CONNECTORS)}"
        )
    return cls(config)


def connector_types() -> List[str]:
    return sorted(_CONNECTORS)


# -- built-in connectors ------------------------------------------------------


@register_connector("fake")
class FakeConnector(DeviceConnector):
    """A fully simulated device: deterministic, instant, test-friendly.

    Config keys:

    * ``fail_phase`` — name of a phase to fail deliberately (fault
      injection for tests);
    * ``result`` — value the test phase reports when the job's payload is
      not locally resolvable.
    """

    def _maybe_fail(self, phase: str) -> None:
        if self.config.get("fail_phase") == phase:
            from repro.chaos.faults import InjectedFault

            raise InjectedFault(f"injected {phase} failure")

    def provision(self, ctx: ConnectorContext) -> str:
        self._maybe_fail("provision")
        return f"provisioned {ctx.device_serial}"

    def test(self, ctx: ConnectorContext) -> str:
        self._maybe_fail("test")
        # Run the job's payload when its name resolves in this process —
        # the in-process deployments share the payload catalogue — and
        # fall back to the configured canned result otherwise.
        from repro.accessserver.persistence import get_payload

        payload = get_payload(ctx.payload) if ctx.payload else None
        if payload is not None:
            ctx.result = payload(_AgentJobContext(ctx))
        else:
            ctx.result = self.config.get("result")
        return f"tested {ctx.device_serial} as {ctx.credentials.get('username', '?')}"

    def cleanup(self, ctx: ConnectorContext) -> str:
        self._maybe_fail("cleanup")
        return f"cleaned {ctx.device_serial}"


@register_connector("noprovision")
class NoProvisionConnector(FakeConnector):
    """Runs tests on a pre-imaged device: the provision phase is skipped."""

    # Restore the base's un-overridden provision so run_phase records the
    # phase as "skipped" instead of running the fake image step.
    provision = DeviceConnector.provision


@register_connector("multi")
class MultiConnector(DeviceConnector):
    """Fans a multi-device job out across every claimed device slot.

    The parent's test phase runs one child connector (config ``child``,
    default ``"fake"``) per device — primary first, then every extra slot
    the lease holds — giving each child a context that **inherits the
    parent's credentials**.  Per-child outcomes accumulate in
    ``ctx.children`` and ride home in the agent's report as
    ``dispatch.child_result`` events.
    """

    def provision(self, ctx: ConnectorContext) -> str:
        return f"provisioned {1 + len(ctx.extra_devices)} devices"

    def test(self, ctx: ConnectorContext) -> str:
        child_type = str(self.config.get("child", "fake"))
        devices = [(ctx.vantage_point, ctx.device_serial)] + list(ctx.extra_devices)
        statuses: Dict[str, str] = {}
        for vantage_point, serial in devices:
            child_ctx = ctx.child_context(vantage_point, serial)
            connector = create_connector(child_type, self.config.get("child_config"))
            results = connector.run(child_ctx)
            failed = any(r.status == PHASE_FAILED for r in results)
            status = "failed" if failed else "completed"
            statuses[serial] = status
            ctx.children.append(
                {
                    "vantage_point": vantage_point,
                    "device_serial": serial,
                    "status": status,
                    "output": "\n".join(
                        f"{r.phase}: {r.output}" for r in results if r.output
                    ),
                    "credentials": dict(child_ctx.credentials),
                    "result": child_ctx.result,
                }
            )
        if any(status == "failed" for status in statuses.values()):
            raise RuntimeError(f"child device(s) failed: {statuses}")
        ctx.result = {"children": statuses}
        return f"ran {len(devices)} children"

    def cleanup(self, ctx: ConnectorContext) -> str:
        return f"released {1 + len(ctx.extra_devices)} devices"
