"""The daemon's journal-backed outbox: crash-safe exactly-once uploads.

Every step of a claimed job's life on the agent side is appended to one
JSONL file *before* the daemon acts on it — claim, each finished phase, the
computed result, the server's upload ack.  After a ``kill -9`` at any
offset, replaying the file tells a fresh daemon exactly where to resume:

* ``claim`` without ``result`` — re-run the phases that have no ``phase``
  record yet (finished phases are **never** re-executed);
* ``result`` without ``uploaded`` — upload again; the server's settled-
  lease memory answers ``duplicate`` if the first upload actually landed,
  which is what makes the retry exactly-once rather than at-least-once;
* ``uploaded`` / ``discarded`` — nothing to do.

The reader is torn-tail tolerant: a crash mid-append leaves a partial last
line, which is ignored (its operation simply never happened).  Tests drive
the crash points deterministically through ``plan_crash``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.chaos.faults import CrashPlan, SimulatedCrash

__all__ = ["Outbox", "SimulatedCrash"]


class Outbox:
    """Append-only JSONL journal of one agent's claimed work."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._crash = CrashPlan()
        self._heal_torn_tail()

    def _heal_torn_tail(self) -> None:
        """Terminate a torn last line so new appends start on a fresh line.

        A crash mid-append leaves a partial line with no newline; without
        this, the restarted daemon's first append would concatenate onto
        the fragment and corrupt its own record.  The fragment itself
        stays ignored by :meth:`records` (it parses as garbage).
        """
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                last = handle.read(1)
        except (OSError, ValueError):  # missing or empty file
            return
        if last != b"\n":
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())

    @property
    def writes(self) -> int:
        """Appends made through this outbox instance (crash-plan offsets are
        relative to its construction, so ``plan_crash(writes + n)`` targets
        the ``n``-th append from now)."""
        return self._crash.writes

    # -- fault injection ------------------------------------------------------
    def plan_crash(self, at_write: int, mode: str = "after") -> None:
        """Simulate ``kill -9`` at the ``at_write``-th append (0-based).

        Delegates to the platform-wide crash planner
        (:class:`repro.chaos.faults.CrashPlan`), so the outbox speaks the
        same fault vocabulary as the server journal.  ``mode``:

        * ``"before"`` — crash without writing anything;
        * ``"after"``  — write the full record, then crash (the ack/record
          is durable but the daemon never saw it succeed);
        * ``"torn"``   — write half the line with no newline, then crash
          (exercises the reader's torn-tail tolerance).
        """
        self._crash.arm(at_write, mode)

    # -- writing --------------------------------------------------------------
    def append(self, kind: str, **data: object) -> Dict[str, object]:
        record = {"kind": kind, **data}
        line = json.dumps(record, sort_keys=True)

        def _write(text: str) -> None:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())

        self._crash.intercept(
            kind,
            lambda: _write(line + "\n"),
            lambda: _write(line[: max(1, len(line) // 2)]),
        )
        return record

    # -- reading --------------------------------------------------------------
    def records(self) -> List[Dict[str, object]]:
        """Every durable record, oldest first; a torn tail is dropped."""
        if not os.path.exists(self.path):
            return []
        records: List[Dict[str, object]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    # Torn line from a crash mid-append: the operation it
                    # described never completed.  Skip it — after a restart
                    # heals the tail, valid records continue on the next
                    # line.
                    continue
                if isinstance(record, dict) and "kind" in record:
                    records.append(record)
        return records

    def lease_states(self) -> Dict[str, Dict[str, object]]:
        """Fold the journal into per-lease resume state.

        Returns ``lease_id -> {"claim": record, "phases": [phase records],
        "result": record | None, "uploaded": bool, "discarded": bool}``.
        """
        states: Dict[str, Dict[str, object]] = {}
        for record in self.records():
            lease_id = record.get("lease_id")
            if not isinstance(lease_id, str):
                continue
            state = states.setdefault(
                lease_id,
                {
                    "claim": None,
                    "phases": [],
                    "result": None,
                    "uploaded": False,
                    "discarded": False,
                },
            )
            kind = record["kind"]
            if kind == "claim":
                state["claim"] = record
            elif kind == "phase":
                state["phases"].append(record)
            elif kind == "result":
                state["result"] = record
            elif kind == "uploaded":
                state["uploaded"] = True
            elif kind == "discarded":
                state["discarded"] = True
        return states

    def pending(self) -> List[str]:
        """Lease ids with unfinished work, in first-seen order."""
        return [
            lease_id
            for lease_id, state in self.lease_states().items()
            if state["claim"] is not None
            and not state["uploaded"]
            and not state["discarded"]
        ]
