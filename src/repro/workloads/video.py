"""Video playback workload.

The accuracy experiment (Section 4.1) plays an mp4 that is pre-loaded on
the device's sdcard for five minutes: "the rationale is to force the device
mirroring mechanism to constantly update as new frames are originated."
:class:`VideoPlayerApp` models the stock video player: while a video is
playing it keeps the hardware decoder active, presents ~30 frames per
second, and needs a modest amount of CPU; no network traffic is involved.
"""

from __future__ import annotations

from typing import Optional

from repro.device.android import AndroidDevice
from repro.device.apps import AppProcess, InstalledApp
from repro.simulation.entity import SimulationContext

#: Package name of the stock gallery/video player.
VIDEO_PLAYER_PACKAGE = "com.android.gallery3d"


class VideoPlayerApp:
    """Behaviour of the on-device video player."""

    PLAYBACK_CPU_PERCENT = 10.0
    PLAYBACK_FPS = 30.0

    def __init__(self, device: AndroidDevice, context: SimulationContext) -> None:
        self._device = device
        self._context = context
        self._playing: Optional[str] = None
        self._stop_event = None

    @property
    def playing(self) -> Optional[str]:
        """Path of the file currently being played, if any."""
        return self._playing

    # -- AppBehaviour hooks -------------------------------------------------------
    def on_launch(self, process: AppProcess) -> None:
        process.set_activity(cpu_percent=3.0, network_mbps=0.0, screen_fps=8.0)

    def on_stop(self, process: AppProcess) -> None:
        self.stop_playback(process)
        process.idle()

    def on_intent(self, process: AppProcess, action: str, data: str) -> None:
        if action == "android.intent.action.VIEW" and data.endswith(".mp4"):
            self.start_playback(process, data)

    def on_input(self, process: AppProcess, event: str) -> None:
        # A tap while playing pauses; another tap resumes.  The accuracy
        # experiment never pauses, so this is mostly exercised by tests.
        if "KEYCODE_MEDIA_PLAY_PAUSE" in event:
            if self._playing is not None:
                self.stop_playback(process)
            return

    # -- playback control --------------------------------------------------------------
    def start_playback(
        self, process: AppProcess, path: str, duration_s: Optional[float] = None
    ) -> None:
        """Begin playing ``path``; optionally schedule an automatic stop."""
        self._playing = path
        self._device.set_video_decoder_active(True)
        process.set_activity(
            cpu_percent=self.PLAYBACK_CPU_PERCENT,
            network_mbps=0.0,
            screen_fps=self.PLAYBACK_FPS,
        )
        if self._stop_event is not None:
            self._stop_event.cancel()
            self._stop_event = None
        if duration_s is not None:
            self._stop_event = self._context.scheduler.schedule_in(
                duration_s,
                lambda: self.stop_playback(process),
                label=f"{VIDEO_PLAYER_PACKAGE}:playback-end",
            )

    def stop_playback(self, process: AppProcess) -> None:
        if self._playing is None:
            return
        self._playing = None
        self._device.set_video_decoder_active(False)
        process.set_activity(cpu_percent=3.0, network_mbps=0.0, screen_fps=8.0)


def install_video_player(device: AndroidDevice, context: SimulationContext) -> VideoPlayerApp:
    """Install the stock video player on a device and return its behaviour."""
    behaviour = VideoPlayerApp(device, context)
    device.install_app(
        InstalledApp(
            package=VIDEO_PLAYER_PACKAGE,
            label="Gallery",
            version="1.1",
            category="media",
            behaviour=behaviour,
        )
    )
    return behaviour
