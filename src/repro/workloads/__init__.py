"""Workload models.

The paper's evaluation exercises two device workloads:

* **Video playback** (Section 4.1): a locally stored mp4 is played for five
  minutes so the screen content changes constantly, which is the worst case
  for the mirroring encoder.  See :mod:`repro.workloads.video`.
* **Web browsing** (Section 4.2): four Android browsers (Chrome, Firefox,
  Edge, Brave) sequentially load ten popular news sites, wait six seconds
  (a typical page load time) and then scroll up and down repeatedly.  See
  :mod:`repro.workloads.browsers` for the per-browser resource profiles and
  the on-device browser behaviour model.
"""

from repro.workloads.browsers import (
    BROWSER_PROFILES,
    BrowserApp,
    BrowserProfile,
    browser_profile,
    install_browser,
)
from repro.workloads.video import VideoPlayerApp, install_video_player

__all__ = [
    "BROWSER_PROFILES",
    "BrowserApp",
    "BrowserProfile",
    "browser_profile",
    "install_browser",
    "VideoPlayerApp",
    "install_video_player",
]
