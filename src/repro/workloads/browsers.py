"""Android browser models.

The demonstration study (Section 4.2) compares Chrome, Firefox, Edge and
Brave.  Each browser is modelled by a :class:`BrowserProfile` — its package
name, whether it blocks ads, and its CPU demand in the three phases of the
workload (page load, idle dwell, scrolling) — plus a :class:`BrowserApp`
behaviour object installed on the device that turns ADB intents and input
events into resource demands and network traffic.

The profiles are calibrated to the shape of the paper's results:

* device CPU medians of roughly 12% for Brave and 20% for Chrome (Figure 4),
  with Edge and Firefox in between/above;
* battery discharge ordering Brave < Chrome < Edge < Firefox (Figure 3);
* Brave's advantage comes from blocking ads: it transfers fewer bytes and
  runs less script work, i.e. "lower CPU pressure" (Section 4.2);
* in regions that serve smaller ads (Japan, Table 2 / Figure 6) Chrome's
  traffic drops by roughly 20% and its energy approaches Brave's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.device.android import AndroidDevice
from repro.device.apps import AppProcess, InstalledApp
from repro.device.radio import RadioTechnology
from repro.network.path import NetworkPath
from repro.network.web import NEWS_SITES, REGION_AD_FACTORS, WebPage, page_by_url
from repro.simulation.entity import SimulationContext
from repro.simulation.random import SeededRandom


@dataclass(frozen=True)
class BrowserProfile:
    """Static description of one browser's resource behaviour.

    Attributes
    ----------
    name / package:
        Marketing name and Android package name.
    blocks_ads:
        Brave ships an ad/tracker blocker; the others do not.
    load_cpu_percent:
        CPU demand while a page is actively loading and rendering.
    dwell_cpu_percent:
        CPU demand while the loaded page sits idle on screen.
    scroll_cpu_percent:
        CPU demand while the automation scrolls the page.
    ad_cpu_share:
        Fraction of dwell/scroll CPU attributable to ad rendering; it scales
        with the regional ad factor and disappears entirely when ads are blocked.
    first_launch_setup_s:
        Time spent in first-launch dialogs (accepting conditions, sign-in
        prompts) that the automation has to click through after ``pm clear``.
    """

    name: str
    package: str
    blocks_ads: bool
    load_cpu_percent: float
    dwell_cpu_percent: float
    scroll_cpu_percent: float
    ad_cpu_share: float = 0.3
    first_launch_setup_s: float = 4.0


BROWSER_PROFILES: Dict[str, BrowserProfile] = {
    "brave": BrowserProfile(
        name="Brave",
        package="com.brave.browser",
        blocks_ads=True,
        load_cpu_percent=40.0,
        dwell_cpu_percent=6.0,
        scroll_cpu_percent=10.0,
        first_launch_setup_s=3.0,
    ),
    "chrome": BrowserProfile(
        name="Chrome",
        package="com.android.chrome",
        blocks_ads=False,
        load_cpu_percent=55.0,
        dwell_cpu_percent=8.0,
        scroll_cpu_percent=18.0,
        first_launch_setup_s=5.0,
    ),
    "edge": BrowserProfile(
        name="Edge",
        package="com.microsoft.emmx",
        blocks_ads=False,
        load_cpu_percent=58.0,
        dwell_cpu_percent=9.0,
        scroll_cpu_percent=20.0,
        first_launch_setup_s=5.0,
    ),
    "firefox": BrowserProfile(
        name="Firefox",
        package="org.mozilla.firefox",
        blocks_ads=False,
        load_cpu_percent=66.0,
        dwell_cpu_percent=11.0,
        scroll_cpu_percent=24.0,
        first_launch_setup_s=4.0,
    ),
}
"""The four browsers of the demonstration study, keyed by short name."""


def browser_profile(name: str) -> BrowserProfile:
    """Look up a browser profile by short name (case-insensitive)."""
    key = name.lower()
    try:
        return BROWSER_PROFILES[key]
    except KeyError:
        known = ", ".join(sorted(BROWSER_PROFILES))
        raise KeyError(f"unknown browser {name!r}; known browsers: {known}") from None


class BrowserApp:
    """On-device behaviour of one browser.

    The behaviour reacts to the events the automation channel delivers —
    ``am start -a android.intent.action.VIEW -d <url>`` for page loads and
    ``input swipe`` / ``input keyevent KEYCODE_PAGE_DOWN`` for scrolls —
    by updating the app process's CPU, network and screen-update demands and
    by accounting the transferred bytes on the device radio, exactly the
    signals the device power model converts into current draw.
    """

    #: Screen update rates (fps) per phase; the mirroring encoder cost scales
    #: with these through the screen activity fraction.
    LOAD_FPS = 26.0
    DWELL_FPS = 6.0

    def __init__(
        self,
        profile: BrowserProfile,
        device: AndroidDevice,
        context: SimulationContext,
        path_provider: Callable[[], NetworkPath],
        corpus: Optional[List[WebPage]] = None,
        lite_pages_enabled: bool = False,
    ) -> None:
        self.profile = profile
        self._device = device
        self._context = context
        self._path_provider = path_provider
        self._corpus = corpus if corpus is not None else list(NEWS_SITES)
        self._lite_pages_enabled = lite_pages_enabled
        self._random: SeededRandom = context.random_stream(
            f"browser:{profile.package}:{device.serial}"
        )
        self._pages_loaded = 0
        self._scrolls = 0
        self._bytes_transferred = 0
        self._current_region = "GB"
        self._scroll_end_event = None
        self._load_end_event = None
        self._pending_text: Optional[str] = None

    # -- statistics ----------------------------------------------------------------
    @property
    def pages_loaded(self) -> int:
        return self._pages_loaded

    @property
    def scrolls(self) -> int:
        return self._scrolls

    @property
    def bytes_transferred(self) -> int:
        return self._bytes_transferred

    def reset_counters(self) -> None:
        self._pages_loaded = 0
        self._scrolls = 0
        self._bytes_transferred = 0

    # -- helpers -------------------------------------------------------------------
    def _ad_cpu_factor(self, region: str) -> float:
        """Scale dwell/scroll CPU by how much ad content is actually rendered.

        A browser that blocks ads never renders them, so its profile numbers
        already describe the ad-free behaviour and are left untouched; the
        others shed part of their script work in regions that serve smaller
        ads (the Japan effect of Figure 6).
        """
        if self.profile.blocks_ads:
            return 1.0
        regional = REGION_AD_FACTORS.get(region, 1.0)
        return 1.0 - self.profile.ad_cpu_share * (1.0 - regional)

    def _dwell_cpu(self, region: str) -> float:
        return self.profile.dwell_cpu_percent * self._ad_cpu_factor(region)

    def _scroll_cpu(self, region: str) -> float:
        return self.profile.scroll_cpu_percent * self._ad_cpu_factor(region)

    def _enter_dwell(self, process: AppProcess) -> None:
        process.set_activity(
            cpu_percent=self._dwell_cpu(self._current_region),
            network_mbps=0.05,
            screen_fps=self.DWELL_FPS,
        )

    # -- AppBehaviour hooks -----------------------------------------------------------
    def on_launch(self, process: AppProcess) -> None:
        # First-launch setup (cookie banners, sign-in prompts) keeps the CPU
        # moderately busy for a few seconds before settling to dwell.
        process.set_activity(cpu_percent=self.profile.load_cpu_percent * 0.6,
                             network_mbps=0.4, screen_fps=self.LOAD_FPS * 0.6)
        self._context.scheduler.schedule_in(
            self.profile.first_launch_setup_s,
            lambda: self._enter_dwell(process) if process.cpu_percent > 0 else None,
            label=f"{self.profile.package}:setup-done",
        )

    def on_stop(self, process: AppProcess) -> None:
        process.idle()
        if self._load_end_event is not None:
            self._load_end_event.cancel()
            self._load_end_event = None
        if self._scroll_end_event is not None:
            self._scroll_end_event.cancel()
            self._scroll_end_event = None

    def on_intent(self, process: AppProcess, action: str, data: str) -> None:
        if action != "android.intent.action.VIEW":
            return
        self._start_page_load(process, data)

    def on_input(self, process: AppProcess, event: str) -> None:
        if event.startswith("swipe") or "PAGE_DOWN" in event or "PAGE_UP" in event or "DPAD" in event:
            self._start_scroll_burst(process)
            return
        # Bluetooth-keyboard URL entry: text typed into the omnibox followed by
        # ENTER triggers a navigation, just like ``am start -a VIEW`` over ADB.
        if event.startswith("text "):
            self._pending_text = event[len("text "):].strip()
            return
        if "ENTER" in event and self._pending_text:
            url = self._pending_text
            self._pending_text = None
            if "://" in url or url.startswith("www.") or "." in url:
                self._start_page_load(process, url)

    # -- page loads --------------------------------------------------------------------
    def _resolve_page(self, url: str) -> WebPage:
        try:
            return page_by_url(url, self._corpus)
        except KeyError:
            # Unknown URL: synthesise a page of average weight so arbitrary
            # experimenter scripts still work.
            return WebPage(url=url, base_bytes=1_700_000, ad_bytes=1_000_000)

    def _start_page_load(self, process: AppProcess, url: str) -> None:
        page = self._resolve_page(url)
        path = self._path_provider()
        conditions = path.conditions()
        self._current_region = conditions.region
        payload = page.payload_bytes(
            region=conditions.region,
            ads_blocked=self.profile.blocks_ads,
            lite_pages_enabled=self._lite_pages_enabled,
        )
        load_time = path.download_time_s(payload)
        # Rendering takes a little extra time on top of the transfer, scaled
        # by the page's script complexity.
        render_time = 0.5 + 0.4 * page.script_complexity
        load_time += render_time
        throughput_mbps = min(
            conditions.downlink_mbps, payload * 8.0 / 1e6 / max(load_time - render_time, 0.1)
        )
        self._pages_loaded += 1
        self._bytes_transferred += payload
        # Account the transferred bytes on the device radio and the AP.
        route = self._device.radio.default_route or RadioTechnology.WIFI
        self._device.radio.account_traffic(route, rx_bytes=payload, tx_bytes=payload // 20)
        process.account_traffic(rx_bytes=payload, tx_bytes=payload // 20)
        load_cpu = self.profile.load_cpu_percent * (0.8 + 0.2 * page.script_complexity)
        process.set_activity(
            cpu_percent=load_cpu, network_mbps=throughput_mbps, screen_fps=self.LOAD_FPS
        )
        if self._load_end_event is not None:
            self._load_end_event.cancel()
        self._load_end_event = self._context.scheduler.schedule_in(
            load_time,
            lambda: self._enter_dwell(process),
            label=f"{self.profile.package}:load-done",
        )

    # -- scrolling -----------------------------------------------------------------------
    def _start_scroll_burst(self, process: AppProcess, burst_s: float = 1.8) -> None:
        self._scrolls += 1
        scroll_fps = self._random.uniform(30.0, 55.0)
        process.set_activity(
            cpu_percent=self._scroll_cpu(self._current_region),
            network_mbps=0.1,
            screen_fps=scroll_fps,
        )
        if self._scroll_end_event is not None:
            self._scroll_end_event.cancel()
        self._scroll_end_event = self._context.scheduler.schedule_in(
            burst_s,
            lambda: self._enter_dwell(process),
            label=f"{self.profile.package}:scroll-done",
        )


def install_browser(
    device: AndroidDevice,
    profile_name: str,
    context: SimulationContext,
    path_provider: Callable[[], NetworkPath],
    corpus: Optional[List[WebPage]] = None,
) -> BrowserApp:
    """Install one browser on a device and return its behaviour object.

    ``path_provider`` is usually ``controller.network_path`` so that page
    loads see the vantage point's uplink and any active VPN tunnel.
    """
    profile = browser_profile(profile_name)
    behaviour = BrowserApp(profile, device, context, path_provider, corpus=corpus)
    device.install_app(
        InstalledApp(
            package=profile.package,
            label=profile.name,
            version="75.0",
            category="browser",
            behaviour=behaviour,
        )
    )
    return behaviour
