"""BattOr-style portable power monitor.

The paper's related-work section points at BattOr (Schulman et al.) as the
way to "potentially enhance BatteryLab with mobility support": unlike the
bench-top Monsoon, BattOr is a small battery-powered logger that rides along
with the phone, trading sampling rate and capacity limits for portability.

:class:`BattOrMonitor` models that trade-off so mobility experiments can be
scripted against the same interfaces as the Monsoon:

* much lower sampling rate (1 kHz vs 5 kHz) and a bounded on-board buffer —
  once the buffer fills, older samples are dropped and flagged;
* it is powered by its own small battery, so long captures are limited by
  the logger's own energy;
* it does not supply the device (no ``Vout``): the phone keeps running from
  its own battery and the logger only *observes* the current, which is what
  makes walking-around experiments possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.powermonitor.traces import CurrentTrace, TraceBuilder
from repro.simulation.entity import Entity, SimulationContext
from repro.simulation.process import PeriodicProcess


class BattOrError(RuntimeError):
    """Raised for invalid logger operations (no target, empty battery, ...)."""


@dataclass(frozen=True)
class BattOrSpec:
    """Characteristics of the portable logger."""

    model: str = "BattOr v2"
    sample_rate_hz: float = 1000.0
    buffer_samples: int = 600_000
    logger_battery_mah: float = 400.0
    logger_draw_ma: float = 35.0


class BattOrMonitor(Entity):
    """A portable, buffer-limited power logger attached to one device.

    Parameters
    ----------
    context:
        Simulation context.
    serial:
        Logger serial number.
    spec:
        Logger characteristics.
    tick_rate_hz:
        Simulation tick rate; samples are synthesised at ``spec.sample_rate_hz``.
    """

    def __init__(
        self,
        context: SimulationContext,
        serial: str = "BATTOR-0001",
        spec: BattOrSpec = BattOrSpec(),
        tick_rate_hz: float = 10.0,
    ) -> None:
        super().__init__(context, f"battor:{serial}")
        self._serial = serial
        self._spec = spec
        self._target: Optional[Callable[[], float]] = None
        self._target_label = ""
        self._builder: Optional[TraceBuilder] = None
        self._dropped_samples = 0
        self._logger_charge_mah = spec.logger_battery_mah
        self._last_tick: Optional[float] = None
        self._process = PeriodicProcess(
            context.scheduler, 1.0 / tick_rate_hz, self._tick, label=f"{self.name}:sampling"
        )

    # -- attachment -------------------------------------------------------------
    @property
    def serial(self) -> str:
        return self._serial

    @property
    def spec(self) -> BattOrSpec:
        return self._spec

    @property
    def dropped_samples(self) -> int:
        """Samples discarded because the on-board buffer was full."""
        return self._dropped_samples

    @property
    def logger_battery_fraction(self) -> float:
        return self._logger_charge_mah / self._spec.logger_battery_mah

    def attach_to_device(self, device, label: str = "") -> None:
        """Clip the logger onto a device's battery leads (observation only)."""
        self._target = device.instantaneous_current_ma
        self._target_label = label or getattr(device, "serial", "device")

    def detach(self) -> None:
        if self._process.running:
            raise BattOrError("stop the capture before detaching the logger")
        self._target = None
        self._target_label = ""

    # -- capture ------------------------------------------------------------------
    @property
    def capturing(self) -> bool:
        return self._process.running

    def start_capture(self, label: str = "") -> None:
        if self._target is None:
            raise BattOrError("the logger is not attached to any device")
        if self._process.running:
            raise BattOrError("a capture is already running")
        if self._logger_charge_mah <= 0:
            raise BattOrError("the logger's own battery is empty; recharge it first")
        self._builder = TraceBuilder(label=label or self._target_label)
        self._dropped_samples = 0
        self._last_tick = self.now
        self._process.start(initial_delay=self._process.period)
        self.log("capture started", target=self._target_label)

    def stop_capture(self) -> CurrentTrace:
        if not self._process.running:
            raise BattOrError("no capture is running")
        self._process.stop()
        assert self._builder is not None
        trace = self._builder.build()
        self._builder = None
        self.log("capture stopped", samples=len(trace), dropped=self._dropped_samples)
        return trace

    def recharge(self) -> None:
        """Recharge the logger's own battery between mobile experiments."""
        if self._process.running:
            raise BattOrError("cannot recharge while a capture is running")
        self._logger_charge_mah = self._spec.logger_battery_mah

    # -- internals --------------------------------------------------------------------
    def _tick(self, timestamp: float) -> None:
        if self._builder is None or self._last_tick is None or self._target is None:
            return
        interval = timestamp - self._last_tick
        self._last_tick = timestamp
        if interval <= 0:
            return
        # The logger drains its own battery while capturing; when it dies the
        # capture simply stops short (as it would in the field).
        self._logger_charge_mah -= self._spec.logger_draw_ma * interval / 3600.0
        if self._logger_charge_mah <= 0:
            self._logger_charge_mah = 0.0
            self._process.stop()
            self.log("logger battery exhausted; capture halted")
            return
        level = max(float(self._target()), 0.0)
        count = max(1, int(round(interval * self._spec.sample_rate_hz)))
        available = self._spec.buffer_samples - len(self._builder)
        if available <= 0:
            self._dropped_samples += count
            return
        kept = min(count, available)
        self._dropped_samples += count - kept
        offsets = [(i + 1) / count * interval for i in range(kept)]
        noise = self.random.generator.normal(1.0, 0.02, size=kept)
        currents = [level * max(0.7, min(1.3, float(n))) for n in noise]
        self._builder.extend([self._last_tick - interval + o for o in offsets], currents, 0.0)

    def status(self) -> dict:
        return {
            "serial": self._serial,
            "model": self._spec.model,
            "attached_to": self._target_label or None,
            "capturing": self.capturing,
            "logger_battery_percent": round(100.0 * self.logger_battery_fraction, 1),
            "dropped_samples": self._dropped_samples,
        }
