"""Power monitor substrate.

The paper's vantage points use a Monsoon High Voltage Power Monitor (HVPM):
0.8–13.5 V output, up to 6 A continuous current, 5 kHz sampling, controlled
through Monsoon's Python API.  No hardware is available here, so this
package provides:

* :class:`~repro.powermonitor.traces.CurrentTrace` — the measurement record
  (timestamps, current, voltage) with the statistics the paper reports
  (medians, CDFs, discharge in mAh);
* :class:`~repro.powermonitor.sampling.SamplingEngine` — a high-rate sampler
  that runs on the simulation clock but generates the full 5 kHz worth of
  samples per tick;
* :class:`~repro.powermonitor.monsoon.MonsoonHVPM` — the emulated monitor
  with voltage control, a safety interlock and main/USB channel semantics;
* :class:`~repro.powermonitor.pymonsoon.HVPM` — a thin compatibility shim
  mimicking the naming of Monsoon's own ``Monsoon.HVPM`` Python API;
* :mod:`~repro.powermonitor.calibration` — reference-resistor calibration.
"""

from repro.powermonitor.battor import BattOrMonitor, BattOrSpec
from repro.powermonitor.calibration import CalibrationRecord, calibrate_against_reference
from repro.powermonitor.monsoon import (
    MonsoonError,
    MonsoonHVPM,
    MonsoonSafetyError,
    MonsoonSpec,
    MONSOON_HV_SPEC,
)
from repro.powermonitor.pymonsoon import HVPM
from repro.powermonitor.sampling import SamplingEngine
from repro.powermonitor.traces import CurrentTrace, TraceSummary

__all__ = [
    "BattOrMonitor",
    "BattOrSpec",
    "CalibrationRecord",
    "calibrate_against_reference",
    "MonsoonError",
    "MonsoonHVPM",
    "MonsoonSafetyError",
    "MonsoonSpec",
    "MONSOON_HV_SPEC",
    "HVPM",
    "SamplingEngine",
    "CurrentTrace",
    "TraceSummary",
]
