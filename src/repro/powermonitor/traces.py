"""Current traces and their statistics.

Everything the paper's evaluation reports about power comes from the
Monsoon's sample stream: median currents and CDFs (Figure 2), integrated
discharge in mAh (Figures 3 and 6).  :class:`CurrentTrace` is the container
for that stream plus the derived statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: ``numpy.trapz`` was renamed to ``numpy.trapezoid`` in NumPy 2.0.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


class TraceError(ValueError):
    """Raised for malformed traces (mismatched lengths, negative rates, ...)."""


@dataclass(frozen=True)
class TraceSummary:
    """Headline statistics of one trace, as reported in the paper's figures."""

    samples: int
    duration_s: float
    mean_current_ma: float
    median_current_ma: float
    p95_current_ma: float
    max_current_ma: float
    discharge_mah: float
    mean_power_mw: float
    energy_mwh: float


class CurrentTrace:
    """A time series of current (and voltage) samples from a power monitor.

    Parameters
    ----------
    timestamps_s:
        Monotonically non-decreasing sample timestamps in seconds.
    current_ma:
        Instantaneous current in milliamps, one per timestamp.
    voltage_v:
        Either a scalar supply voltage or one voltage sample per timestamp.
    label:
        Human-readable label (scenario name, browser name, ...).
    """

    def __init__(
        self,
        timestamps_s: Sequence[float],
        current_ma: Sequence[float],
        voltage_v: float | Sequence[float] = 3.85,
        label: str = "",
    ) -> None:
        self._t = np.asarray(timestamps_s, dtype=float)
        self._i = np.asarray(current_ma, dtype=float)
        if self._t.ndim != 1 or self._i.ndim != 1:
            raise TraceError("timestamps and currents must be one-dimensional")
        if len(self._t) != len(self._i):
            raise TraceError(
                f"length mismatch: {len(self._t)} timestamps vs {len(self._i)} currents"
            )
        if len(self._t) > 1 and np.any(np.diff(self._t) < 0):
            raise TraceError("timestamps must be non-decreasing")
        if np.any(self._i < 0):
            raise TraceError("current samples must be non-negative")
        if np.isscalar(voltage_v):
            self._v = np.full(len(self._t), float(voltage_v))
        else:
            self._v = np.asarray(voltage_v, dtype=float)
            if len(self._v) != len(self._t):
                raise TraceError("voltage series length must match timestamps")
        self.label = label

    # -- construction helpers --------------------------------------------------
    @classmethod
    def empty(cls, label: str = "") -> "CurrentTrace":
        return cls([], [], 3.85, label=label)

    @classmethod
    def concat(cls, traces: Iterable["CurrentTrace"], label: str = "") -> "CurrentTrace":
        traces = list(traces)
        if not traces:
            return cls.empty(label=label)
        t = np.concatenate([trace._t for trace in traces])
        i = np.concatenate([trace._i for trace in traces])
        v = np.concatenate([trace._v for trace in traces])
        return cls(t, i, v, label=label or traces[0].label)

    # -- basic accessors --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._t)

    @property
    def timestamps(self) -> np.ndarray:
        return self._t.copy()

    @property
    def current_ma(self) -> np.ndarray:
        return self._i.copy()

    @property
    def voltage_v(self) -> np.ndarray:
        return self._v.copy()

    @property
    def duration_s(self) -> float:
        if len(self._t) < 2:
            return 0.0
        return float(self._t[-1] - self._t[0])

    @property
    def sample_rate_hz(self) -> float:
        if len(self._t) < 2 or self.duration_s == 0:
            return 0.0
        return (len(self._t) - 1) / self.duration_s

    # -- statistics --------------------------------------------------------------
    def mean_current_ma(self) -> float:
        return float(np.mean(self._i)) if len(self._i) else 0.0

    def median_current_ma(self) -> float:
        return float(np.median(self._i)) if len(self._i) else 0.0

    def percentile_current_ma(self, percentile: float) -> float:
        if not 0 <= percentile <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {percentile!r}")
        return float(np.percentile(self._i, percentile)) if len(self._i) else 0.0

    def max_current_ma(self) -> float:
        return float(np.max(self._i)) if len(self._i) else 0.0

    def discharge_mah(self) -> float:
        """Charge delivered over the trace, by trapezoidal integration (mAh)."""
        if len(self._t) < 2:
            return 0.0
        return float(_trapezoid(self._i, self._t) / 3600.0)

    def mean_power_mw(self) -> float:
        if not len(self._i):
            return 0.0
        return float(np.mean(self._i * self._v))

    def energy_mwh(self) -> float:
        """Energy delivered over the trace (mWh)."""
        if len(self._t) < 2:
            return 0.0
        return float(_trapezoid(self._i * self._v, self._t) / 3600.0)

    def cdf(self, points: int = 200) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical CDF of the current samples.

        Returns ``(values_ma, cumulative_probability)`` suitable for plotting
        the paper's Figure 2 style curves.
        """
        if not len(self._i):
            return np.array([]), np.array([])
        values = np.sort(self._i)
        probabilities = np.arange(1, len(values) + 1) / len(values)
        if points and len(values) > points:
            indices = np.linspace(0, len(values) - 1, points).astype(int)
            values = values[indices]
            probabilities = probabilities[indices]
        return values, probabilities

    def summary(self) -> TraceSummary:
        return TraceSummary(
            samples=len(self),
            duration_s=self.duration_s,
            mean_current_ma=self.mean_current_ma(),
            median_current_ma=self.median_current_ma(),
            p95_current_ma=self.percentile_current_ma(95),
            max_current_ma=self.max_current_ma(),
            discharge_mah=self.discharge_mah(),
            mean_power_mw=self.mean_power_mw(),
            energy_mwh=self.energy_mwh(),
        )

    # -- transformations ----------------------------------------------------------
    def slice(self, start_s: float, end_s: float) -> "CurrentTrace":
        """Return the sub-trace with timestamps in ``[start_s, end_s]``."""
        if end_s < start_s:
            raise ValueError("end_s must be >= start_s")
        mask = (self._t >= start_s) & (self._t <= end_s)
        return CurrentTrace(self._t[mask], self._i[mask], self._v[mask], label=self.label)

    def downsample(self, factor: int) -> "CurrentTrace":
        """Keep every ``factor``-th sample (used by the sampling-rate ablation)."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor!r}")
        return CurrentTrace(
            self._t[::factor], self._i[::factor], self._v[::factor], label=self.label
        )

    def with_label(self, label: str) -> "CurrentTrace":
        return CurrentTrace(self._t, self._i, self._v, label=label)

    def to_rows(self) -> List[Tuple[float, float, float]]:
        """Export as ``(timestamp_s, current_ma, voltage_v)`` rows (job log format)."""
        return [
            (float(t), float(i), float(v)) for t, i, v in zip(self._t, self._i, self._v)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CurrentTrace(label={self.label!r}, samples={len(self)}, "
            f"duration={self.duration_s:.1f}s, median={self.median_current_ma():.1f}mA)"
        )


class TraceBuilder:
    """Incrementally accumulates samples, then freezes them into a :class:`CurrentTrace`."""

    def __init__(self, label: str = "") -> None:
        self._t: List[float] = []
        self._i: List[float] = []
        self._v: List[float] = []
        self.label = label

    def add(self, timestamp_s: float, current_ma: float, voltage_v: float) -> None:
        if self._t and timestamp_s < self._t[-1]:
            raise TraceError(
                f"sample timestamp {timestamp_s} precedes last timestamp {self._t[-1]}"
            )
        if current_ma < 0:
            raise TraceError("current samples must be non-negative")
        self._t.append(float(timestamp_s))
        self._i.append(float(current_ma))
        self._v.append(float(voltage_v))

    def extend(self, timestamps: Sequence[float], currents: Sequence[float], voltage_v: float) -> None:
        """Bulk-append a batch of samples sharing one supply voltage.

        The batch is validated against the previous sample only at its first
        element (the sampling engine generates internally ordered batches),
        which keeps high-rate sampling cheap.
        """
        timestamps = list(timestamps)
        currents = list(currents)
        if len(timestamps) != len(currents):
            raise TraceError("timestamps and currents batches must have the same length")
        if not timestamps:
            return
        if self._t and timestamps[0] < self._t[-1]:
            raise TraceError(
                f"sample timestamp {timestamps[0]} precedes last timestamp {self._t[-1]}"
            )
        self._t.extend(float(t) for t in timestamps)
        self._i.extend(float(i) for i in currents)
        self._v.extend([float(voltage_v)] * len(timestamps))

    def __len__(self) -> int:
        return len(self._t)

    def build(self, label: Optional[str] = None) -> CurrentTrace:
        return CurrentTrace(self._t, self._i, self._v, label=label or self.label)
