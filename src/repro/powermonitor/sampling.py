"""High-rate sampling on a discrete-event clock.

The real Monsoon HV samples at 5 kHz.  Scheduling 5,000 simulation events
per second would be wasteful, so the :class:`SamplingEngine` ticks at a much
lower *tick rate* and, on each tick, synthesises the batch of samples that
the hardware would have produced since the previous tick: the source current
is read once per tick and the batch is spread around it with small
sample-to-sample noise.  The resulting trace has the full 5 kHz sample count
and realistic per-sample jitter while the simulation stays fast.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.powermonitor.traces import CurrentTrace, TraceBuilder
from repro.simulation.entity import SimulationContext
from repro.simulation.process import PeriodicProcess
from repro.simulation.random import SeededRandom


class SamplingEngine:
    """Pulls current readings from a source and accumulates a :class:`CurrentTrace`.

    Parameters
    ----------
    context:
        Simulation context providing the clock and scheduler.
    source:
        Zero-argument callable returning the instantaneous load current in mA.
    random:
        Seeded stream used for per-sample jitter.
    sample_rate_hz:
        Nominal hardware sampling rate (5000 for the Monsoon HV).
    tick_rate_hz:
        How often the simulation actually evaluates the source.
    sample_noise_fraction:
        Relative standard deviation of the per-sample jitter within one tick.
    """

    def __init__(
        self,
        context: SimulationContext,
        source: Callable[[], float],
        random: SeededRandom,
        sample_rate_hz: float = 5000.0,
        tick_rate_hz: float = 20.0,
        sample_noise_fraction: float = 0.015,
    ) -> None:
        if sample_rate_hz <= 0:
            raise ValueError(f"sample_rate_hz must be positive, got {sample_rate_hz!r}")
        if tick_rate_hz <= 0:
            raise ValueError(f"tick_rate_hz must be positive, got {tick_rate_hz!r}")
        if sample_rate_hz < tick_rate_hz:
            raise ValueError("sample_rate_hz must be at least tick_rate_hz")
        self._context = context
        self._source = source
        self._random = random
        self._sample_rate_hz = float(sample_rate_hz)
        self._tick_rate_hz = float(tick_rate_hz)
        self._noise = float(sample_noise_fraction)
        self._voltage_v = 3.85
        self._builder: Optional[TraceBuilder] = None
        self._last_tick_time: Optional[float] = None
        self._process = PeriodicProcess(
            context.scheduler, 1.0 / tick_rate_hz, self._tick, label="monsoon-sampling"
        )
        self._max_observed_current_ma = 0.0
        self._overcurrent_callback: Optional[Callable[[float], None]] = None
        self._overcurrent_limit_ma: Optional[float] = None

    # -- configuration ----------------------------------------------------------
    @property
    def sample_rate_hz(self) -> float:
        return self._sample_rate_hz

    def set_sample_rate(self, sample_rate_hz: float) -> None:
        if sample_rate_hz < self._tick_rate_hz:
            raise ValueError("sample_rate_hz must be at least the tick rate")
        self._sample_rate_hz = float(sample_rate_hz)

    @property
    def tick_rate_hz(self) -> float:
        return self._tick_rate_hz

    def set_voltage(self, voltage_v: float) -> None:
        self._voltage_v = float(voltage_v)

    def set_overcurrent_guard(
        self, limit_ma: float, callback: Callable[[float], None]
    ) -> None:
        """Install a guard invoked when a tick observes current above ``limit_ma``."""
        self._overcurrent_limit_ma = float(limit_ma)
        self._overcurrent_callback = callback

    # -- lifecycle ----------------------------------------------------------------
    @property
    def sampling(self) -> bool:
        return self._process.running

    @property
    def max_observed_current_ma(self) -> float:
        return self._max_observed_current_ma

    def start(self, label: str = "") -> None:
        if self._process.running:
            raise RuntimeError("sampling is already active")
        self._builder = TraceBuilder(label=label)
        self._last_tick_time = self._context.now
        self._max_observed_current_ma = 0.0
        self._process.start(initial_delay=1.0 / self._tick_rate_hz)

    def stop(self) -> CurrentTrace:
        if not self._process.running:
            raise RuntimeError("sampling is not active")
        self._process.stop()
        assert self._builder is not None
        trace = self._builder.build()
        self._builder = None
        self._last_tick_time = None
        return trace

    def peek(self) -> CurrentTrace:
        """Trace accumulated so far without stopping the sampler."""
        if self._builder is None:
            return CurrentTrace.empty()
        return self._builder.build()

    # -- internal -------------------------------------------------------------------
    def _tick(self, timestamp: float) -> None:
        if self._builder is None or self._last_tick_time is None:
            return
        start = self._last_tick_time
        end = timestamp
        self._last_tick_time = timestamp
        if end <= start:
            return
        level_ma = max(float(self._source()), 0.0)
        self._max_observed_current_ma = max(self._max_observed_current_ma, level_ma)
        if (
            self._overcurrent_limit_ma is not None
            and self._overcurrent_callback is not None
            and level_ma > self._overcurrent_limit_ma
        ):
            self._overcurrent_callback(level_ma)
        count = max(1, int(round((end - start) * self._sample_rate_hz)))
        offsets = (np.arange(count) + 1.0) / count * (end - start)
        times = start + offsets
        if level_ma > 0 and self._noise > 0:
            noise = self._random.generator.normal(1.0, self._noise, size=count)
            noise = np.clip(noise, 0.7, 1.3)
            currents = level_ma * noise
        else:
            currents = np.full(count, level_ma)
        self._builder.extend(times, currents, self._voltage_v)
