"""Monsoon HVPM emulator.

Models the Monsoon High Voltage Power Monitor used by the paper's vantage
point: 0.8–13.5 V output voltage, 6 A continuous current, 5 kHz sampling,
driven through a Python API.  The emulator reproduces the parts of the
hardware that BatteryLab's software interacts with:

* mains power state (the Meross WiFi socket turns the unit on/off for safety);
* ``Vout`` control with range checking;
* a load attachment point — the relay circuit connects a device's current
  draw function here when the device is in battery bypass;
* sampling start/stop returning :class:`~repro.powermonitor.traces.CurrentTrace`;
* an over-current interlock that trips the output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.powermonitor.sampling import SamplingEngine
from repro.powermonitor.traces import CurrentTrace
from repro.simulation.entity import Entity, SimulationContext


class MonsoonError(RuntimeError):
    """Base class for monitor-level failures."""


class MonsoonSafetyError(MonsoonError):
    """Raised when an operation violates the unit's electrical limits."""


@dataclass(frozen=True)
class MonsoonSpec:
    """Electrical limits and sampling characteristics of a power monitor model."""

    model: str
    min_voltage_v: float
    max_voltage_v: float
    max_continuous_current_a: float
    sample_rate_hz: float
    serial_prefix: str = "HVPM"


MONSOON_HV_SPEC = MonsoonSpec(
    model="Monsoon HVPM",
    min_voltage_v=0.8,
    max_voltage_v=13.5,
    max_continuous_current_a=6.0,
    sample_rate_hz=5000.0,
)
"""The High Voltage Power Monitor the paper deploys (Section 3.2)."""


class MonsoonHVPM(Entity):
    """Emulated Monsoon power monitor.

    Parameters
    ----------
    context:
        Simulation context.
    name:
        Entity name (defaults to ``monsoon:<serial>``).
    spec:
        Electrical limits; defaults to the HVPM.
    tick_rate_hz:
        Simulation tick rate of the sampling engine (samples are still
        generated at ``spec.sample_rate_hz``).
    """

    def __init__(
        self,
        context: SimulationContext,
        serial: str = "HVPM-0001",
        spec: MonsoonSpec = MONSOON_HV_SPEC,
        tick_rate_hz: float = 20.0,
    ) -> None:
        super().__init__(context, f"monsoon:{serial}")
        self._serial = serial
        self._spec = spec
        self._mains_on = False
        self._vout_v = 0.0
        self._vout_enabled = False
        self._tripped = False
        self._load: Optional[Callable[[], float]] = None
        self._load_label = ""
        self._completed_traces: List[CurrentTrace] = []
        self._engine = SamplingEngine(
            context,
            source=self._read_load_current,
            random=self.random.child("sampling"),
            sample_rate_hz=spec.sample_rate_hz,
            tick_rate_hz=tick_rate_hz,
        )
        self._engine.set_overcurrent_guard(
            spec.max_continuous_current_a * 1000.0, self._trip_overcurrent
        )

    # -- identity ---------------------------------------------------------------
    @property
    def serial(self) -> str:
        return self._serial

    @property
    def spec(self) -> MonsoonSpec:
        return self._spec

    # -- mains power (Meross socket) ---------------------------------------------
    @property
    def mains_on(self) -> bool:
        return self._mains_on

    def power_on(self) -> None:
        """Apply mains power (what the WiFi power socket does)."""
        self._mains_on = True
        self._tripped = False
        self.log("mains power on")

    def power_off(self) -> None:
        """Cut mains power.  Any active sampling is aborted and Vout collapses."""
        if self._engine.sampling:
            trace = self._engine.stop()
            self._completed_traces.append(trace)
            self.log("sampling aborted by power-off", samples=len(trace))
        self._mains_on = False
        self._vout_enabled = False
        self._vout_v = 0.0
        self.log("mains power off")

    def _require_power(self) -> None:
        if not self._mains_on:
            raise MonsoonError(f"{self._spec.model} {self._serial} has no mains power")
        if self._tripped:
            raise MonsoonSafetyError(
                f"{self._spec.model} {self._serial} output is tripped; power-cycle to reset"
            )

    # -- voltage output -----------------------------------------------------------
    @property
    def vout_v(self) -> float:
        return self._vout_v if self._vout_enabled else 0.0

    @property
    def vout_enabled(self) -> bool:
        return self._vout_enabled

    @property
    def tripped(self) -> bool:
        return self._tripped

    def set_vout(self, voltage_v: float) -> None:
        """Set and enable the output voltage (``setVout`` in Monsoon's API).

        ``0`` disables the output; any other value must lie within the unit's
        supported range.
        """
        self._require_power()
        if voltage_v == 0:
            self._vout_enabled = False
            self._vout_v = 0.0
            self._engine.set_voltage(0.0)
            self.log("vout disabled")
            return
        if not self._spec.min_voltage_v <= voltage_v <= self._spec.max_voltage_v:
            raise MonsoonSafetyError(
                f"requested Vout {voltage_v} V outside supported range "
                f"[{self._spec.min_voltage_v}, {self._spec.max_voltage_v}] V"
            )
        self._vout_v = float(voltage_v)
        self._vout_enabled = True
        self._engine.set_voltage(self._vout_v)
        self.log("vout set", voltage_v=voltage_v)

    # -- load management ------------------------------------------------------------
    def attach_load(self, current_source: Callable[[], float], label: str = "") -> None:
        """Connect a load (a device in battery bypass) to the Vout terminals."""
        self._load = current_source
        self._load_label = label
        self.log("load attached", label=label)

    def detach_load(self) -> None:
        self._load = None
        self._load_label = ""
        self.log("load detached")

    @property
    def load_attached(self) -> bool:
        return self._load is not None

    @property
    def load_label(self) -> str:
        return self._load_label

    def _read_load_current(self) -> float:
        if not self._vout_enabled or self._load is None or self._tripped:
            return 0.0
        return max(float(self._load()), 0.0)

    def _trip_overcurrent(self, observed_ma: float) -> None:
        self._tripped = True
        self._vout_enabled = False
        self.log("overcurrent trip", observed_ma=observed_ma)

    # -- sampling ------------------------------------------------------------------
    @property
    def sampling(self) -> bool:
        return self._engine.sampling

    @property
    def sample_rate_hz(self) -> float:
        return self._engine.sample_rate_hz

    def set_sample_rate(self, sample_rate_hz: float) -> None:
        """Decimate the nominal 5 kHz rate (used by the sampling-rate ablation)."""
        self._engine.set_sample_rate(sample_rate_hz)

    def start_sampling(self, label: str = "") -> None:
        self._require_power()
        if not self._vout_enabled:
            raise MonsoonError("cannot start sampling with Vout disabled")
        self._engine.start(label=label)
        self.log("sampling started", label=label)

    def stop_sampling(self) -> CurrentTrace:
        trace = self._engine.stop()
        self._completed_traces.append(trace)
        self.log("sampling stopped", samples=len(trace), median_ma=trace.median_current_ma())
        return trace

    def peek_trace(self) -> CurrentTrace:
        return self._engine.peek()

    @property
    def completed_traces(self) -> List[CurrentTrace]:
        return list(self._completed_traces)

    def last_trace(self) -> Optional[CurrentTrace]:
        return self._completed_traces[-1] if self._completed_traces else None

    # -- convenience -----------------------------------------------------------------
    def measure_for(self, duration_s: float, label: str = "") -> CurrentTrace:
        """Start sampling, advance the simulation by ``duration_s``, stop, return the trace."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s!r}")
        self.start_sampling(label=label)
        self.context.run_for(duration_s)
        return self.stop_sampling()

    def status(self) -> dict:
        return {
            "serial": self._serial,
            "model": self._spec.model,
            "mains_on": self._mains_on,
            "vout_v": self.vout_v,
            "vout_enabled": self._vout_enabled,
            "tripped": self._tripped,
            "sampling": self.sampling,
            "load": self._load_label if self._load is not None else None,
            "sample_rate_hz": self.sample_rate_hz,
        }
