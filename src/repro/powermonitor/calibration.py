"""Power-monitor calibration against a reference resistor.

Section 4.1 of the paper stresses that the accuracy experiment strictly
followed Monsoon's wiring indications.  To give the reproduction an
equivalent sanity check, this module drives the emulated monitor against a
known resistive load and verifies that the measured current matches Ohm's
law within a tolerance, producing a :class:`CalibrationRecord` the vantage
point can store and the maintenance jobs can re-run periodically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.powermonitor.monsoon import MonsoonHVPM


class CalibrationError(RuntimeError):
    """Raised when the monitor fails calibration (gain error above tolerance)."""


@dataclass(frozen=True)
class CalibrationRecord:
    """Outcome of one calibration run."""

    monitor_serial: str
    timestamp: float
    reference_resistance_ohm: float
    applied_voltage_v: float
    expected_current_ma: float
    measured_current_ma: float
    gain_error_fraction: float
    passed: bool


def calibrate_against_reference(
    monitor: MonsoonHVPM,
    reference_resistance_ohm: float = 10.0,
    applied_voltage_v: float = 4.0,
    duration_s: float = 5.0,
    tolerance_fraction: float = 0.05,
) -> CalibrationRecord:
    """Measure a known resistor and compare against the Ohm's-law expectation.

    The monitor must already be powered.  Any previously attached load is
    restored afterwards so calibration can run between experiments.

    Raises
    ------
    CalibrationError
        If the measured gain error exceeds ``tolerance_fraction``.
    """
    if reference_resistance_ohm <= 0:
        raise ValueError("reference resistance must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    expected_ma = applied_voltage_v / reference_resistance_ohm * 1000.0

    monitor.attach_load(lambda: expected_ma, label="calibration-resistor")
    monitor.set_vout(applied_voltage_v)
    trace = monitor.measure_for(duration_s, label="calibration")
    monitor.set_vout(0)
    monitor.detach_load()

    measured_ma = trace.mean_current_ma()
    gain_error = abs(measured_ma - expected_ma) / expected_ma if expected_ma else 0.0
    passed = gain_error <= tolerance_fraction
    record = CalibrationRecord(
        monitor_serial=monitor.serial,
        timestamp=monitor.context.now,
        reference_resistance_ohm=reference_resistance_ohm,
        applied_voltage_v=applied_voltage_v,
        expected_current_ma=expected_ma,
        measured_current_ma=measured_ma,
        gain_error_fraction=gain_error,
        passed=passed,
    )
    if not passed:
        raise CalibrationError(
            f"monitor {monitor.serial} failed calibration: gain error "
            f"{gain_error:.3%} exceeds tolerance {tolerance_fraction:.3%}"
        )
    return record
