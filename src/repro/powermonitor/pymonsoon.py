"""PyMonsoon-style compatibility shim.

The paper drives the Monsoon HV through Monsoon's own Python library
(``Monsoon.HVPM`` / ``Monsoon.sampleEngine``).  Existing automation scripts
written against that API use ``setup_usb``, ``setVout``, ``startSampling``
and ``stopSampling`` spellings; this shim maps those onto the emulator so
such scripts can run unmodified against the reproduction.
"""

from __future__ import annotations

from typing import List, Optional

from repro.powermonitor.monsoon import MonsoonHVPM
from repro.powermonitor.traces import CurrentTrace


class HVPM:
    """Drop-in stand-in for ``Monsoon.HVPM.Monsoon`` objects.

    Wraps a :class:`~repro.powermonitor.monsoon.MonsoonHVPM` emulator and
    exposes the camelCase entry points Monsoon's library uses.
    """

    def __init__(self, emulator: MonsoonHVPM) -> None:
        self._emulator = emulator
        self._connected = False

    # -- connection -----------------------------------------------------------
    def setup_usb(self) -> None:
        """Open the (virtual) USB control channel to the monitor."""
        if not self._emulator.mains_on:
            raise RuntimeError("Monsoon not found: is the unit powered on?")
        self._connected = True

    def closeDevice(self) -> None:  # noqa: N802 - external API spelling
        self._connected = False

    @property
    def connected(self) -> bool:
        return self._connected

    def _require_connection(self) -> None:
        if not self._connected:
            raise RuntimeError("call setup_usb() before using the monitor")

    # -- voltage --------------------------------------------------------------
    def setVout(self, voltage_v: float) -> None:  # noqa: N802 - external API spelling
        self._require_connection()
        self._emulator.set_vout(voltage_v)

    def getVout(self) -> float:  # noqa: N802 - external API spelling
        self._require_connection()
        return self._emulator.vout_v

    # -- sampling ---------------------------------------------------------------
    def startSampling(self, label: str = "") -> None:  # noqa: N802
        self._require_connection()
        self._emulator.start_sampling(label=label)

    def stopSampling(self) -> CurrentTrace:  # noqa: N802
        self._require_connection()
        return self._emulator.stop_sampling()

    def getSamples(self) -> List[List[float]]:  # noqa: N802
        """Return samples accumulated so far as ``[timestamps, currents]`` lists."""
        self._require_connection()
        trace = self._emulator.peek_trace()
        return [list(trace.timestamps), list(trace.current_ma)]

    def lastTrace(self) -> Optional[CurrentTrace]:  # noqa: N802
        return self._emulator.last_trace()
