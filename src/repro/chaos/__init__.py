"""repro.chaos — the chaos virtual lab.

Scripted fault injection, a whole-platform invariant checker, and a soak
harness that drives hundreds of thousands of jobs through the gateway,
federation and agent planes while faults fire on the simulated clock.

* :mod:`repro.chaos.faults` — the shared fault vocabulary every plane
  speaks (``SimulatedCrash``, ``CrashPlan``, ``FaultPlane``, ...);
* :mod:`repro.chaos.scenario` — the declarative scenario DSL, builder
  API and canned scenarios;
* :mod:`repro.chaos.injectors` — transport, journal and federation
  injection points;
* :mod:`repro.chaos.invariants` — the invariant catalogue;
* :mod:`repro.chaos.soak` — the soak harness behind ``repro chaos``.
"""

from repro.chaos.faults import (
    CRASH_MODES,
    CrashPlan,
    ExecutionLedger,
    FaultPlane,
    InjectedFault,
    SimulatedCrash,
)
from repro.chaos.injectors import ChaosTransport, CrashingBackend, ShardPartition
from repro.chaos.invariants import (
    CheckResult,
    InvariantReport,
    InvariantViolation,
    check_analytics_live_equals_replay,
    check_credit_conservation,
    check_no_double_execution,
    check_no_lost_jobs,
    check_push_contract,
    check_recovery_byte_identical,
)
from repro.chaos.scenario import (
    FAULT_KINDS,
    FaultEvent,
    Scenario,
    ScenarioBuilder,
    ScenarioError,
    canned_scenario,
    canned_scenario_names,
)
from repro.chaos.soak import SoakConfig, SoakHarness, SoakResult, run_soak

__all__ = [
    "CRASH_MODES",
    "CrashPlan",
    "ExecutionLedger",
    "FaultPlane",
    "InjectedFault",
    "SimulatedCrash",
    "ChaosTransport",
    "CrashingBackend",
    "ShardPartition",
    "CheckResult",
    "InvariantReport",
    "InvariantViolation",
    "check_analytics_live_equals_replay",
    "check_credit_conservation",
    "check_no_double_execution",
    "check_no_lost_jobs",
    "check_push_contract",
    "check_recovery_byte_identical",
    "FAULT_KINDS",
    "FaultEvent",
    "Scenario",
    "ScenarioBuilder",
    "ScenarioError",
    "canned_scenario",
    "canned_scenario_names",
    "SoakConfig",
    "SoakHarness",
    "SoakResult",
    "run_soak",
]
