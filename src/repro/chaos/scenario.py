"""The chaos scenario DSL: declarative fault scripts on the simulation clock.

A *scenario* is an ordered list of fault events, each ``(at, kind, target,
params)``, serialisable as plain JSON so scripts can live in files and ride
the CLI (``repro chaos --scenario @script.json``).  Timestamps are
simulated seconds from the start of the run; the soak harness (or
:meth:`Scenario.schedule` for event-loop-driven hosts) fires each event
when the simulation clock reaches it.

Fault kinds
-----------
``device.kill``       fail the next N payloads on a device (mid-job death)
``device.hang``       wedge the next N payloads for ``hang_s``, then fail
``device.slow``       slow the next N payloads by ``delay_s`` (they succeed)
``power.off``         PDU outlet off: a whole vantage point goes dark
``power.on``          outlet back on
``power.cycle``       off, then on again ``off_s`` later (reboot)
``partition.start``   drop requests on a named transport/router link
``partition.heal``    heal that link
``crash.server``      kill -9 the access server at journal append ``at_append``
``crash.agent``       kill -9 an agent daemon at outbox append ``at_append``

Two authoring styles produce the same :class:`Scenario`:

>>> Scenario.from_dict({
...     "name": "blip",
...     "events": [
...         {"at": 5.0, "kind": "power.cycle",
...          "target": {"vantage_point": "node1"}, "params": {"off_s": 3.0}},
...     ],
... })
>>> (ScenarioBuilder("blip").at(5.0).power_cycle("node1", off_s=3.0)).build()

Canned scenarios (:func:`canned_scenario`, :func:`canned_scenario_names`)
are builder functions scaled to a run's horizon so ``repro chaos
--scenario kitchen-sink`` works at any job count; their randomised choices
draw only from the seed they are given, keeping every run reproducible
from its printed seed.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "FAULT_KINDS",
    "ScenarioError",
    "FaultEvent",
    "Scenario",
    "ScenarioBuilder",
    "canned_scenario",
    "canned_scenario_names",
]

#: Every fault kind the DSL accepts, and the params each understands.
FAULT_KINDS: Dict[str, tuple] = {
    "device.kill": ("jobs",),
    "device.hang": ("hang_s", "jobs"),
    "device.slow": ("delay_s", "jobs"),
    "power.off": (),
    "power.on": (),
    "power.cycle": ("off_s",),
    "partition.start": ("duration_s",),
    "partition.heal": (),
    "crash.server": ("at_append", "mode"),
    "crash.agent": ("at_append", "mode"),
}


class ScenarioError(ValueError):
    """A scenario script failed validation."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *when*, *what*, *where*, and *how hard*."""

    at: float
    kind: str
    target: Dict[str, object] = field(default_factory=dict)
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ScenarioError(
                f"unknown fault kind {self.kind!r}; kinds are {sorted(FAULT_KINDS)}"
            )
        if self.at < 0:
            raise ScenarioError(f"event time must be non-negative, got {self.at!r}")
        unknown = set(self.params) - set(FAULT_KINDS[self.kind])
        if unknown:
            raise ScenarioError(
                f"{self.kind} does not take params {sorted(unknown)}; "
                f"it takes {sorted(FAULT_KINDS[self.kind])}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "at": self.at,
            "kind": self.kind,
            "target": dict(self.target),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        if not isinstance(data, dict):
            raise ScenarioError(f"event must be an object, got {type(data).__name__}")
        try:
            at = float(data["at"])
            kind = str(data["kind"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ScenarioError(f"event needs numeric 'at' and string 'kind': {data!r}") from exc
        target = data.get("target", {})
        params = data.get("params", {})
        if not isinstance(target, dict) or not isinstance(params, dict):
            raise ScenarioError("event 'target' and 'params' must be objects")
        return cls(at=at, kind=kind, target=dict(target), params=dict(params))


class Scenario:
    """An immutable, time-ordered fault script."""

    def __init__(self, name: str, events: List[FaultEvent]) -> None:
        self.name = name
        self.events: List[FaultEvent] = sorted(events, key=lambda e: e.at)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """Time of the last event (0 for an empty scenario)."""
        return self.events[-1].at if self.events else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "events": [e.to_dict() for e in self.events]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        if not isinstance(data, dict):
            raise ScenarioError("scenario must be an object")
        events = data.get("events", [])
        if not isinstance(events, list):
            raise ScenarioError("scenario 'events' must be a list")
        return cls(
            name=str(data.get("name", "unnamed")),
            events=[FaultEvent.from_dict(event) for event in events],
        )

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ScenarioError(f"scenario is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def schedule(self, scheduler, fire: Callable[[FaultEvent], None]) -> int:
        """Register every event on an
        :class:`~repro.simulation.events.EventScheduler`; returns the count.

        For hosts that run their own event loop.  The soak harness instead
        interleaves events with its submission waves directly (same clock,
        same ordering) so that firing survives a mid-run server rebuild.
        """
        for event in self.events:
            scheduler.schedule_at(
                event.at,
                lambda event=event: fire(event),
                label=f"chaos:{self.name}:{event.kind}",
            )
        return len(self.events)


class ScenarioBuilder:
    """Fluent authoring API; every verb mirrors one DSL fault kind.

    >>> builder = ScenarioBuilder("demo")
    >>> builder.at(2.0).kill_device("node1", "node1-dev01")
    >>> builder.at(4.0).partition("agents", duration_s=3.0)
    >>> scenario = builder.build()
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._events: List[FaultEvent] = []
        self._cursor = 0.0

    def at(self, when: float) -> "ScenarioBuilder":
        """Set the timestamp the next verb(s) fire at."""
        if when < 0:
            raise ScenarioError("scenario time must be non-negative")
        self._cursor = float(when)
        return self

    def after(self, delay: float) -> "ScenarioBuilder":
        """Advance the cursor relative to the previous event."""
        return self.at(self._cursor + delay)

    def _add(self, kind: str, target: Dict[str, object], **params: object) -> "ScenarioBuilder":
        self._events.append(
            FaultEvent(at=self._cursor, kind=kind, target=target, params=params)
        )
        return self

    # -- device flakiness -----------------------------------------------------
    def kill_device(self, vantage_point: str, serial: str, jobs: int = 1):
        return self._add(
            "device.kill",
            {"vantage_point": vantage_point, "serial": serial},
            jobs=jobs,
        )

    def hang_device(self, vantage_point: str, serial: str, hang_s: float, jobs: int = 1):
        return self._add(
            "device.hang",
            {"vantage_point": vantage_point, "serial": serial},
            hang_s=hang_s,
            jobs=jobs,
        )

    def slow_device(self, vantage_point: str, serial: str, delay_s: float, jobs: int = 1):
        return self._add(
            "device.slow",
            {"vantage_point": vantage_point, "serial": serial},
            delay_s=delay_s,
            jobs=jobs,
        )

    # -- power events ---------------------------------------------------------
    def power_off(self, vantage_point: str):
        return self._add("power.off", {"vantage_point": vantage_point})

    def power_on(self, vantage_point: str):
        return self._add("power.on", {"vantage_point": vantage_point})

    def power_cycle(self, vantage_point: str, off_s: float = 1.0):
        return self._add("power.cycle", {"vantage_point": vantage_point}, off_s=off_s)

    # -- network partitions ---------------------------------------------------
    def partition(self, link: str, duration_s: Optional[float] = None):
        """Partition a named link (``"agents"``, ``"client"``, or a shard id).

        With ``duration_s`` the heal is scheduled automatically."""
        if duration_s is None:
            return self._add("partition.start", {"link": link})
        self._add("partition.start", {"link": link}, duration_s=duration_s)
        saved = self._cursor
        self.at(saved + float(duration_s))._add("partition.heal", {"link": link})
        self._cursor = saved
        return self

    def heal(self, link: str):
        return self._add("partition.heal", {"link": link})

    # -- crash-kill -----------------------------------------------------------
    def crash_server(self, at_append: int, mode: str = "after", shard: Optional[str] = None):
        target: Dict[str, object] = {}
        if shard is not None:
            target["shard"] = shard
        return self._add("crash.server", target, at_append=at_append, mode=mode)

    def crash_agent(self, agent_id: str, at_append: int, mode: str = "after"):
        return self._add(
            "crash.agent", {"agent_id": agent_id}, at_append=at_append, mode=mode
        )

    def build(self) -> Scenario:
        return Scenario(self.name, list(self._events))


# ---------------------------------------------------------------------------
# Canned scenarios
# ---------------------------------------------------------------------------
#
# Each canned scenario is a function of (seed, horizon_s, devices) so one
# name works at every soak size: fault times are fractions of the horizon,
# and device picks draw from a seed-derived stream only.  ``devices`` is a
# list of (vantage_point, serial) pairs the scenario may touch.


def _pick_devices(rng: random.Random, devices: List[tuple], count: int) -> List[tuple]:
    if not devices:
        raise ScenarioError("canned scenarios need at least one device")
    count = min(count, len(devices))
    return rng.sample(sorted(devices), count)


def _device_flaky(seed: int, horizon_s: float, devices: List[tuple]) -> Scenario:
    """Mid-job deaths, hangs and slow I/O sprinkled across the fleet."""
    rng = random.Random(seed)
    builder = ScenarioBuilder("device-flaky")
    for index, (vp, serial) in enumerate(_pick_devices(rng, devices, 6)):
        when = horizon_s * (0.1 + 0.8 * rng.random())
        verb = index % 3
        if verb == 0:
            builder.at(when).kill_device(vp, serial, jobs=1 + rng.randrange(2))
        elif verb == 1:
            builder.at(when).hang_device(vp, serial, hang_s=2.0 + rng.random() * 3.0)
        else:
            builder.at(when).slow_device(vp, serial, delay_s=0.5 + rng.random(), jobs=2)
    return builder.build()


def _power_cycle(seed: int, horizon_s: float, devices: List[tuple]) -> Scenario:
    """Reboot one vantage point mid-run — a PDU outlet cycled."""
    rng = random.Random(seed)
    vp = _pick_devices(rng, devices, 1)[0][0]
    builder = ScenarioBuilder("power-cycle")
    builder.at(horizon_s * 0.4).power_cycle(vp, off_s=max(1.0, horizon_s * 0.1))
    return builder.build()


def _partition_heal(seed: int, horizon_s: float, devices: List[tuple]) -> Scenario:
    """Cut the agent plane off the gateway for a window, then heal."""
    builder = ScenarioBuilder("partition")
    builder.at(horizon_s * 0.3).partition("agents", duration_s=max(1.0, horizon_s * 0.2))
    return builder.build()


def _crash_recovery(seed: int, horizon_s: float, devices: List[tuple]) -> Scenario:
    """Kill -9 the server mid-journal (torn final append) and recover."""
    rng = random.Random(seed)
    builder = ScenarioBuilder("crash-recovery")
    mode = rng.choice(("before", "after", "torn"))
    builder.at(horizon_s * 0.5).crash_server(at_append=0, mode=mode)
    return builder.build()


def _kitchen_sink(seed: int, horizon_s: float, devices: List[tuple]) -> Scenario:
    """Everything at once: device death + power cycle + partition +
    shard crash-kill, spread across the run."""
    rng = random.Random(seed)
    builder = ScenarioBuilder("kitchen-sink")
    picks = _pick_devices(rng, devices, 4)
    builder.at(horizon_s * 0.15).kill_device(*picks[0][:2], jobs=2)
    builder.at(horizon_s * 0.25).slow_device(*picks[1][:2], delay_s=1.0, jobs=3)
    builder.at(horizon_s * 0.35).hang_device(*picks[2][:2], hang_s=2.5)
    builder.at(horizon_s * 0.45).power_cycle(picks[3][0], off_s=max(1.0, horizon_s * 0.08))
    builder.at(horizon_s * 0.55).partition("agents", duration_s=max(1.0, horizon_s * 0.1))
    builder.at(horizon_s * 0.7).crash_server(
        at_append=0, mode=rng.choice(("before", "after", "torn"))
    )
    builder.at(horizon_s * 0.85).kill_device(*picks[0][:2])
    return builder.build()


_CANNED: Dict[str, Callable[[int, float, List[tuple]], Scenario]] = {
    "device-flaky": _device_flaky,
    "power-cycle": _power_cycle,
    "partition": _partition_heal,
    "crash-recovery": _crash_recovery,
    "kitchen-sink": _kitchen_sink,
}


def canned_scenario_names() -> List[str]:
    return sorted(_CANNED)


def canned_scenario(
    name: str, seed: int, horizon_s: float, devices: List[tuple]
) -> Scenario:
    """Instantiate a canned scenario scaled to one run's horizon and fleet."""
    try:
        build = _CANNED[name]
    except KeyError:
        raise ScenarioError(
            f"unknown canned scenario {name!r}; names: {canned_scenario_names()}"
        ) from None
    if horizon_s <= 0:
        raise ScenarioError("horizon_s must be positive")
    return build(seed, horizon_s, [tuple(d) for d in devices])
