"""The invariant catalogue: the platform's global contracts, checked.

Each check is a pure function from observable state to a
:class:`CheckResult`; a :class:`InvariantReport` aggregates them and can
raise :class:`InvariantViolation` with every failure's detail.  The
catalogue covers the contracts the rest of the test suite proves
point-wise, restated as whole-run assertions a chaos soak can run after
(or during) any scenario:

``no_lost_jobs``
    Every job the submitter was ever acked reaches a terminal status once
    the run drains — faults may fail jobs, they may never *lose* one.
``no_double_execution``
    No payload runs twice within one process epoch.  Jobs in flight when a
    process was crash-killed may legitimately re-run after recovery (the
    journal records completion *after* the payload, exactly like a real
    ``kill -9``); those re-runs are counted, not flagged.
``recovery_byte_identical``
    Recovering the same durable state twice yields byte-identical
    platforms: same queue order, same job statuses, same canonical
    analytics report.
``credit_conservation``
    Per account, the transaction history sums exactly to the balance —
    credits are minted and burned only through recorded transactions.
``analytics_live_equals_replay``
    The live-folded analytics report equals a cold replay of the journal,
    byte for byte.
``push_seq_gap_equals_dropped``
    On a push stream, sequence-number gaps equal the ``dropped`` counts
    the gateway declared — back-pressure loses frames loudly or not at all.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "InvariantViolation",
    "CheckResult",
    "InvariantReport",
    "check_no_lost_jobs",
    "check_no_double_execution",
    "check_recovery_byte_identical",
    "check_credit_conservation",
    "check_analytics_live_equals_replay",
    "check_push_contract",
]

#: Statuses a drained run may leave a job in.
TERMINAL_STATUSES = frozenset({"completed", "failed", "cancelled"})


class InvariantViolation(AssertionError):
    """At least one platform contract did not hold."""


@dataclass
class CheckResult:
    """One invariant's verdict."""

    name: str
    ok: bool
    details: str = ""
    data: Dict[str, object] = field(default_factory=dict)

    def line(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        return f"{mark}  {self.name}" + (f" — {self.details}" if self.details else "")


class InvariantReport:
    """The verdicts of one run, in catalogue order."""

    def __init__(self, checks: Optional[Iterable[CheckResult]] = None) -> None:
        self.checks: List[CheckResult] = list(checks or ())

    def add(self, check: CheckResult) -> CheckResult:
        self.checks.append(check)
        return check

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failures(self) -> List[CheckResult]:
        return [check for check in self.checks if not check.ok]

    def summary(self) -> str:
        return "\n".join(check.line() for check in self.checks)

    def raise_on_failure(self) -> None:
        if not self.ok:
            raise InvariantViolation(
                "invariant violation(s):\n"
                + "\n".join(check.line() for check in self.failures())
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "checks": [
                {"name": c.name, "ok": c.ok, "details": c.details} for c in self.checks
            ],
        }


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------


def _all_jobs(servers) -> Dict[int, object]:
    jobs: Dict[int, object] = {}
    for server in servers:
        for job in server.scheduler.jobs():
            jobs[job.job_id] = job
    return jobs


def check_no_lost_jobs(servers, submitted_ids: Iterable[int]) -> CheckResult:
    """Every acked job id exists somewhere and reached a terminal status."""
    servers = list(servers)
    jobs = _all_jobs(servers)
    missing = sorted(job_id for job_id in submitted_ids if job_id not in jobs)
    stuck = sorted(
        job_id
        for job_id in submitted_ids
        if job_id in jobs and jobs[job_id].status.value not in TERMINAL_STATUSES
    )
    ok = not missing and not stuck
    details = ""
    if missing:
        details += f"{len(missing)} job(s) vanished (e.g. {missing[:5]})"
    if stuck:
        details += ("; " if details else "") + (
            f"{len(stuck)} job(s) non-terminal after drain (e.g. "
            f"{[(j, jobs[j].status.value) for j in stuck[:5]]})"
        )
    if ok:
        details = f"{len(jobs)} job(s) accounted for"
    return CheckResult("no_lost_jobs", ok, details, {"missing": missing, "stuck": stuck})


def check_no_double_execution(ledger) -> CheckResult:
    """No payload ran twice within one process epoch (see
    :class:`~repro.chaos.faults.ExecutionLedger`)."""
    doubled = ledger.double_executions()
    reruns = ledger.crash_reruns()
    ok = not doubled
    if ok:
        details = (
            f"{len(ledger.executed_jobs())} job(s) executed exactly once per epoch"
            + (f"; {reruns} legitimate crash re-run(s)" if reruns else "")
        )
    else:
        sample = sorted(doubled.items())[:5]
        details = f"{len(doubled)} job(s) double-executed within an epoch (e.g. {sample})"
    return CheckResult(
        "no_double_execution", ok, details, {"doubled": doubled, "crash_reruns": reruns}
    )


def _recovery_fingerprint(platform) -> Dict[str, object]:
    """The canonical byte-comparable state of one recovered platform."""
    from repro.analytics import AnalyticsEngine

    server = platform.access_server
    backend = server.persistence.backend
    backend.sync()
    return {
        "queue": [job.job_id for job in server.scheduler.engine.queue.jobs()],
        "statuses": {
            job.job_id: job.status.value for job in server.scheduler.jobs()
        },
        "report": AnalyticsEngine.from_backend(backend).report_json(),
    }


def _clone_backend(backend):
    """An independent copy of a backend's durable state.

    File-backed state is copied to a fresh directory (the moral equivalent
    of restoring a disk image onto another machine); in-memory backends
    are deep-copied.  :class:`~repro.chaos.injectors.CrashingBackend`
    wrappers are unwrapped first — the crash plan is not durable state.
    """
    inner = getattr(backend, "inner", backend)
    state_dir = getattr(inner, "state_dir", None)
    if state_dir is not None:
        import shutil
        import tempfile

        from repro.accessserver.persistence import FileBackend

        inner.sync()
        dest = Path(tempfile.mkdtemp(prefix="chaos-recovery-")) / "state"
        shutil.copytree(state_dir, dest)
        return FileBackend(dest)
    return copy.deepcopy(inner)


def check_recovery_byte_identical(backend, platform_factory) -> CheckResult:
    """Recover the same durable state twice; the results must be identical.

    ``platform_factory(backend)`` must build a *fresh* platform recovered
    from the given backend.  The durable state is cloned per recovery so
    neither attach (which checkpoints) can disturb the other.
    """
    first = _recovery_fingerprint(platform_factory(_clone_backend(backend)))
    second = _recovery_fingerprint(platform_factory(_clone_backend(backend)))
    ok = first == second
    if ok:
        details = (
            f"two recoveries agree on {len(first['statuses'])} job(s), "
            f"queue of {len(first['queue'])} and the analytics report"
        )
    else:
        diverged = sorted(
            key for key in first if first[key] != second[key]
        )
        details = f"recoveries diverged on {diverged}"
    return CheckResult("recovery_byte_identical", ok, details)


def check_credit_conservation(ledger) -> CheckResult:
    """Each account's transactions sum exactly to its balance."""
    drifting: List[tuple] = []
    accounts = 0
    for account in ledger.accounts():
        accounts += 1
        total = sum(txn.amount_device_hours for txn in account.transactions)
        if abs(total - account.balance_device_hours) > 1e-6:
            drifting.append((account.owner, total, account.balance_device_hours))
    ok = not drifting
    details = (
        f"{accounts} account(s) reconcile"
        if ok
        else f"ledger drift on {drifting[:5]}"
    )
    return CheckResult("credit_conservation", ok, details, {"drifting": drifting})


def check_analytics_live_equals_replay(server) -> CheckResult:
    """The live engine's report equals a cold journal replay, byte for byte."""
    from repro.analytics import AnalyticsEngine

    if server.analytics is None or server.persistence is None:
        return CheckResult(
            "analytics_live_equals_replay",
            False,
            "analytics or persistence not enabled on this server",
        )
    server.persistence.backend.sync()
    live = server.analytics.report_json()
    replayed = AnalyticsEngine.from_backend(server.persistence.backend).report_json()
    ok = live == replayed
    details = (
        f"{server.analytics.records_folded} record(s), reports identical"
        if ok
        else "live report differs from cold replay"
    )
    return CheckResult("analytics_live_equals_replay", ok, details)


def check_push_contract(frames: Sequence[dict]) -> CheckResult:
    """Sequence gaps on a push stream must equal the declared drops.

    ``frames`` are the wire-form push frames of *one* subscription, in
    arrival order; each carries ``seq`` and a cumulative-per-gap
    ``dropped`` count (frames following a drop window declare how many
    were shed).
    """
    gaps = 0
    declared = 0
    last_seq: Optional[int] = None
    out_of_order: List[tuple] = []
    for frame in frames:
        seq = int(frame.get("seq", 0))
        if last_seq is not None:
            if seq <= last_seq:
                out_of_order.append((last_seq, seq))
            else:
                gaps += seq - last_seq - 1
        declared += int(frame.get("dropped", 0) or 0)
        last_seq = seq
    ok = not out_of_order and gaps == declared
    if ok:
        details = f"{len(frames)} frame(s), {gaps} gap(s) all declared"
    elif out_of_order:
        details = f"sequence went backwards at {out_of_order[:3]}"
    else:
        details = f"{gaps} frame(s) missing but only {declared} declared dropped"
    return CheckResult(
        "push_seq_gap_equals_dropped",
        ok,
        details,
        {"gaps": gaps, "declared": declared},
    )
