"""Transport, journal and federation injectors: where faults enter the wire.

Three injection points cover the platform's communication and durability
surfaces:

* :class:`ChaosTransport` wraps any :class:`~repro.api.client.Transport`
  (the in-process bridge or the socket-level
  :class:`~repro.api.gateway.JsonLinesTransport`) and simulates the
  network between that client and its gateway: partitions fail every
  request with the transport's own retryable error, ``drop_next`` loses a
  bounded number of requests, and a configured delay adds latency through
  a pluggable sink (wall-clock sleep for sockets, simulated-clock advance
  for in-process runs).
* :class:`CrashingBackend` wraps a persistence
  :class:`~repro.accessserver.persistence.StorageBackend` and crash-kills
  the *server* at a chosen journal append, through the same shared
  :class:`~repro.chaos.faults.CrashPlan` the agent outbox uses — the PR-9
  crash matrix generalised to any process with a journal.
* :class:`ShardPartition` isolates one federation shard from its
  scatter-gather router: while partitioned, every request the
  :class:`~repro.federation.router.FederationRouter` forwards to that
  shard fails with ``transport.failed``, exactly what a severed link
  between router and shard looks like to clients.

All injectors are heal-able and count what they did, so invariant checks
can reconcile observed failures against injected ones.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.api.client import Transport
from repro.api.errors import TransportApiError
from repro.chaos.faults import CrashPlan

__all__ = ["ChaosTransport", "CrashingBackend", "ShardPartition"]


class ChaosTransport(Transport):
    """A transport wrapper that misbehaves on command.

    Parameters
    ----------
    inner:
        The real transport to wrap.
    delay_sink:
        Where injected latency goes: a callable taking seconds.  Defaults
        to ``time.sleep`` (right for socket transports); in-process
        simulations pass the scheduler's ``run_for`` so delay burns
        simulated time instead of wall time.
    """

    def __init__(
        self,
        inner: Transport,
        delay_sink: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.inner = inner
        self._delay_sink = delay_sink if delay_sink is not None else time.sleep
        self._partitioned = False
        self._drop_next = 0
        self._delay_s = 0.0
        self.dropped_requests = 0
        self.delayed_requests = 0

    # -- chaos controls -------------------------------------------------------
    @property
    def partitioned(self) -> bool:
        return self._partitioned

    def partition(self) -> None:
        """Sever the link: every request fails until :meth:`heal`."""
        self._partitioned = True

    def heal(self) -> None:
        self._partitioned = False
        self._drop_next = 0

    def drop_next(self, count: int = 1) -> None:
        """Lose the next ``count`` requests (each fails with
        ``transport.failed``), then recover on its own."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._drop_next = count

    def delay(self, seconds: float) -> None:
        """Add fixed latency to every subsequent request (0 to clear)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._delay_s = seconds

    def _gate(self) -> None:
        if self._partitioned:
            self.dropped_requests += 1
            raise TransportApiError("chaos: link partitioned")
        if self._drop_next > 0:
            self._drop_next -= 1
            self.dropped_requests += 1
            raise TransportApiError("chaos: request dropped")
        if self._delay_s > 0.0:
            self.delayed_requests += 1
            self._delay_sink(self._delay_s)

    # -- Transport ------------------------------------------------------------
    @property
    def supports_reconnect(self) -> bool:  # type: ignore[override]
        return self.inner.supports_reconnect

    def send(self, request: dict) -> dict:
        self._gate()
        return self.inner.send(request)

    def send_many(self, requests: List[dict]) -> List[dict]:
        self._gate()
        return self.inner.send_many(requests)

    def recv_push(
        self, subscription_id: int, timeout_s: Optional[float] = None
    ) -> Optional[dict]:
        if self._partitioned:
            raise TransportApiError("chaos: link partitioned")
        return self.inner.recv_push(subscription_id, timeout_s)

    def close(self) -> None:
        self.inner.close()


class CrashingBackend:
    """A storage backend proxy that can kill -9 its server mid-append.

    Duck-types :class:`~repro.accessserver.persistence.StorageBackend`:
    every operation delegates to the wrapped backend, with
    :meth:`append` routed through a shared
    :class:`~repro.chaos.faults.CrashPlan`.  ``torn`` mode writes half the
    record's JSON line straight into a file backend's journal with no
    newline — the exact on-disk shape of a crash mid-``write(2)`` — and
    degrades to "nothing written" for backends with no file to tear,
    which is what losing the only dirty sector means.

    Arm it with :meth:`plan_crash` using an *absolute* append offset, or
    :meth:`plan_crash_in` relative to the appends already made — the form
    scenario events use, since they fire mid-run.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.plan = CrashPlan()

    # -- fault injection ------------------------------------------------------
    def plan_crash(self, at_write: int, mode: str = "after") -> None:
        """Crash at the ``at_write``-th append since construction (0-based)."""
        self.plan.arm(at_write, mode)

    def plan_crash_in(self, appends_from_now: int, mode: str = "after") -> None:
        """Crash ``appends_from_now`` appends from the current offset
        (0 = the very next append)."""
        if appends_from_now < 0:
            raise ValueError("appends_from_now must be non-negative")
        self.plan.arm(self.plan.writes + appends_from_now, mode)

    @property
    def writes(self) -> int:
        return self.plan.writes

    # -- StorageBackend (by delegation) ---------------------------------------
    def append(self, record) -> None:
        def _torn() -> None:
            import json as _json
            import os as _os

            path = getattr(self.inner, "journal_path", None)
            if path is None:
                return
            line = _json.dumps(record, separators=(",", ":"))
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(line[: max(1, len(line) // 2)])
                handle.flush()
                _os.fsync(handle.fileno())

        self.plan.intercept(
            str(record.get("kind", "record")),
            lambda: self.inner.append(record),
            _torn,
        )

    def sync(self) -> None:
        self.inner.sync()

    def read_journal(self):
        return self.inner.read_journal()

    def reset_journal(self) -> None:
        self.inner.reset_journal()

    def write_snapshot(self, snapshot) -> None:
        self.inner.write_snapshot(snapshot)

    def read_snapshot(self):
        return self.inner.read_snapshot()

    def has_state(self) -> bool:
        return self.inner.has_state()

    def close(self) -> None:
        self.inner.close()


class _PartitionedRouter:
    """Stands in for a shard's router while the link to it is severed.

    ``handle`` — the only operation the federation router uses on the
    request path — fails with the transport's retryable error; every other
    attribute (subscription bookkeeping, cancel fan-out) passes through so
    control-plane cleanup still works, as it would for a router process
    that is alive but unreachable.
    """

    def __init__(self, real, owner: "ShardPartition") -> None:
        self._real = real
        self._owner = owner

    def handle(self, request, push=None, owner=None, secure=True):
        self._owner.dropped_requests += 1
        raise TransportApiError("chaos: shard partitioned")

    def __getattr__(self, name):
        return getattr(self._real, name)


class ShardPartition:
    """Sever (and later heal) the router↔shard link of one federation shard."""

    def __init__(self, shard) -> None:
        self.shard = shard
        self._real_router = shard.router
        self.dropped_requests = 0

    @property
    def partitioned(self) -> bool:
        return isinstance(self.shard.router, _PartitionedRouter)

    def partition(self) -> None:
        if not self.partitioned:
            self.shard.router = _PartitionedRouter(self._real_router, self)

    def heal(self) -> None:
        self.shard.router = self._real_router
