"""The chaos soak harness: many jobs, scripted faults, invariants at the end.

:func:`run_soak` drives a full platform — access server with journal
persistence and live analytics, push dispatch *and* pull-mode agent
daemons — through a submission run of configurable size (hundreds of
thousands of jobs on the simulated clock), while a
:class:`~repro.chaos.scenario.Scenario` injects faults mid-flight:

* device kill / hang / slow orders land in the shared
  :class:`~repro.chaos.faults.FaultPlane`, which the instrumented soak
  payload consults on every execution;
* power events flip a vantage point's
  :class:`~repro.vantagepoint.power_socket.MerossPowerSocket` and mark the
  whole vantage point dead in the fault plane;
* partitions sever the :class:`~repro.chaos.injectors.ChaosTransport`
  links between the harness's clients (submitter and agents) and the
  gateway — requests fail with the transport's own retryable error, and
  the harness retries submissions under their idempotency keys;
* ``crash.server`` arms the :class:`~repro.chaos.injectors.CrashingBackend`
  so the next journal append kill -9s the whole access server; the
  harness then rebuilds the platform and recovers from the journal,
  exactly as an operator restart would;
* ``crash.agent`` arms a daemon's outbox the same way.

Time is entirely simulated: each submission wave advances the clock by
one second, so a 100 000-job soak at the default batch size spans ~500
simulated seconds regardless of wall time.  After the last wave the
harness heals every fault, drains the queues, and runs the whole
invariant catalogue (:mod:`repro.chaos.invariants`) over the wreckage.

Everything the run decided was drawn from one seed, printed in the
result — re-running with the same config reproduces the same chaos.
"""

from __future__ import annotations

import heapq
import math
import os
import random
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from repro.chaos.faults import (
    ExecutionLedger,
    FaultPlane,
    InjectedFault,
    SimulatedCrash,
)
from repro.chaos.injectors import ChaosTransport, CrashingBackend
from repro.chaos.invariants import (
    InvariantReport,
    check_analytics_live_equals_replay,
    check_credit_conservation,
    check_no_double_execution,
    check_no_lost_jobs,
    check_recovery_byte_identical,
)
from repro.chaos.scenario import FaultEvent, Scenario, canned_scenario

__all__ = ["PAYLOAD_NAME", "SoakConfig", "SoakResult", "SoakHarness", "run_soak"]

#: Catalogue name of the instrumented soak payload.
PAYLOAD_NAME = "chaos-soak"


@dataclass
class SoakConfig:
    """One soak run's shape: scale, topology, faults, durability knobs."""

    #: Total jobs to submit over the run.
    jobs: int = 100_000
    #: Root seed for every random choice the harness makes.
    seed: int = 7
    #: Vantage points and devices per vantage point.
    vantage_points: int = 2
    devices_per_vp: int = 2
    #: Pull-mode agent daemons (0 disables the agent plane).
    agents: int = 1
    #: Fraction of jobs submitted as agent-pull instead of push.
    agent_job_fraction: float = 0.1
    #: Jobs submitted per wave; each wave advances the clock one second.
    batch: int = 200
    #: The fault script: a :class:`Scenario`, a canned-scenario name, or
    #: ``None`` for a fault-free baseline run.
    scenario: Union[Scenario, str, None] = "kitchen-sink"
    #: Root directory for durable state (server journal + agent outboxes);
    #: a temp directory is created when unset.
    state_dir: Optional[str] = None
    #: Agent lease TTL (simulated seconds).  Device hangs are clamped below
    #: half of this so a hang never expires a live daemon's lease — lease
    #: expiry *requeues*, which would be an intended double execution.
    lease_ttl_s: float = 30.0
    #: Persistence tuning.  A checkpoint serialises *every* job, so a fixed
    #: interval makes total checkpoint cost quadratic in run size; ``None``
    #: auto-scales the interval to bound the run at ~10 checkpoints.
    snapshot_every: Optional[int] = None
    fsync_every: int = 1_024
    #: Name this server as a federation shard (its crash-kill is then a
    #: shard crash-kill; job ids come from the shard's id lane).
    shard_id: Optional[str] = "shard-0"
    #: Enable the credit system (accounts run as hardware contributors so
    #: a long soak cannot overdraft; conservation is still checked).
    credits: bool = False
    #: Drain phase bounds: rounds of (dispatch + agents + 5 s) after the
    #: last wave before the harness gives up and reports stuck jobs.
    drain_rounds: int = 300
    #: Max claims one daemon serves per wave.
    agent_claims_per_wave: int = 25

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1")
        if self.batch < 1:
            raise ValueError("batch must be at least 1")
        if self.vantage_points < 1 or self.devices_per_vp < 1:
            raise ValueError("topology needs at least one device")
        if not 0.0 <= self.agent_job_fraction <= 1.0:
            raise ValueError("agent_job_fraction must be within [0, 1]")

    @property
    def waves(self) -> int:
        return int(math.ceil(self.jobs / self.batch))

    @property
    def effective_snapshot_every(self) -> int:
        if self.snapshot_every is not None:
            return self.snapshot_every
        # ~3 journal records per job; aim for a handful of checkpoints.
        return max(5_000, (self.jobs * 3) // 4)

    def devices(self) -> List[tuple]:
        """Every ``(vantage_point, serial)`` the topology will have —
        derivable without building the platform, so canned scenarios can be
        instantiated up front."""
        return [
            (f"node{vp}", f"node{vp}-dev{dev:02d}")
            for vp in range(1, self.vantage_points + 1)
            for dev in range(self.devices_per_vp)
        ]


@dataclass
class SoakResult:
    """What one soak run produced: metrics plus the invariant verdicts."""

    seed: int
    scenario: str
    jobs: int
    metrics: Dict[str, object] = field(default_factory=dict)
    report: InvariantReport = field(default_factory=InvariantReport)

    @property
    def ok(self) -> bool:
        return self.report.ok

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "scenario": self.scenario,
            "jobs": self.jobs,
            "metrics": dict(self.metrics),
            "invariants": self.report.to_dict(),
        }

    def summary(self) -> str:
        lines = [
            f"chaos soak: {self.jobs} job(s), scenario={self.scenario!r}, "
            f"seed={self.seed}",
        ]
        for key in sorted(self.metrics):
            lines.append(f"  {key}: {self.metrics[key]}")
        lines.append(self.report.summary())
        return "\n".join(lines)


class SoakHarness:
    """Builds the platform, runs the waves, injects the faults, drains,
    and checks every invariant.  One instance is one run."""

    def __init__(self, config: SoakConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        root = config.state_dir or tempfile.mkdtemp(prefix="chaos-soak-")
        self.root_dir = root
        self.server_dir = os.path.join(root, "server")
        self.outbox_dir = os.path.join(root, "outboxes")
        os.makedirs(self.server_dir, exist_ok=True)
        os.makedirs(self.outbox_dir, exist_ok=True)

        self.plane = FaultPlane()
        self.ledger = ExecutionLedger()
        self.scenario = self._resolve_scenario()
        # Min-heap of (at, tiebreak, event); synthetic events (power.on
        # after a cycle, partition heals) are pushed mid-run.
        self._event_seq = 0
        self.pending: List[tuple] = []
        for event in self.scenario:
            self._push_event(event.at, event)

        self.submitted: Dict[int, int] = {}  # submission index -> acked job id
        self.retry: List[int] = []
        self.next_index = 0
        self.partitioned_links: Set[str] = set()
        self.powered_off_vps: Set[str] = set()
        self.metrics: Dict[str, int] = {
            "server_crashes": 0,
            "agent_crashes": 0,
            "submit_retries": 0,
        }
        self._dropped_before_restart = 0

        self.platform = None
        self.server = None
        self.backend: Optional[CrashingBackend] = None
        self.client = None
        self.daemons: List = []
        # Daemons needing an outbox replay before serving: resume() re-reads
        # the whole journal (O(run) late in a soak), so it only runs after a
        # restart or a transport error, never in the steady-state loop.
        self._needs_resume: Set[str] = set()
        self._build(recover=False)
        self.start_now = self.platform.context.now

    # -- construction ---------------------------------------------------------
    def _resolve_scenario(self) -> Scenario:
        scenario = self.config.scenario
        if scenario is None:
            return Scenario("baseline", [])
        if isinstance(scenario, Scenario):
            return scenario
        return canned_scenario(
            str(scenario),
            seed=self.config.seed,
            horizon_s=float(self.config.waves),
            devices=self.config.devices(),
        )

    def _push_event(self, at: float, event: FaultEvent) -> None:
        self._event_seq += 1
        heapq.heappush(self.pending, (at, self._event_seq, event))

    def _bare_platform(self):
        """The soak topology with no persistence/analytics attached yet —
        also the recovery factory the byte-identical check uses."""
        from repro.core.platform import add_vantage_point, build_default_platform
        from repro.device.profiles import SAMSUNG_J7_DUO

        platform = build_default_platform(
            seed=self.config.seed,
            node_identifier="node1",
            browsers=("chrome",),
            device_count=self.config.devices_per_vp,
            persistence=False,
            analytics=False,
        )
        for vp in range(2, self.config.vantage_points + 1):
            add_vantage_point(
                platform,
                node_identifier=f"node{vp}",
                institution=f"Member Institution {vp}",
                device_profiles=[SAMSUNG_J7_DUO] * self.config.devices_per_vp,
                browsers=("chrome",),
                install_video=False,
            )
        if self.config.shard_id:
            platform.access_server.configure_shard(self.config.shard_id)
        return platform

    def _build(self, recover: bool) -> None:
        from repro.accessserver.persistence import FileBackend, register_payload

        self.platform = self._bare_platform()
        self.server = self.platform.access_server
        self.backend = CrashingBackend(
            FileBackend(self.server_dir, fsync_every=self.config.fsync_every)
        )
        self.server.enable_persistence(
            self.backend,
            recover=recover,
            snapshot_every=self.config.effective_snapshot_every,
        )
        self.server.enable_analytics()
        if self.config.credits:
            from repro.accessserver.credits import CreditError

            ledger = self.server.enable_credit_system()
            owner = self.platform.experimenter.username
            try:
                ledger.account(owner)
            except CreditError:
                # Contributors pay in kind: usage is recorded but waived, so
                # an arbitrarily long soak cannot overdraft the account.
                ledger.open_account(
                    owner, contributes_hardware=True, now=self.platform.context.now
                )
        register_payload(PAYLOAD_NAME, self._payload)

        self.client = self._make_client()
        self.daemons = [
            self._make_daemon(index) for index in range(self.config.agents)
        ]
        for daemon in self.daemons:
            self._try_register(daemon)
            self._needs_resume.add(daemon.agent_id)
        # The network does not heal just because a process restarted.
        for link in self.partitioned_links:
            self._set_partition(link, True)
        for vp in self.powered_off_vps:
            self._set_socket(vp, on=False)

    def _make_client(self):
        from repro.api.client import BatteryLabClient, InProcessTransport
        from repro.api.router import ApiRouter

        username = self.platform.experimenter.username
        token = self.platform.account_tokens[username]
        transport = ChaosTransport(
            InProcessTransport(ApiRouter(self.server)),
            delay_sink=lambda s: self.platform.context.clock.advance(s),
        )
        return BatteryLabClient(transport, username, token)

    def _make_daemon(self, index: int):
        from repro.agent.daemon import AgentDaemon

        return AgentDaemon(
            self._make_client(),
            f"agent-{index}",
            os.path.join(self.outbox_dir, f"agent-{index}.jsonl"),
            connector="fake",
            lease_ttl_s=self.config.lease_ttl_s,
        )

    def _try_register(self, daemon) -> None:
        from repro.api.errors import TransportApiError

        try:
            daemon.register()
        except TransportApiError:
            pass  # partitioned; the server remembers earlier registrations

    # -- the instrumented payload --------------------------------------------
    def _payload(self, ctx) -> Dict[str, object]:
        """Runs on both planes: consults the fault plane, records itself.

        Push mode hands a full :class:`~repro.accessserver.jobs.JobContext`
        (with ``.job``); agent mode hands the connector's minimal context
        (with ``.job_id`` / ``.vantage_point``).
        """
        job = getattr(ctx, "job", None)
        if job is not None:
            job_id = job.job_id
            vantage_point = job.assigned_vantage_point or ""
        else:
            job_id = ctx.job_id
            vantage_point = ctx.vantage_point
        self.ledger.record(job_id)
        verdict, delay_s, reason = self.plane.device_action(
            vantage_point, ctx.device_serial
        )
        if delay_s > 0.0:
            self.platform.context.clock.advance(delay_s)
        if verdict == FaultPlane.FAIL:
            raise InjectedFault(reason)
        return {"job": job_id}

    # -- fault firing ---------------------------------------------------------
    def _fire_due(self) -> None:
        now_rel = self.platform.context.now - self.start_now
        while self.pending and self.pending[0][0] <= now_rel:
            _, _, event = heapq.heappop(self.pending)
            self._fire(event)

    def _fire(self, event: FaultEvent) -> None:
        kind = event.kind
        target = event.target
        params = event.params
        if kind in ("device.kill", "device.hang", "device.slow"):
            vp = str(target.get("vantage_point", ""))
            serial = str(target.get("serial", ""))
            jobs = int(params.get("jobs", 1))
            # Hangs/slows must stay well under the lease TTL: a payload that
            # burns a whole TTL would expire its own live lease, and lease
            # expiry *requeues* — an intended at-least-once, not a bug.
            clamp = self.config.lease_ttl_s / 2.0
            if kind == "device.kill":
                self.plane.kill_device(vp, serial, jobs=jobs)
            elif kind == "device.hang":
                self.plane.hang_device(
                    vp, serial, min(float(params.get("hang_s", 2.0)), clamp), jobs=jobs
                )
            else:
                self.plane.slow_device(
                    vp, serial, min(float(params.get("delay_s", 0.5)), clamp), jobs=jobs
                )
        elif kind == "power.off":
            self._power(str(target.get("vantage_point", "")), on=False)
        elif kind == "power.on":
            self._power(str(target.get("vantage_point", "")), on=True)
        elif kind == "power.cycle":
            vp = str(target.get("vantage_point", ""))
            self._power(vp, on=False)
            self._push_event(
                event.at + float(params.get("off_s", 1.0)),
                FaultEvent(
                    at=event.at + float(params.get("off_s", 1.0)),
                    kind="power.on",
                    target={"vantage_point": vp},
                ),
            )
        elif kind == "partition.start":
            link = str(target.get("link", "agents"))
            self._set_partition(link, True)
            duration = params.get("duration_s")
            if duration is not None:
                self._push_event(
                    event.at + float(duration),
                    FaultEvent(
                        at=event.at + float(duration),
                        kind="partition.heal",
                        target={"link": link},
                    ),
                )
        elif kind == "partition.heal":
            self._set_partition(str(target.get("link", "agents")), False)
        elif kind == "crash.server":
            self.backend.plan_crash_in(
                int(params.get("at_append", 0)), str(params.get("mode", "after"))
            )
        elif kind == "crash.agent":
            agent_id = str(target.get("agent_id", ""))
            for daemon in self.daemons:
                if daemon.agent_id == agent_id or not agent_id:
                    daemon.outbox.plan_crash(
                        daemon.outbox.writes + int(params.get("at_append", 0)),
                        str(params.get("mode", "after")),
                    )
                    break

    def _power(self, vp: str, on: bool) -> None:
        if on:
            self.plane.power_on(vp)
            self.powered_off_vps.discard(vp)
        else:
            self.plane.power_off(vp)
            self.powered_off_vps.add(vp)
        self._set_socket(vp, on=on)

    def _set_socket(self, vp: str, on: bool) -> None:
        handle = self.platform.vantage_points.get(vp)
        if handle is None:
            return
        try:
            if on:
                handle.power_socket.turn_on()
            else:
                handle.power_socket.turn_off()
        except Exception:
            # The simulated socket may refuse mid-measurement; the fault
            # plane still enforces the outage at the payload level.
            pass

    def _set_partition(self, link: str, partitioned: bool) -> None:
        if partitioned:
            self.partitioned_links.add(link)
        else:
            self.partitioned_links.discard(link)
        transports: List[ChaosTransport] = []
        if link in ("agents", "all"):
            transports += [d.client.transport for d in self.daemons]
        if link in ("client", "clients", "all"):
            transports.append(self.client.transport)
        if not transports:  # unknown link names sever the agent plane
            transports = [d.client.transport for d in self.daemons]
        for transport in transports:
            if partitioned:
                transport.partition()
            else:
                transport.heal()

    # -- crash recovery -------------------------------------------------------
    def _live_dropped(self) -> int:
        total = 0
        if self.client is not None:
            total += self.client.transport.dropped_requests
        total += sum(d.client.transport.dropped_requests for d in self.daemons)
        return total

    def _recover_server(self) -> None:
        self.metrics["server_crashes"] += 1
        self.ledger.begin_epoch()
        self._dropped_before_restart += self._live_dropped()
        old_now = self.platform.context.now
        try:
            self.backend.inner.close()
        except Exception:
            pass
        self._build(recover=True)
        # The recovered process rejoins the original timeline.
        self.platform.context.clock.advance_to(old_now)

    def _restart_agent(self, index: int) -> None:
        self.metrics["agent_crashes"] += 1
        # The daemon journals each phase *after* running it, so a payload
        # may have executed without its record landing — any re-run after
        # this restart is a legitimate cross-epoch crash re-run.
        self.ledger.begin_epoch()
        self._dropped_before_restart += self.daemons[
            index
        ].client.transport.dropped_requests
        self.daemons[index] = self._make_daemon(index)
        if "agents" in self.partitioned_links or "all" in self.partitioned_links:
            self.daemons[index].client.transport.partition()
        self._try_register(self.daemons[index])
        self._needs_resume.add(self.daemons[index].agent_id)

    def _server_crashed(self) -> bool:
        return self.backend is not None and self.backend.plan.fired

    # -- wave loop ------------------------------------------------------------
    def _submit_wave(self) -> None:
        from repro.api.errors import TransportApiError

        take: List[int] = []
        while self.retry and len(take) < self.config.batch:
            take.append(self.retry.pop(0))
        while self.next_index < self.config.jobs and len(take) < self.config.batch:
            take.append(self.next_index)
            self.next_index += 1
        for position, index in enumerate(take):
            agent_mode = (
                self.config.agents > 0
                and self.rng.random() < self.config.agent_job_fraction
            )
            try:
                view = self.client.submit_job(
                    f"soak-{index}",
                    PAYLOAD_NAME,
                    timeout_s=3600.0,
                    idempotency_key=f"soak-{index}",
                    connector="fake" if agent_mode else None,
                    execution="agent" if agent_mode else "push",
                )
            except TransportApiError:
                # Partitioned or dropped; same key retries exactly-once.
                # The whole untried remainder of the wave goes back too —
                # it was already taken off the queue and would otherwise
                # be lost, never submitted and never retried.
                self.retry.extend(take[position:])
                self.metrics["submit_retries"] += 1
                break  # the link is down — don't burn the whole wave on it
            except SimulatedCrash:
                self.retry.append(index)
                self._recover_server()
            else:
                self.submitted[index] = view.job_id

    def _run_push(self) -> None:
        try:
            self.server.run_pending_jobs(max_jobs=self.config.batch * 2)
        except SimulatedCrash:
            self._recover_server()

    def _run_agents(self) -> None:
        from repro.api.errors import TransportApiError

        for index in range(len(self.daemons)):
            daemon = self.daemons[index]
            try:
                if daemon.agent_id in self._needs_resume:
                    daemon.resume()
                    self._needs_resume.discard(daemon.agent_id)
                for _ in range(self.config.agent_claims_per_wave):
                    if daemon.run_once() is None:
                        break
            except TransportApiError:
                # Partitioned from the gateway mid-step; work may be parked
                # in the outbox, so replay it once the link heals.
                self._needs_resume.add(daemon.agent_id)
                continue
            except SimulatedCrash:
                if self._server_crashed():
                    self._recover_server()
                    return
                self._restart_agent(index)

    def _statuses(self) -> Dict[int, str]:
        return {
            job.job_id: job.status.value for job in self.server.scheduler.jobs()
        }

    def _drained(self) -> bool:
        from repro.chaos.invariants import TERMINAL_STATUSES

        if self.retry or self.next_index < self.config.jobs:
            return False
        if len(self.submitted) < self.config.jobs:
            return False
        statuses = self._statuses()
        return all(
            statuses.get(job_id) in TERMINAL_STATUSES
            for job_id in self.submitted.values()
        )

    def _drain(self) -> None:
        # Heal the world first: chaos ends, the backlog must settle.
        for link in list(self.partitioned_links):
            self._set_partition(link, False)
        for vp in list(self.powered_off_vps):
            self._power(vp, on=True)
        self.plane.clear()
        self.backend.plan.disarm()
        for _ in range(self.config.drain_rounds):
            self._submit_wave()
            self._run_push()
            self._run_agents()
            # Advance past lease TTLs so orphaned leases expire and requeue.
            self.platform.context.clock.advance(5.0)
            if self._drained():
                break

    # -- the run --------------------------------------------------------------
    def run(self) -> SoakResult:
        started = time.perf_counter()
        for _ in range(self.config.waves):
            self._fire_due()
            self._submit_wave()
            self._run_push()
            self._run_agents()
            self.platform.context.clock.advance(1.0)
        # Any scenario events past the last wave still owe their firing
        # (nothing after the horizon, but synthetic heals may remain).
        self._fire_due()
        self._drain()
        wall_s = time.perf_counter() - started

        statuses = self._statuses()
        by_status: Dict[str, int] = {}
        for job_id in self.submitted.values():
            status = statuses.get(job_id, "missing")
            by_status[status] = by_status.get(status, 0) + 1
        dropped = self._dropped_before_restart + self._live_dropped()
        self.metrics.update(
            {
                "acked": len(self.submitted),
                "completed": by_status.get("completed", 0),
                "failed": by_status.get("failed", 0),
                "waves": self.config.waves,
                "sim_duration_s": round(
                    self.platform.context.now - self.start_now, 3
                ),
                "wall_s": round(wall_s, 3),
                "jobs_per_s": round(self.config.jobs / wall_s, 1) if wall_s else 0,
                "faults_fired": dict(self.plane.faults_fired),
                "crash_reruns": self.ledger.crash_reruns(),
                "dropped_requests": dropped,
            }
        )

        report = InvariantReport()
        report.add(check_no_lost_jobs([self.server], self.submitted.values()))
        report.add(check_no_double_execution(self.ledger))
        report.add(check_analytics_live_equals_replay(self.server))
        report.add(
            check_recovery_byte_identical(self.backend, self._recovery_factory)
        )
        if self.config.credits and self.server.credit_policy is not None:
            report.add(check_credit_conservation(self.server.credit_policy.ledger))
        return SoakResult(
            seed=self.config.seed,
            scenario=self.scenario.name,
            jobs=self.config.jobs,
            metrics=dict(self.metrics),
            report=report,
        )

    def _recovery_factory(self, backend):
        platform = self._bare_platform()
        platform.access_server.enable_persistence(
            backend, recover=True, snapshot_every=self.config.effective_snapshot_every
        )
        return platform


def run_soak(config: Optional[SoakConfig] = None, **overrides) -> SoakResult:
    """Run one chaos soak; keyword overrides patch the default config."""
    if config is None:
        config = SoakConfig(**overrides)
    elif overrides:
        raise ValueError("pass either a config or keyword overrides, not both")
    return SoakHarness(config).run()
