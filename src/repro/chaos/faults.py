"""The platform's single fault vocabulary: every injected failure speaks it.

Before this module existed each plane invented its own fault hooks — the
agent outbox had a private ``SimulatedCrash`` and crash planner, connectors
raised bare ``RuntimeError`` for injected phase failures, and there was no
way to crash-kill the *server's* journal at a chosen offset at all.  The
chaos rig needs one vocabulary so a scenario can say "kill this process at
append 317" or "fail the next job on that device" without caring which
plane it lands in:

* :class:`SimulatedCrash` — a stand-in for ``kill -9``.  Derives from
  ``BaseException`` so ordinary ``except Exception`` error handling cannot
  swallow it: nothing between the crash point and the harness runs, exactly
  like a real SIGKILL.
* :class:`InjectedFault` — a *survivable* fault (device died mid-job, power
  lost, phase failed).  The job fails; the process lives.
* :class:`CrashPlan` — the write-counting crash planner behind every
  ``plan_crash`` hook: arm it at an append offset with a mode
  (``before`` / ``after`` / ``torn``) and it raises :class:`SimulatedCrash`
  at exactly that write.  The agent outbox and the journal-backend wrapper
  (:class:`~repro.chaos.injectors.CrashingBackend`) both delegate here.
* :class:`FaultPlane` — the live fault table a running scenario mutates:
  per-device kill/hang/slow-IO orders and per-vantage-point power state,
  consumed by instrumented payloads at execution time.
* :class:`ExecutionLedger` — counts payload executions per job per process
  epoch, the measurement behind the no-double-execution invariant.

Nothing here imports outside the standard library, so every plane (agent,
access server, federation) can depend on it without layering cycles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "CRASH_MODES",
    "SimulatedCrash",
    "InjectedFault",
    "CrashPlan",
    "FaultPlane",
    "ExecutionLedger",
]

#: The three ways a planned crash can interleave with the write it targets.
CRASH_MODES = ("before", "after", "torn")


class SimulatedCrash(BaseException):
    """Raised by a planned crash point; a stand-in for ``kill -9``.

    Derives from ``BaseException`` so ordinary ``except Exception`` error
    handling inside a daemon or server cannot swallow it — exactly like a
    real SIGKILL, nothing between the crash point and the test harness runs.
    """


class InjectedFault(RuntimeError):
    """A deliberately injected, *survivable* failure.

    Raised inside a job payload or connector phase to simulate a device
    dying mid-job, a powered-off vantage point, or a failing phase.  Unlike
    :class:`SimulatedCrash` it is an ordinary exception: the platform's
    normal error handling turns it into a failed job, and the process keeps
    serving.
    """


class CrashPlan:
    """Counts writes and raises :class:`SimulatedCrash` at the armed one.

    The planner is the shared core of every ``plan_crash`` hook.  A write
    site calls :meth:`intercept` once per append, passing closures that
    perform the full write and (optionally) a torn half-write; the plan
    decides whether the write happens at all:

    * ``"before"`` — crash without writing anything;
    * ``"after"``  — write the full record, then crash (the record is
      durable but the writer never saw it succeed);
    * ``"torn"``   — perform the torn half-write with no terminator, then
      crash (exercises readers' torn-tail tolerance).  Writers without a
      meaningful torn representation may omit ``write_torn``, in which case
      nothing is written — indistinguishable from ``"before"`` on disk,
      which is exactly what a torn write that lost its only sector means.
    """

    def __init__(self) -> None:
        self._writes = 0
        self._crash_at: Optional[int] = None
        self._crash_mode = "after"

    @property
    def writes(self) -> int:
        """Appends intercepted so far (the next write is offset ``writes``)."""
        return self._writes

    @property
    def armed(self) -> bool:
        return self._crash_at is not None

    @property
    def fired(self) -> bool:
        """True once the armed crash has actually been raised."""
        return self._crash_at is not None and self._writes > self._crash_at

    def arm(self, at_write: int, mode: str = "after") -> None:
        """Plan a crash at the ``at_write``-th intercepted write (0-based)."""
        if mode not in CRASH_MODES:
            raise ValueError(f"unknown crash mode {mode!r}")
        if at_write < 0:
            raise ValueError("at_write must be non-negative")
        self._crash_at = at_write
        self._crash_mode = mode

    def disarm(self) -> None:
        self._crash_at = None

    def intercept(self, label: str, write_full, write_torn=None) -> None:
        """Run one write through the plan; raises at the armed offset."""
        crash_here = self._writes == self._crash_at
        self._writes += 1
        if crash_here and self._crash_mode == "before":
            raise SimulatedCrash(f"before write {self._writes - 1} ({label})")
        if crash_here and self._crash_mode == "torn":
            if write_torn is not None:
                write_torn()
            raise SimulatedCrash(f"torn write {self._writes - 1} ({label})")
        write_full()
        if crash_here:
            raise SimulatedCrash(f"after write {self._writes - 1} ({label})")


class FaultPlane:
    """The live fault table one chaos run mutates and payloads consult.

    A scenario runner calls the mutators (:meth:`kill_device`,
    :meth:`power_off`, ...) as its events fire; an instrumented payload
    calls :meth:`device_action` with the device it landed on and obeys the
    verdict.  Orders are consumed FIFO per device: ``kill_device(..., jobs=2)``
    fails the next two payload executions there, then the device heals.

    Everything is plain state — no clocks, no threads — so a run is exactly
    as deterministic as the scenario that drives it.
    """

    #: Verdicts a payload can receive.
    OK = "ok"
    FAIL = "fail"

    def __init__(self) -> None:
        # (vantage_point, serial) -> list of pending one-shot orders, each
        # ("kill" | "hang" | "slow", delay_s).
        self._device_orders: Dict[Tuple[str, str], List[Tuple[str, float]]] = {}
        self._powered_off: Dict[str, bool] = {}
        self.faults_fired: Dict[str, int] = {}

    # -- scenario-side mutators ----------------------------------------------
    def kill_device(self, vantage_point: str, serial: str, jobs: int = 1) -> None:
        """Die mid-job: the next ``jobs`` payloads on the device fail."""
        self._order(vantage_point, serial, "kill", 0.0, jobs)

    def hang_device(
        self, vantage_point: str, serial: str, hang_s: float, jobs: int = 1
    ) -> None:
        """Wedge mid-job: the payload burns ``hang_s`` of simulated time,
        then fails — the shape of a hung device finally watchdog-killed."""
        self._order(vantage_point, serial, "hang", hang_s, jobs)

    def slow_device(
        self, vantage_point: str, serial: str, delay_s: float, jobs: int = 1
    ) -> None:
        """Slow I/O: the payload takes ``delay_s`` longer but succeeds."""
        self._order(vantage_point, serial, "slow", delay_s, jobs)

    def power_off(self, vantage_point: str) -> None:
        """PDU outlet off: every payload on the vantage point fails until
        :meth:`power_on`."""
        self._powered_off[vantage_point] = True

    def power_on(self, vantage_point: str) -> None:
        self._powered_off.pop(vantage_point, None)

    def _order(
        self, vantage_point: str, serial: str, kind: str, delay_s: float, jobs: int
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        orders = self._device_orders.setdefault((vantage_point, serial), [])
        orders.extend((kind, delay_s) for _ in range(jobs))

    # -- payload-side consumption --------------------------------------------
    def powered_off(self, vantage_point: str) -> bool:
        return self._powered_off.get(vantage_point, False)

    def device_action(
        self, vantage_point: str, serial: Optional[str]
    ) -> Tuple[str, float, str]:
        """The verdict for one payload execution: ``(verdict, delay_s, reason)``.

        Consumes at most one pending device order.  A powered-off vantage
        point wins over device orders — the outlet is upstream of the hub.
        """
        if self.powered_off(vantage_point):
            self._fired("power")
            return (self.FAIL, 0.0, f"vantage point {vantage_point} is powered off")
        orders = self._device_orders.get((vantage_point, serial or ""))
        if not orders:
            return (self.OK, 0.0, "")
        kind, delay_s = orders.pop(0)
        self._fired(kind)
        if kind == "kill":
            return (self.FAIL, 0.0, f"device {serial} died mid-job")
        if kind == "hang":
            return (self.FAIL, delay_s, f"device {serial} hung for {delay_s:g}s")
        return (self.OK, delay_s, f"device {serial} slow I/O (+{delay_s:g}s)")

    def _fired(self, kind: str) -> None:
        self.faults_fired[kind] = self.faults_fired.get(kind, 0) + 1

    def pending_orders(self) -> int:
        """Device orders scheduled but not yet consumed by any payload."""
        return sum(len(orders) for orders in self._device_orders.values())

    def clear(self) -> None:
        """Heal everything: drop pending orders and restore power."""
        self._device_orders.clear()
        self._powered_off.clear()


class ExecutionLedger:
    """Counts payload executions per job across process epochs.

    A process *epoch* is one server lifetime; :meth:`begin_epoch` is called
    after every crash-kill + recovery.  The platform's contract is that a
    payload never runs twice within one epoch (journals and outboxes make
    retries resume, not restart) — but a job in flight when the process
    died *may* legitimately re-run after recovery, exactly as it would
    after a real ``kill -9``.  :meth:`double_executions` therefore flags
    only same-epoch repeats; cross-epoch repeats are accounted separately
    as :meth:`crash_reruns`.
    """

    def __init__(self) -> None:
        self._epoch = 0
        self._runs: Dict[int, List[int]] = {}

    @property
    def epoch(self) -> int:
        return self._epoch

    def begin_epoch(self) -> int:
        """Enter the next process lifetime (call after recovery)."""
        self._epoch += 1
        return self._epoch

    def record(self, job_id: int) -> None:
        """Note one payload execution of ``job_id`` in the current epoch."""
        self._runs.setdefault(int(job_id), []).append(self._epoch)

    def executions(self, job_id: int) -> int:
        return len(self._runs.get(int(job_id), ()))

    def executed_jobs(self) -> List[int]:
        return sorted(self._runs)

    def double_executions(self) -> Dict[int, int]:
        """``job_id -> runs`` for jobs that ran twice within one epoch."""
        doubled: Dict[int, int] = {}
        for job_id, epochs in self._runs.items():
            if len(epochs) > len(set(epochs)):
                doubled[job_id] = len(epochs)
        return doubled

    def crash_reruns(self) -> int:
        """Executions beyond the first that happened in a *later* epoch —
        legitimate re-runs of jobs caught in flight by a crash."""
        return sum(
            len(set(epochs)) - 1
            for epochs in self._runs.values()
            if len(set(epochs)) > 1
        )
