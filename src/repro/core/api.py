"""The BatteryLab Python API (Table 1 of the paper).

"BatteryLab's Python API is available to provide user-friendly device
selection, interaction with the power meter, etc." (Section 3.1).  Table 1
lists its entry points; :class:`BatteryLabAPI` implements them one-for-one
against a vantage point controller:

==================  =====================================  =====================
API                 Description                            Parameters
==================  =====================================  =====================
``list_devices``    List ADB ids of test devices           —
``device_mirroring``Activate device mirroring              ``device_id``
``power_monitor``   Toggle Monsoon power state             —
``set_voltage``     Set target voltage                     ``voltage_val``
``start_monitor``   Start battery measurement              ``device_id, duration``
``stop_monitor``    Stop battery measurement               —
``batt_switch``     (De)activate battery                   ``device_id``
``execute_adb``     Execute ADB command                    ``device_id, command``
==================  =====================================  =====================
"""

from __future__ import annotations

from typing import List, Optional

from repro.device.adb import AdbTransport
from repro.mirroring.session import MirroringSession
from repro.powermonitor.traces import CurrentTrace
from repro.vantagepoint.controller import VantagePointController


class BatteryLabAPIError(RuntimeError):
    """Raised for invalid API usage (no monitor attached, no active measurement, ...)."""


class BatteryLabAPI:
    """Table 1 API bound to one vantage point.

    Parameters
    ----------
    controller:
        The vantage point controller the API operates on.
    default_voltage_v:
        Voltage used by :meth:`start_monitor` when :meth:`set_voltage` was
        not called first; defaults to the test device's nominal battery voltage.
    """

    def __init__(
        self, controller: VantagePointController, default_voltage_v: Optional[float] = None
    ) -> None:
        self._controller = controller
        self._default_voltage_v = default_voltage_v
        self._active_measurement_device: Optional[str] = None
        self._active_measurement_duration: Optional[float] = None

    @property
    def controller(self) -> VantagePointController:
        return self._controller

    @property
    def measuring(self) -> bool:
        return self._active_measurement_device is not None

    @property
    def active_measurement_device(self) -> Optional[str]:
        return self._active_measurement_device

    # -- Table 1 entry points -------------------------------------------------------
    def list_devices(self) -> List[str]:
        """List ADB ids of the test devices at this vantage point."""
        return self._controller.list_devices()

    def device_mirroring(self, device_id: str, bitrate_mbps: float = 1.0) -> MirroringSession:
        """Activate device mirroring for ``device_id`` and return the session."""
        return self._controller.start_mirroring(device_id, bitrate_mbps=bitrate_mbps)

    def stop_device_mirroring(self, device_id: str) -> None:
        """Deactivate device mirroring (companion of :meth:`device_mirroring`)."""
        self._controller.stop_mirroring(device_id)

    def power_monitor(self) -> bool:
        """Toggle the Monsoon's mains power state; returns the new state."""
        socket = self._controller.power_socket
        if socket is None:
            raise BatteryLabAPIError("this vantage point has no WiFi power socket")
        return socket.toggle()

    def set_voltage(self, voltage_val: float) -> None:
        """Set the power monitor's target output voltage."""
        self._controller.set_voltage(voltage_val)
        self._default_voltage_v = voltage_val

    def start_monitor(self, device_id: str, duration: Optional[float] = None) -> None:
        """Start a battery measurement on ``device_id``.

        The device is switched to battery bypass (through the relay circuit),
        USB power to it is cut so the charge current cannot perturb the
        reading, and the Monsoon starts sampling.  ``duration`` is recorded
        so callers can later advance the simulation and call :meth:`stop_monitor`;
        use :meth:`measure` for the common run-for-a-duration case.
        """
        monitor = self._require_monitor()
        if self.measuring:
            raise BatteryLabAPIError(
                f"a measurement on {self._active_measurement_device!r} is already running"
            )
        device = self._controller.device(device_id)
        if not monitor.mains_on:
            raise BatteryLabAPIError(
                "the power monitor has no mains power; call power_monitor() first"
            )
        if not monitor.vout_enabled:
            voltage = self._default_voltage_v or device.profile.battery_voltage_v
            monitor.set_vout(voltage)
        self._controller.set_device_usb_power(device_id, False)
        self._controller.batt_switch(device_id, bypass=True)
        monitor.start_sampling(label=f"measurement:{device_id}")
        self._active_measurement_device = device_id
        self._active_measurement_duration = duration

    def stop_monitor(self) -> CurrentTrace:
        """Stop the active battery measurement and return its trace.

        The device is returned to its own battery and USB power is restored.
        """
        monitor = self._require_monitor()
        if not self.measuring:
            raise BatteryLabAPIError("no battery measurement is running")
        device_id = self._active_measurement_device
        trace = monitor.stop_sampling()
        self._controller.batt_switch(device_id, bypass=False)
        self._controller.set_device_usb_power(device_id, True)
        self._active_measurement_device = None
        self._active_measurement_duration = None
        return trace

    def batt_switch(self, device_id: str) -> bool:
        """Toggle a device between its own battery and the monitor ("battery bypass").

        Returns ``True`` when the device ends up in bypass.
        """
        bypassed = self._controller.relay.is_bypassed(device_id)
        self._controller.batt_switch(device_id, bypass=not bypassed)
        return not bypassed

    def execute_adb(
        self, device_id: str, command: str, transport: AdbTransport = AdbTransport.WIFI
    ) -> str:
        """Execute an ADB command on a device (logcat/dumpsys collection, setup, ...)."""
        return self._controller.execute_adb(device_id, command, transport)

    # -- convenience built on the Table 1 surface ----------------------------------------
    def controller_cpu_percent(self) -> float:
        """Latest CPU utilisation sample of this vantage point's controller.

        This is the signal the dispatch pipeline consults for jobs with the
        "low CPU utilization (optional)" constraint (Section 4.2); exposing
        it here lets experimenters pre-check a vantage point before
        submitting CPU-sensitive jobs.  Returns 0.0 before the first sample.
        """
        return self._controller.latest_cpu_percent()

    def measure(self, device_id: str, duration: float, label: str = "") -> CurrentTrace:
        """Run a complete measurement of ``duration`` simulated seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.start_monitor(device_id, duration)
        self._controller.context.run_for(duration)
        trace = self.stop_monitor()
        return trace.with_label(label) if label else trace

    def _require_monitor(self):
        monitor = self._controller.monitor
        if monitor is None:
            raise BatteryLabAPIError("this vantage point has no power monitor attached")
        return monitor
