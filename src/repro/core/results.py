"""Measurement result containers.

A :class:`MeasurementResult` bundles everything one BatteryLab measurement
produces: the power-monitor trace, the device and controller CPU series
recorded alongside it, and the mirroring/network byte counters the
system-performance analysis reports.  Experiment drivers aggregate several
results into the figure-specific structures under :mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.cdf import EmpiricalCdf, empirical_cdf
from repro.analysis.stats import SeriesSummary, summarize
from repro.powermonitor.traces import CurrentTrace


@dataclass
class MeasurementResult:
    """Everything collected during one monitored run.

    Attributes
    ----------
    label:
        Scenario label (``"direct"``, ``"chrome/mirroring"``, ...).
    trace:
        The power-monitor current trace.
    device_cpu_percent:
        Device CPU utilisation samples taken during the run (1 Hz).
    controller_cpu_percent:
        Controller CPU utilisation samples taken during the run (1 Hz).
    mirroring_active:
        Whether device mirroring was active during the run.
    mirroring_upload_bytes:
        Bytes the controller uploaded to remote viewers during the run.
    controller_memory_percent:
        Controller memory utilisation observed during the run.
    device_rx_bytes / device_tx_bytes:
        Radio traffic of the test device during the run.
    metadata:
        Free-form extras (browser name, VPN location, repetition index, ...).
    """

    label: str
    trace: CurrentTrace
    device_cpu_percent: List[float] = field(default_factory=list)
    controller_cpu_percent: List[float] = field(default_factory=list)
    mirroring_active: bool = False
    mirroring_upload_bytes: int = 0
    controller_memory_percent: float = 0.0
    device_rx_bytes: int = 0
    device_tx_bytes: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    # -- headline numbers --------------------------------------------------------------
    def discharge_mah(self) -> float:
        """Battery discharge over the run, integrated from the trace."""
        return self.trace.discharge_mah()

    def median_current_ma(self) -> float:
        return self.trace.median_current_ma()

    def mean_current_ma(self) -> float:
        return self.trace.mean_current_ma()

    def duration_s(self) -> float:
        return self.trace.duration_s

    # -- distributions -----------------------------------------------------------------
    def current_cdf(self) -> EmpiricalCdf:
        return empirical_cdf(self.trace.current_ma, label=self.label)

    def device_cpu_cdf(self) -> EmpiricalCdf:
        return empirical_cdf(self.device_cpu_percent, label=f"{self.label}/device-cpu")

    def controller_cpu_cdf(self) -> EmpiricalCdf:
        return empirical_cdf(self.controller_cpu_percent, label=f"{self.label}/controller-cpu")

    def device_cpu_summary(self) -> Optional[SeriesSummary]:
        if not self.device_cpu_percent:
            return None
        return summarize(self.device_cpu_percent, label=f"{self.label}/device-cpu")

    def controller_cpu_summary(self) -> Optional[SeriesSummary]:
        if not self.controller_cpu_percent:
            return None
        return summarize(self.controller_cpu_percent, label=f"{self.label}/controller-cpu")

    def summary_row(self) -> Dict[str, object]:
        """A flat row used by the benchmark harness tables."""
        row: Dict[str, object] = {
            "label": self.label,
            "duration_s": round(self.duration_s(), 1),
            "median_ma": round(self.median_current_ma(), 1),
            "mean_ma": round(self.mean_current_ma(), 1),
            "discharge_mah": round(self.discharge_mah(), 2),
            "mirroring": self.mirroring_active,
        }
        device_cpu = self.device_cpu_summary()
        if device_cpu is not None:
            row["device_cpu_median"] = round(device_cpu.median, 1)
        controller_cpu = self.controller_cpu_summary()
        if controller_cpu is not None:
            row["controller_cpu_median"] = round(controller_cpu.median, 1)
        return row
