"""BatteryLab core: the public platform API and its assembly.

This package is the paper's primary contribution viewed as a library:

* :class:`~repro.core.api.BatteryLabAPI` — the experimenter-facing Python
  API of Table 1 (``list_devices``, ``device_mirroring``, ``power_monitor``,
  ``set_voltage``, ``start_monitor``, ``stop_monitor``, ``batt_switch``,
  ``execute_adb``), bound to one vantage point controller;
* :class:`~repro.core.session.MeasurementSession` — a higher-level wrapper
  that prepares a device for measurement (USB power off, battery bypass,
  optional mirroring), runs it for a duration and collects every signal the
  evaluation needs;
* :class:`~repro.core.results.MeasurementResult` — the container those
  signals land in;
* :class:`~repro.core.platform.BatteryLabPlatform` and
  :func:`~repro.core.platform.build_default_platform` — one-call assembly of
  the paper's deployment (access server plus the Imperial College vantage
  point with a Samsung J7 Duo, a Monsoon HVPM, a Raspberry Pi 3B+ and a
  Meross power socket).
"""

from repro.core.api import BatteryLabAPI
from repro.core.platform import BatteryLabPlatform, build_default_platform
from repro.core.results import MeasurementResult
from repro.core.session import MeasurementSession

__all__ = [
    "BatteryLabAPI",
    "BatteryLabPlatform",
    "build_default_platform",
    "MeasurementResult",
    "MeasurementSession",
]
