"""Platform assembly.

:func:`build_default_platform` recreates the deployment the paper evaluates:
an access server in the cloud plus a first vantage point at Imperial College
London consisting of "a Monsoon power meter, a Samsung J7 Duo (Android 8.0),
a Raspberry Pi 3B+, and a Meross power socket" (Section 4).  The returned
:class:`BatteryLabPlatform` is the convenient entry point the examples,
tests and experiment drivers build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.accessserver.auth import Role, User
from repro.accessserver.server import AccessServer, VantagePointRecord
from repro.core.api import BatteryLabAPI
from repro.device.android import AndroidDevice
from repro.device.profiles import SAMSUNG_J7_DUO, DeviceHardwareProfile
from repro.network.link import NetworkLink
from repro.powermonitor.monsoon import MonsoonHVPM
from repro.simulation.entity import SimulationContext
from repro.vantagepoint.controller import VantagePointController
from repro.vantagepoint.power_socket import MerossPowerSocket
from repro.vantagepoint.provisioning import JoinRequest
from repro.workloads.browsers import BROWSER_PROFILES, BrowserApp, install_browser
from repro.workloads.video import VideoPlayerApp, install_video_player


@dataclass
class VantagePointHandle:
    """Everything an experimenter needs to drive one vantage point."""

    record: VantagePointRecord
    controller: VantagePointController
    monitor: MonsoonHVPM
    power_socket: MerossPowerSocket
    devices: List[AndroidDevice]
    browsers: Dict[str, Dict[str, BrowserApp]] = field(default_factory=dict)
    video_players: Dict[str, VideoPlayerApp] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.record.name

    def device(self, serial: Optional[str] = None) -> AndroidDevice:
        if serial is None:
            return self.devices[0]
        for device in self.devices:
            if device.serial == serial:
                return device
        raise KeyError(f"no device with serial {serial!r} at vantage point {self.name!r}")

    def browser(self, serial: str, name: str) -> BrowserApp:
        return self.browsers[serial][name.lower()]


@dataclass
class BatteryLabPlatform:
    """A fully assembled BatteryLab deployment (access server + vantage points).

    The platform exposes the dispatch pipeline's knobs directly:
    :meth:`set_scheduling_policy` swaps the queue ordering policy
    (``fifo``/``priority``/``fair-share``) and :meth:`run_queue` drains
    queued jobs through the access server's batch dispatcher.  Job
    submission and inspection go through :meth:`client` — the Platform API
    v1 SDK — rather than the access server's methods.
    """

    context: SimulationContext
    access_server: AccessServer
    admin: User
    experimenter: User
    vantage_points: Dict[str, VantagePointHandle] = field(default_factory=dict)
    #: Plaintext tokens for the bootstrap accounts, so :meth:`client` can
    #: authenticate without callers re-typing the well-known credentials.
    account_tokens: Dict[str, str] = field(default_factory=dict)

    def vantage_point(self, name: Optional[str] = None) -> VantagePointHandle:
        if name is None:
            name = sorted(self.vantage_points)[0]
        try:
            return self.vantage_points[name]
        except KeyError:
            raise KeyError(f"unknown vantage point {name!r}") from None

    def api(self, vantage_point: Optional[str] = None) -> BatteryLabAPI:
        """A Table 1 API bound to one vantage point (the first one by default)."""
        return BatteryLabAPI(self.vantage_point(vantage_point).controller)

    def run_for(self, duration_s: float) -> None:
        self.context.run_for(duration_s)

    def set_scheduling_policy(self, policy) -> None:
        """Select the dispatch queue ordering policy by name or instance."""
        self.access_server.set_scheduling_policy(policy)

    def run_queue(self, max_jobs: int = 100):
        """Batch-dispatch and execute queued jobs; returns the executed jobs."""
        return self.access_server.run_pending_jobs(max_jobs=max_jobs)

    @property
    def persistence(self):
        """The access server's persistence manager, when state was enabled."""
        return self.access_server.persistence

    @property
    def analytics(self):
        """The live :class:`~repro.analytics.engine.AnalyticsEngine`, if enabled."""
        return self.access_server.analytics

    def client(self, username: str = "experimenter", token: Optional[str] = None):
        """A :class:`~repro.api.client.BatteryLabClient` for this platform.

        The sanctioned way to submit and inspect jobs: every call runs
        through the versioned Platform API v1 request/response layer (an
        in-process transport with full JSON round-tripping), exactly as a
        remote client over the socket gateway would.  ``token`` defaults to
        the bootstrap token of ``username`` when the platform created that
        account.
        """
        from repro.api.client import in_process_client

        if token is None:
            token = self.account_tokens.get(username)
        if token is None:
            raise ValueError(
                f"no bootstrap token known for {username!r}; pass token= explicitly"
            )
        return in_process_client(self.access_server, username, token)

    def serve_gateway(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        tls_cert_dir: Optional[str] = None,
        assume_https: bool = True,
        push_queue_limit: int = 256,
    ):
        """Start a JSON-lines socket gateway for this platform's API.

        With ``tls_cert_dir`` the gateway serves TLS using the platform's
        wildcard-certificate material under that directory (minted on
        demand via :func:`repro.accessserver.certificates.ensure_tls_material`)
        — the paper's HTTPS-only deployment shape.  ``assume_https=False``
        makes plaintext connections count as insecure, so the HTTPS-only
        user registry refuses to authenticate over them.

        Returns the started :class:`~repro.api.gateway.ApiGateway`; callers
        own its lifecycle (``gateway.stop()``).
        """
        from repro.accessserver.certificates import (
            ensure_tls_material,
            server_tls_context,
        )
        from repro.api.gateway import ApiGateway
        from repro.api.router import ApiRouter

        tls_context = None
        if tls_cert_dir is not None:
            material = ensure_tls_material(
                tls_cert_dir, certificate=self.access_server.wildcard_certificate
            )
            tls_context = server_tls_context(material)
        gateway = ApiGateway(
            ApiRouter(self.access_server),
            host=host,
            port=port,
            tls_context=tls_context,
            assume_https=assume_https,
            push_queue_limit=push_queue_limit,
        )
        gateway.start()
        return gateway


def _default_uplink(hostname: str) -> NetworkLink:
    """The Imperial College vantage point's (fast) campus uplink."""
    return NetworkLink(
        name=f"{hostname}-uplink", downlink_mbps=95.0, uplink_mbps=40.0, latency_ms=6.0
    )


def _slug(name: str) -> str:
    return "".join(ch if ch.isalnum() else "-" for ch in name.lower()).strip("-")


def device_profile_by_name(name: str) -> DeviceHardwareProfile:
    """Resolve a device profile by marketing name or slug.

    Accepts either the exact model string (``"Samsung J7 Duo"``) or its
    wire-friendly slug (``"samsung-j7-duo"``) — the form the Platform API's
    ``vantage-point.register`` operation carries.  Raises :class:`KeyError`
    naming the known profiles otherwise.
    """
    from repro.device.profiles import BUILTIN_PROFILES

    if name in BUILTIN_PROFILES:
        return BUILTIN_PROFILES[name]
    wanted = _slug(name)
    for model, profile in BUILTIN_PROFILES.items():
        if _slug(model) == wanted:
            return profile
    known = ", ".join(sorted(_slug(model) for model in BUILTIN_PROFILES))
    raise KeyError(f"unknown device profile {name!r}; known profiles: {known}")


@dataclass
class AssembledVantagePoint:
    """A built-but-not-yet-registered vantage point: hardware + join request."""

    controller: VantagePointController
    request: JoinRequest
    monitor: MonsoonHVPM
    power_socket: MerossPowerSocket
    devices: List[AndroidDevice]
    browsers: Dict[str, Dict[str, BrowserApp]] = field(default_factory=dict)
    video_players: Dict[str, VideoPlayerApp] = field(default_factory=dict)


def assemble_vantage_point(
    context: SimulationContext,
    node_identifier: str,
    institution: str,
    device_profiles: Sequence[DeviceHardwareProfile] = (SAMSUNG_J7_DUO,),
    browsers: Sequence[str] = ("brave", "chrome", "edge", "firefox"),
    install_video: bool = True,
    uplink: Optional[NetworkLink] = None,
    home_region: str = "GB",
    contact_email: Optional[str] = None,
    public_address: Optional[str] = None,
) -> AssembledVantagePoint:
    """Build one vantage point's simulated hardware and its join request.

    Shared by the in-process :func:`add_vantage_point` helper and the
    Platform API v2 ``vantage-point.register`` operation — the remote path
    assembles exactly the hardware the local path would, then both register
    through :meth:`~repro.accessserver.server.AccessServer.register_vantage_point`.
    """
    hostname = f"{node_identifier}.batterylab.dev"
    controller = VantagePointController(
        context,
        hostname=hostname,
        uplink=uplink or _default_uplink(node_identifier),
        home_region=home_region,
    )
    monitor = MonsoonHVPM(context, serial=f"HVPM-{node_identifier}")
    socket = MerossPowerSocket(context, name=f"{node_identifier}-socket", appliance=monitor)
    controller.attach_monitor(monitor, power_socket=socket)

    devices: List[AndroidDevice] = []
    browser_map: Dict[str, Dict[str, BrowserApp]] = {}
    video_map: Dict[str, VideoPlayerApp] = {}
    for index, profile in enumerate(device_profiles):
        serial = f"{node_identifier}-dev{index:02d}"
        device = AndroidDevice(context, serial=serial, profile=profile)
        controller.add_device(device)
        devices.append(device)
        browser_map[serial] = {}
        for browser_name in browsers:
            browser_map[serial][browser_name.lower()] = install_browser(
                device, browser_name, context, controller.network_path
            )
        if install_video:
            video_map[serial] = install_video_player(device, context)
            controller.adb_server(serial).write_file(
                "/sdcard/Movies/test.mp4", b"\x00" * 1024
            )

    request = JoinRequest(
        institution=institution,
        node_identifier=node_identifier,
        contact_email=contact_email
        or f"ops@{institution.lower().replace(' ', '-')}.example",
        public_address=public_address or "198.51.100.10",
    )
    return AssembledVantagePoint(
        controller=controller,
        request=request,
        monitor=monitor,
        power_socket=socket,
        devices=devices,
        browsers=browser_map,
        video_players=video_map,
    )


def add_vantage_point(
    platform: BatteryLabPlatform,
    node_identifier: str,
    institution: str,
    device_profiles: Sequence[DeviceHardwareProfile] = (SAMSUNG_J7_DUO,),
    browsers: Sequence[str] = ("brave", "chrome", "edge", "firefox"),
    install_video: bool = True,
    uplink: Optional[NetworkLink] = None,
    home_region: str = "GB",
) -> VantagePointHandle:
    """Assemble, provision and register one additional vantage point."""
    if node_identifier in platform.vantage_points:
        from repro.accessserver.server import AccessServerError

        raise AccessServerError(
            f"a vantage point named {node_identifier!r} is already registered"
        )
    assembled = assemble_vantage_point(
        platform.context,
        node_identifier=node_identifier,
        institution=institution,
        device_profiles=device_profiles,
        browsers=browsers,
        install_video=install_video,
        uplink=uplink,
        home_region=home_region,
        public_address=f"198.51.100.{len(platform.vantage_points) + 10}",
    )
    record = platform.access_server.register_vantage_point(
        assembled.controller, assembled.request
    )
    handle = VantagePointHandle(
        record=record,
        controller=assembled.controller,
        monitor=assembled.monitor,
        power_socket=assembled.power_socket,
        devices=assembled.devices,
        browsers=assembled.browsers,
        video_players=assembled.video_players,
    )
    platform.vantage_points[node_identifier] = handle
    return handle


def build_default_platform(
    seed: int = 7,
    node_identifier: str = "node1",
    browsers: Sequence[str] = ("brave", "chrome", "edge", "firefox"),
    device_count: int = 1,
    scheduling_policy: str = "fifo",
    reservation_admission: str = "ignore",
    state_dir: Optional[str] = None,
    persistence: bool = True,
    analytics: bool = True,
) -> BatteryLabPlatform:
    """Build the paper's deployment: access server + the Imperial College vantage point.

    Parameters
    ----------
    seed:
        Root seed for every random stream (repetitions use different seeds).
    node_identifier:
        Name of the first vantage point (``node1`` -> ``node1.batterylab.dev``).
    browsers:
        Browsers to pre-install on every test device.
    device_count:
        Number of Samsung J7 Duo test devices at the vantage point.
    scheduling_policy:
        Dispatch queue ordering policy (``"fifo"``, ``"priority"``,
        ``"fair-share"`` or ``"deadline"``); see
        :mod:`repro.accessserver.policies`.
    reservation_admission:
        ``"ignore"`` (default) or ``"defer"`` — whether dispatch plans
        around *upcoming* session reservations; see
        :class:`~repro.accessserver.dispatch.DispatchEngine`.
    state_dir:
        When set, the access server journals every state mutation under
        this directory and, if the directory already holds a previous run's
        snapshot/journal, recovers that state after the vantage point is
        re-registered — queued jobs, reservations and credit balances
        survive a restart (see :mod:`repro.accessserver.persistence`).
    persistence:
        Set to ``False`` to ignore ``state_dir`` entirely (no recovery, no
        journaling) — the CLI's ``--no-persistence``.
    analytics:
        Attach the live operations-analytics tap (on by default — the fold
        is O(1) per event).  When persistence recovers prior state, the
        analytics engine is seeded by a cold replay of that journal first,
        so reports span restarts.
    """
    if device_count < 1:
        raise ValueError("device_count must be at least 1")
    context = SimulationContext(seed=seed)
    access_server = AccessServer(
        context,
        scheduling_policy=scheduling_policy,
        reservation_admission=reservation_admission,
    )
    admin_token = "admin-token"
    experimenter_token = "experimenter-token"
    admin = access_server.bootstrap_admin(token=admin_token)
    experimenter = access_server.users.add_user(
        "experimenter", Role.EXPERIMENTER, token=experimenter_token
    )
    platform = BatteryLabPlatform(
        context=context,
        access_server=access_server,
        admin=admin,
        experimenter=experimenter,
        account_tokens={
            admin.username: admin_token,
            experimenter.username: experimenter_token,
        },
    )
    add_vantage_point(
        platform,
        node_identifier=node_identifier,
        institution="Imperial College London",
        device_profiles=[SAMSUNG_J7_DUO] * device_count,
        browsers=browsers,
    )
    assert all(name in BROWSER_PROFILES for name in (b.lower() for b in browsers)), (
        "unknown browser requested"
    )
    # Persistence attaches after the vantage point joins so recovery can
    # re-queue jobs onto devices that are registered and executable.
    if state_dir is not None and persistence:
        access_server.enable_persistence(state_dir)
    # Analytics attaches last so a recovered journal seeds the engine
    # before the live tap starts folding new events.
    if analytics:
        access_server.enable_analytics()
    return platform
