"""Measurement sessions.

A :class:`MeasurementSession` wraps one monitored run from the experimenter's
point of view: make sure the Monsoon is powered and set to the right
voltage, cut USB power to the device (so the charge current cannot pollute
the reading), optionally start device mirroring with a remote viewer
attached, switch the device to battery bypass (through the relay circuit or
wired directly, the two accuracy scenarios of Section 4.1), sample for the
desired duration, and collect every signal the evaluation uses into a
:class:`~repro.core.results.MeasurementResult`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.results import MeasurementResult
from repro.device.radio import RadioTechnology
from repro.vantagepoint.controller import VantagePointController
from repro.vantagepoint.relay import connect_direct, disconnect_direct


class SessionError(RuntimeError):
    """Raised for invalid session state transitions."""


class MeasurementSession:
    """One monitored measurement run on one device.

    Parameters
    ----------
    controller:
        The vantage point controller.
    device_id:
        Serial of the test device.
    mirroring:
        Whether device mirroring should be active during the run.
    use_relay:
        ``True`` routes the device through the relay circuit (BatteryLab's
        normal operation); ``False`` wires it directly to the monitor (the
        paper's "direct" accuracy baseline).
    label:
        Label attached to the trace and the result.
    viewer_user:
        Name of the remote viewer attached to the mirroring session.
    """

    def __init__(
        self,
        controller: VantagePointController,
        device_id: str,
        mirroring: bool = False,
        use_relay: bool = True,
        label: str = "",
        viewer_user: str = "experimenter",
    ) -> None:
        self._controller = controller
        self._device_id = device_id
        self._mirroring = bool(mirroring)
        self._use_relay = bool(use_relay)
        self._label = label or device_id
        self._viewer_user = viewer_user
        self._active = False
        self._device = controller.device(device_id)
        self._mirroring_session = None
        self._start_device_cpu_index = 0
        self._start_controller_cpu_index = 0
        self._start_upload_bytes = 0
        self._start_rx = 0
        self._start_tx = 0

    @property
    def active(self) -> bool:
        return self._active

    @property
    def label(self) -> str:
        return self._label

    @property
    def mirroring(self) -> bool:
        return self._mirroring

    # -- lifecycle ----------------------------------------------------------------------
    def start(self) -> None:
        if self._active:
            raise SessionError("measurement session is already active")
        controller = self._controller
        monitor = controller.monitor
        if monitor is None:
            raise SessionError("this vantage point has no power monitor attached")
        if not monitor.mains_on:
            if controller.power_socket is None:
                raise SessionError("monitor is off and there is no power socket to turn it on")
            controller.set_power_monitor(True)
        if not monitor.vout_enabled:
            monitor.set_vout(self._device.profile.battery_voltage_v)
        controller.set_device_usb_power(self._device_id, False)
        if self._mirroring:
            self._mirroring_session = controller.start_mirroring(self._device_id)
            self._mirroring_session.connect_viewer(self._viewer_user, role="experimenter")
        # Snapshot counters so the result only contains this run's samples.
        self._start_device_cpu_index = len(self._device.cpu.samples)
        self._start_controller_cpu_index = len(controller.cpu_samples)
        self._start_upload_bytes = (
            self._mirroring_session.upload_bytes() if self._mirroring_session else 0
        )
        counters = self._device.radio.counters(RadioTechnology.WIFI)
        self._start_rx = counters.rx_bytes
        self._start_tx = counters.tx_bytes
        if self._use_relay:
            controller.batt_switch(self._device_id, bypass=True)
        else:
            connect_direct(monitor, self._device)
        monitor.start_sampling(label=self._label)
        self._active = True

    def stop(self) -> MeasurementResult:
        if not self._active:
            raise SessionError("measurement session is not active")
        controller = self._controller
        monitor = controller.monitor
        trace = monitor.stop_sampling().with_label(self._label)
        if self._use_relay:
            controller.batt_switch(self._device_id, bypass=False)
        else:
            disconnect_direct(monitor, self._device)
        controller.set_device_usb_power(self._device_id, True)
        device_cpu = [
            sample.total_percent
            for sample in self._device.cpu.samples[self._start_device_cpu_index:]
        ]
        controller_cpu = [
            sample.total_percent
            for sample in controller.cpu_samples[self._start_controller_cpu_index:]
        ]
        upload_bytes = 0
        if self._mirroring_session is not None:
            upload_bytes = self._mirroring_session.upload_bytes() - self._start_upload_bytes
        memory_percent = controller.memory_utilisation_percent()
        if self._mirroring_session is not None:
            controller.stop_mirroring(self._device_id)
        counters = self._device.radio.counters(RadioTechnology.WIFI)
        result = MeasurementResult(
            label=self._label,
            trace=trace,
            device_cpu_percent=device_cpu,
            controller_cpu_percent=controller_cpu,
            mirroring_active=self._mirroring,
            mirroring_upload_bytes=upload_bytes,
            controller_memory_percent=memory_percent,
            device_rx_bytes=counters.rx_bytes - self._start_rx,
            device_tx_bytes=counters.tx_bytes - self._start_tx,
        )
        self._active = False
        self._mirroring_session = None
        return result

    def measure(self, duration_s: float) -> MeasurementResult:
        """Start, advance simulated time by ``duration_s``, and stop."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        self.start()
        self._controller.context.run_for(duration_s)
        return self.stop()

    def __enter__(self) -> "MeasurementSession":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._active:
            self.stop()
