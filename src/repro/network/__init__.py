"""Network substrate.

BatteryLab's vantage points sit behind ordinary institutional uplinks, and
Section 4.3 of the paper additionally emulates five network locations by
tunnelling the vantage point's traffic through ProtonVPN.  This package
models that environment:

* :class:`~repro.network.link.NetworkLink` — a bandwidth/latency/loss pipe;
* :class:`~repro.network.path.NetworkPath` — the composition of the vantage
  point uplink with an optional VPN tunnel, yielding the effective
  conditions a page load experiences;
* :class:`~repro.network.vpn.VpnClient` and the Table 2 location profiles;
* :func:`~repro.network.speedtest.run_speedtest` — the SpeedTest-style probe
  used to produce Table 2;
* :class:`~repro.network.ssh.SshServer` / :class:`~repro.network.ssh.SshChannel`
  — the access-server-to-controller control channel (port 2222, pubkey auth);
* :class:`~repro.network.web.WebPage` and the news-site corpus the browser
  workload loads.
"""

from repro.network.link import NetworkLink
from repro.network.path import NetworkPath
from repro.network.speedtest import SpeedtestResult, run_speedtest
from repro.network.ssh import SshAuthenticationError, SshChannel, SshServer
from repro.network.vpn import (
    PROTONVPN_LOCATIONS,
    VpnClient,
    VpnError,
    VpnLocation,
)
from repro.network.web import NEWS_SITES, WebPage, page_by_url

__all__ = [
    "NetworkLink",
    "NetworkPath",
    "SpeedtestResult",
    "run_speedtest",
    "SshAuthenticationError",
    "SshChannel",
    "SshServer",
    "PROTONVPN_LOCATIONS",
    "VpnClient",
    "VpnError",
    "VpnLocation",
    "NEWS_SITES",
    "WebPage",
    "page_by_url",
]
