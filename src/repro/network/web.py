"""Web page / content model.

The demonstration workload (Section 4.2) loads "10 popular news websites"
in each browser.  What matters to the reproduction is how many bytes a load
transfers and how much script work it triggers, and how both vary with:

* the browser — Brave blocks ads, so it downloads the ad payload of none of
  these pages;
* the region — the paper observes a systematic ~20% reduction in Chrome's
  bandwidth usage through the Japanese VPN node because the ads served
  there are smaller, and notes Google's "lite pages" being auto-enabled in
  South Africa and Japan (though none of the tested pages supported them).

:data:`NEWS_SITES` encodes a ten-site corpus with per-page base and ad
payloads; :data:`REGION_AD_FACTORS` captures the regional ad-size effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: Relative size of the ad payload served in each region (1.0 = the size the
#: paper's UK vantage point would see).  Japan's markedly smaller ads are the
#: mechanism behind Chrome's bandwidth/energy drop in Figure 6.
REGION_AD_FACTORS: Dict[str, float] = {
    "GB": 1.00,
    "US": 1.05,
    "ZA": 0.95,
    "HK": 0.90,
    "JP": 0.40,
    "BR": 0.98,
}

#: Regions where Chrome auto-enabled its "lite pages" feature during the
#: paper's measurements (driven by low bandwidth according to Google).
LITE_PAGE_REGIONS = frozenset({"ZA", "JP"})


@dataclass(frozen=True)
class WebPage:
    """One page of the workload corpus.

    Attributes
    ----------
    url:
        Canonical URL loaded by the automation script.
    base_bytes:
        Payload excluding advertising (HTML, CSS, JS, images).
    ad_bytes:
        Advertising payload at the reference region (factor 1.0).
    script_complexity:
        Relative CPU weight of the page's scripts (1.0 = corpus average);
        drives the per-page CPU demand in the browser model.
    supports_lite_pages:
        Whether the server offers a lite-page variant.  The paper notes none
        of the tested pages did, so the corpus defaults to ``False``.
    scroll_depth:
        How many screenfuls of content the page offers to the scroll loop.
    """

    url: str
    base_bytes: int
    ad_bytes: int
    script_complexity: float = 1.0
    supports_lite_pages: bool = False
    scroll_depth: int = 12

    def payload_bytes(
        self,
        region: str = "GB",
        ads_blocked: bool = False,
        lite_pages_enabled: bool = False,
    ) -> int:
        """Bytes transferred for one load under the given conditions."""
        total = float(self.base_bytes)
        if not ads_blocked:
            factor = REGION_AD_FACTORS.get(region, 1.0)
            total += self.ad_bytes * factor
        if lite_pages_enabled and self.supports_lite_pages and region in LITE_PAGE_REGIONS:
            total *= 0.55
        return int(round(total))

    def ad_fraction(self, region: str = "GB") -> float:
        """Fraction of the full payload attributable to ads in ``region``."""
        full = self.payload_bytes(region=region, ads_blocked=False)
        if full == 0:
            return 0.0
        ads = full - self.payload_bytes(region=region, ads_blocked=True)
        return ads / full


def _mb(value: float) -> int:
    return int(value * 1_000_000)


NEWS_SITES: List[WebPage] = [
    WebPage("https://news.example-times.com", _mb(1.9), _mb(1.1), script_complexity=1.2),
    WebPage("https://www.example-guardian.com", _mb(1.6), _mb(0.8), script_complexity=1.0),
    WebPage("https://www.example-post.com", _mb(2.2), _mb(1.3), script_complexity=1.3),
    WebPage("https://www.example-bbc.co.uk", _mb(1.2), _mb(0.5), script_complexity=0.8),
    WebPage("https://www.example-cnn.com", _mb(2.5), _mb(1.5), script_complexity=1.4),
    WebPage("https://www.example-reuters.com", _mb(1.1), _mb(0.6), script_complexity=0.7),
    WebPage("https://www.example-nikkei.jp", _mb(1.4), _mb(0.9), script_complexity=0.9),
    WebPage("https://www.example-globo.br", _mb(1.8), _mb(1.2), script_complexity=1.1),
    WebPage("https://www.example-scmp.hk", _mb(1.7), _mb(1.0), script_complexity=1.0),
    WebPage("https://www.example-mercurynews.com", _mb(2.0), _mb(1.4), script_complexity=1.2),
]
"""The ten-site news corpus the browser workload iterates over."""


def page_by_url(url: str, corpus: Optional[List[WebPage]] = None) -> WebPage:
    """Find a corpus page by URL."""
    pages = corpus if corpus is not None else NEWS_SITES
    for page in pages:
        if page.url == url:
            return page
    raise KeyError(f"no page with url {url!r} in the corpus")


def corpus_total_bytes(region: str = "GB", ads_blocked: bool = False) -> int:
    """Total payload of the whole corpus under the given conditions."""
    return sum(page.payload_bytes(region=region, ads_blocked=ads_blocked) for page in NEWS_SITES)
