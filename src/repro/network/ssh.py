"""SSH control channel between the access server and vantage points.

Section 3.1/3.4: the access server reaches each controller over SSH on a
configurable port (2222 by default), authenticated by public key, with the
server's source addresses white-listed.  This module models exactly that
trust path — key authorisation, IP allow-listing, command execution against
a handler, and file copy (used to deploy renewed wildcard certificates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class SshAuthenticationError(RuntimeError):
    """Raised when key or source-address checks fail."""


class SshExecutionError(RuntimeError):
    """Raised when a remote command fails."""


@dataclass
class SshKeyPair:
    """A toy key pair: the fingerprint is all the emulation needs."""

    comment: str
    fingerprint: str

    @classmethod
    def generate(cls, comment: str, random) -> "SshKeyPair":
        fingerprint = "SHA256:" + "".join(
            random.choice("0123456789abcdef") for _ in range(32)
        )
        return cls(comment=comment, fingerprint=fingerprint)


@dataclass
class SshExecRecord:
    timestamp: float
    source_address: str
    command: str
    exit_code: int
    output: str


CommandHandler = Callable[[str], str]


class SshServer:
    """The sshd running on a vantage point controller.

    Parameters
    ----------
    host:
        DNS name or address of the controller (``node1.batterylab.dev``).
    port:
        Listening port; BatteryLab uses 2222.
    command_handler:
        Callable that executes a command line and returns its output; the
        controller installs its management interface here.
    """

    def __init__(
        self,
        host: str,
        port: int = 2222,
        command_handler: Optional[CommandHandler] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if not 0 < port < 65536:
            raise ValueError(f"invalid port {port!r}")
        self._host = host
        self._port = port
        self._authorized_keys: Dict[str, SshKeyPair] = {}
        self._allowed_sources: List[str] = []
        self._command_handler = command_handler
        self._clock = clock or (lambda: 0.0)
        self._exec_log: List[SshExecRecord] = []
        self._files: Dict[str, bytes] = {}

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    @property
    def files(self) -> Dict[str, bytes]:
        return dict(self._files)

    @property
    def exec_log(self) -> List[SshExecRecord]:
        return list(self._exec_log)

    def set_command_handler(self, handler: CommandHandler) -> None:
        self._command_handler = handler

    # -- trust management ------------------------------------------------------------
    def authorize_key(self, key: SshKeyPair) -> None:
        """Append a public key to ``authorized_keys`` (the join-procedure step)."""
        self._authorized_keys[key.fingerprint] = key

    def revoke_key(self, fingerprint: str) -> None:
        self._authorized_keys.pop(fingerprint, None)

    def authorized_fingerprints(self) -> List[str]:
        return sorted(self._authorized_keys)

    def allow_source(self, address: str) -> None:
        """IP white-listing: only the access server's addresses may connect."""
        if address not in self._allowed_sources:
            self._allowed_sources.append(address)

    def allowed_sources(self) -> List[str]:
        return list(self._allowed_sources)

    # -- connections -----------------------------------------------------------------
    def open_channel(self, key: SshKeyPair, source_address: str) -> "SshChannel":
        if self._allowed_sources and source_address not in self._allowed_sources:
            raise SshAuthenticationError(
                f"connection from {source_address!r} rejected by IP white-list"
            )
        if key.fingerprint not in self._authorized_keys:
            raise SshAuthenticationError(
                f"public key {key.fingerprint!r} is not authorized on {self._host}"
            )
        return SshChannel(self, key, source_address)

    # -- server-side operations (invoked by channels) ----------------------------------
    def _execute(self, command: str, source_address: str) -> str:
        if self._command_handler is None:
            raise SshExecutionError(f"no command handler installed on {self._host}")
        try:
            output = self._command_handler(command)
            exit_code = 0
        except Exception as exc:
            self._exec_log.append(
                SshExecRecord(
                    timestamp=self._clock(),
                    source_address=source_address,
                    command=command,
                    exit_code=1,
                    output=str(exc),
                )
            )
            raise SshExecutionError(f"remote command {command!r} failed: {exc}") from exc
        self._exec_log.append(
            SshExecRecord(
                timestamp=self._clock(),
                source_address=source_address,
                command=command,
                exit_code=exit_code,
                output=output,
            )
        )
        return output

    def _write_file(self, path: str, data: bytes) -> None:
        self._files[path] = bytes(data)

    def _read_file(self, path: str) -> bytes:
        try:
            return self._files[path]
        except KeyError:
            raise SshExecutionError(f"remote file {path!r} does not exist") from None


class SshChannel:
    """An authenticated SSH session from the access server to one controller."""

    def __init__(self, server: SshServer, key: SshKeyPair, source_address: str) -> None:
        self._server = server
        self._key = key
        self._source_address = source_address
        self._open = True

    @property
    def open(self) -> bool:
        return self._open

    @property
    def remote_host(self) -> str:
        return self._server.host

    def execute(self, command: str) -> str:
        """Run a command on the controller and return its stdout."""
        self._require_open()
        return self._server._execute(command, self._source_address)

    def copy_file(self, path: str, data: bytes) -> None:
        """``scp`` a file onto the controller (certificate deployment)."""
        self._require_open()
        self._server._write_file(path, data)

    def fetch_file(self, path: str) -> bytes:
        self._require_open()
        return self._server._read_file(path)

    def close(self) -> None:
        self._open = False

    def _require_open(self) -> None:
        if not self._open:
            raise SshExecutionError("SSH channel is closed")

    def __enter__(self) -> "SshChannel":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
