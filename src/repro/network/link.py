"""Point-to-point network link model.

A :class:`NetworkLink` is a simple fluid pipe: it has a downstream and an
upstream capacity, a one-way latency, and an optional loss rate that
effectively reduces goodput.  Transfers are modelled analytically (transfer
time = RTT + bytes / goodput), which is all the browser-workload and
speedtest models need; packet-level detail would not change any of the
paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkLink:
    """A bidirectional link with asymmetric capacity.

    Attributes
    ----------
    name:
        Human-readable label (``"imperial-uplink"``, ``"protonvpn-jp"``).
    downlink_mbps / uplink_mbps:
        Capacity towards / away from the vantage point, in megabits per second.
    latency_ms:
        One-way propagation latency in milliseconds.
    loss_rate:
        Fraction of packets lost; goodput is scaled by ``(1 - loss_rate)``.
    """

    name: str
    downlink_mbps: float
    uplink_mbps: float
    latency_ms: float
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.downlink_mbps <= 0 or self.uplink_mbps <= 0:
            raise ValueError("link capacities must be positive")
        if self.latency_ms < 0:
            raise ValueError("latency must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")

    @property
    def rtt_ms(self) -> float:
        return 2.0 * self.latency_ms

    def goodput_down_mbps(self) -> float:
        return self.downlink_mbps * (1.0 - self.loss_rate)

    def goodput_up_mbps(self) -> float:
        return self.uplink_mbps * (1.0 - self.loss_rate)

    def download_time_s(self, size_bytes: float, connections: int = 1) -> float:
        """Time to download ``size_bytes`` including one connection-setup RTT."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        if connections < 1:
            raise ValueError("connections must be >= 1")
        setup_s = self.rtt_ms / 1000.0
        if size_bytes == 0:
            return setup_s
        throughput_bps = self.goodput_down_mbps() * 1e6
        return setup_s + (size_bytes * 8.0) / throughput_bps

    def upload_time_s(self, size_bytes: float) -> float:
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        setup_s = self.rtt_ms / 1000.0
        if size_bytes == 0:
            return setup_s
        throughput_bps = self.goodput_up_mbps() * 1e6
        return setup_s + (size_bytes * 8.0) / throughput_bps
