"""SpeedTest-style bandwidth/latency probe.

Table 2 of the paper reports download, upload and RTT measured with
SpeedTest through each ProtonVPN tunnel, always against a server within
10 km of the exit node.  :func:`run_speedtest` reproduces that measurement
against a :class:`~repro.network.path.NetworkPath`: it "transfers" a probe
payload in each direction and reports the achieved rates with a small
measurement noise, so the Table 2 bench regenerates the same rows (within
noise) from the built-in VPN profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.path import NetworkPath
from repro.simulation.random import SeededRandom


@dataclass(frozen=True)
class SpeedtestResult:
    """Outcome of one speedtest run (what each Table 2 row contains)."""

    server: str
    distance_km: float
    download_mbps: float
    upload_mbps: float
    latency_ms: float

    def as_row(self) -> dict:
        return {
            "server": self.server,
            "distance_km": round(self.distance_km, 2),
            "download_mbps": round(self.download_mbps, 2),
            "upload_mbps": round(self.upload_mbps, 2),
            "latency_ms": round(self.latency_ms, 2),
        }


def run_speedtest(
    path: NetworkPath,
    random: SeededRandom,
    probe_bytes: int = 8_000_000,
    noise_fraction: float = 0.03,
) -> SpeedtestResult:
    """Measure the effective conditions of ``path``.

    Parameters
    ----------
    path:
        The composite network path (uplink + optional VPN tunnel).
    random:
        Seeded stream for measurement noise.
    probe_bytes:
        Payload size per direction; only affects the (unreported) probe time.
    noise_fraction:
        Relative standard deviation applied to each reported figure.
    """
    if probe_bytes <= 0:
        raise ValueError("probe_bytes must be positive")
    conditions = path.conditions()
    download = conditions.downlink_mbps * random.clipped_normal(1.0, noise_fraction, low=0.85, high=1.15)
    upload = conditions.uplink_mbps * random.clipped_normal(1.0, noise_fraction, low=0.85, high=1.15)
    latency = conditions.rtt_ms * random.clipped_normal(1.0, noise_fraction, low=0.85, high=1.15)
    vpn = path.vpn
    if vpn is not None and vpn.connected:
        server = vpn.active_location.speedtest_server
        distance = vpn.active_location.speedtest_distance_km
    else:
        server = "local"
        distance = 1.0
    return SpeedtestResult(
        server=server,
        distance_km=distance,
        download_mbps=download,
        upload_mbps=upload,
        latency_ms=latency,
    )
