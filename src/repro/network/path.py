"""Composite network path seen by a test device.

Traffic from a test device traverses the controller's WiFi AP, the vantage
point's uplink, and — when Section 4.3's location emulation is active — a
VPN tunnel to a remote exit node.  :class:`NetworkPath` composes those hops
into the effective bandwidth/latency the browser workload experiences, and
exposes the exit *region* so the content model can localise pages (smaller
ads in Japan, lite pages, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.network.link import NetworkLink
from repro.network.vpn import VpnClient


@dataclass(frozen=True)
class PathConditions:
    """Effective end-to-end conditions for one transfer."""

    downlink_mbps: float
    uplink_mbps: float
    rtt_ms: float
    region: str
    via_vpn: bool


class NetworkPath:
    """The end-to-end path from a test device to the wider Internet.

    Parameters
    ----------
    uplink:
        The vantage point's native uplink.
    vpn:
        Optional VPN client at the controller; when connected, its tunnel
        characteristics bound the path and its exit location defines the
        content region.
    home_region:
        Region code used when no VPN tunnel is active (``"GB"`` for the
        paper's Imperial College vantage point).
    wifi_hop_mbps / wifi_hop_latency_ms:
        Capacity and latency of the device-to-controller WiFi hop.
    """

    def __init__(
        self,
        uplink: NetworkLink,
        vpn: Optional[VpnClient] = None,
        home_region: str = "GB",
        wifi_hop_mbps: float = 150.0,
        wifi_hop_latency_ms: float = 2.0,
    ) -> None:
        self._uplink = uplink
        self._vpn = vpn
        self._home_region = home_region
        self._wifi_hop_mbps = float(wifi_hop_mbps)
        self._wifi_hop_latency_ms = float(wifi_hop_latency_ms)

    @property
    def uplink(self) -> NetworkLink:
        return self._uplink

    @property
    def vpn(self) -> Optional[VpnClient]:
        return self._vpn

    def conditions(self) -> PathConditions:
        """Compute the current effective path conditions."""
        down = min(self._wifi_hop_mbps, self._uplink.goodput_down_mbps())
        up = min(self._wifi_hop_mbps, self._uplink.goodput_up_mbps())
        rtt = self._uplink.rtt_ms + 2.0 * self._wifi_hop_latency_ms
        region = self._home_region
        via_vpn = False
        if self._vpn is not None and self._vpn.connected:
            tunnel = self._vpn.tunnel_link()
            down = min(down, tunnel.goodput_down_mbps())
            up = min(up, tunnel.goodput_up_mbps())
            rtt += tunnel.rtt_ms
            region = self._vpn.active_location.region
            via_vpn = True
        return PathConditions(
            downlink_mbps=down, uplink_mbps=up, rtt_ms=rtt, region=region, via_vpn=via_vpn
        )

    def download_time_s(self, size_bytes: float) -> float:
        """Analytic transfer time for a download of ``size_bytes`` over this path."""
        conditions = self.conditions()
        setup_s = conditions.rtt_ms / 1000.0
        if size_bytes <= 0:
            return setup_s
        return setup_s + (size_bytes * 8.0) / (conditions.downlink_mbps * 1e6)

    def region(self) -> str:
        return self.conditions().region
