"""ProtonVPN location emulation.

Section 4.3 emulates multiple vantage-point locations by tunnelling the
controller's traffic through a ProtonVPN subscription.  Table 2 lists the
five exit locations and the bandwidth/latency measured through each one;
those numbers seed the built-in :data:`PROTONVPN_LOCATIONS` profiles so the
reproduction's Table 2 and Figure 6 use the same vantage points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.network.link import NetworkLink


class VpnError(RuntimeError):
    """Raised for connection attempts to unknown locations or protocol misuse."""


@dataclass(frozen=True)
class VpnLocation:
    """One VPN exit node.

    The bandwidth/latency figures are the paper's Table 2 measurements
    (download, upload in Mbps; RTT in milliseconds measured to a SpeedTest
    server within 10 km of the exit node).
    """

    key: str
    country: str
    city: str
    region: str
    speedtest_server: str
    speedtest_distance_km: float
    download_mbps: float
    upload_mbps: float
    latency_ms: float

    def tunnel_link(self) -> NetworkLink:
        """The tunnel modelled as a network link (latency split per direction)."""
        return NetworkLink(
            name=f"protonvpn-{self.key}",
            downlink_mbps=self.download_mbps,
            uplink_mbps=self.upload_mbps,
            latency_ms=self.latency_ms / 2.0,
        )


PROTONVPN_LOCATIONS: Dict[str, VpnLocation] = {
    "south-africa": VpnLocation(
        key="south-africa",
        country="South Africa",
        city="Johannesburg",
        region="ZA",
        speedtest_server="Johannesburg",
        speedtest_distance_km=3.21,
        download_mbps=6.26,
        upload_mbps=9.77,
        latency_ms=222.04,
    ),
    "china": VpnLocation(
        key="china",
        country="China",
        city="Hong Kong",
        region="HK",
        speedtest_server="Hong Kong",
        speedtest_distance_km=4.86,
        download_mbps=7.64,
        upload_mbps=7.77,
        latency_ms=286.32,
    ),
    "japan": VpnLocation(
        key="japan",
        country="Japan",
        city="Bunkyo",
        region="JP",
        speedtest_server="Bunkyo",
        speedtest_distance_km=2.21,
        download_mbps=9.68,
        upload_mbps=7.76,
        latency_ms=239.38,
    ),
    "brazil": VpnLocation(
        key="brazil",
        country="Brazil",
        city="Sao Paulo",
        region="BR",
        speedtest_server="Sao Paulo",
        speedtest_distance_km=8.84,
        download_mbps=9.75,
        upload_mbps=8.82,
        latency_ms=235.05,
    ),
    "california": VpnLocation(
        key="california",
        country="CA, USA",
        city="Santa Clara",
        region="US",
        speedtest_server="Santa Clara",
        speedtest_distance_km=7.99,
        download_mbps=10.63,
        upload_mbps=14.87,
        latency_ms=215.16,
    ),
}
"""The paper's five ProtonVPN vantage points (Table 2), sorted here by key."""


def locations_by_download_speed() -> List[VpnLocation]:
    """Locations ordered slowest-first, as Table 2 presents them."""
    return sorted(PROTONVPN_LOCATIONS.values(), key=lambda loc: loc.download_mbps)


class VpnClient:
    """A ProtonVPN-style client running on the vantage point controller.

    Only one tunnel can be active at a time; connecting to a new location
    implicitly tears the previous tunnel down (which is how the automation
    script of Section 4.3 iterates over locations).
    """

    def __init__(self, locations: Optional[Dict[str, VpnLocation]] = None) -> None:
        self._locations = dict(locations) if locations is not None else dict(PROTONVPN_LOCATIONS)
        self._active: Optional[VpnLocation] = None
        self._connection_log: List[str] = []

    @property
    def available_locations(self) -> List[str]:
        return sorted(self._locations)

    @property
    def connected(self) -> bool:
        return self._active is not None

    @property
    def active_location(self) -> VpnLocation:
        if self._active is None:
            raise VpnError("no VPN tunnel is active")
        return self._active

    @property
    def connection_log(self) -> List[str]:
        return list(self._connection_log)

    def location(self, key: str) -> VpnLocation:
        try:
            return self._locations[key]
        except KeyError:
            known = ", ".join(sorted(self._locations))
            raise VpnError(f"unknown VPN location {key!r}; known locations: {known}") from None

    def connect(self, key: str) -> VpnLocation:
        location = self.location(key)
        if self._active is not None:
            self._connection_log.append(f"disconnect {self._active.key}")
        self._active = location
        self._connection_log.append(f"connect {key}")
        return location

    def disconnect(self) -> None:
        if self._active is None:
            return
        self._connection_log.append(f"disconnect {self._active.key}")
        self._active = None

    def tunnel_link(self) -> NetworkLink:
        if self._active is None:
            raise VpnError("no VPN tunnel is active")
        return self._active.tunnel_link()
