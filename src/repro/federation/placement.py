"""Deterministic placement for the federation router.

Three mechanisms cooperate to keep every job operation routable without a
shared database:

* **Job-id lanes.**  The job-id space is partitioned by residue class:
  shard *k* of *N* mints ids ``k+1, k+1+N, k+1+2N, ...`` (see
  :func:`repro.accessserver.jobs.shard_job_id_allocator`), so
  :func:`lane_of_job` recovers the owning lane from the id alone —
  ``job.status``/``job.cancel``/``job.results``/``job.watch`` route with
  zero lookups and the property survives router restarts for free.

* **Rendezvous hashing.**  Initial placement of keys that carry no lane
  (new submissions, vantage-point registrations, credit accounts) uses
  highest-random-weight hashing over the *eligible* shard ids
  (:func:`rendezvous_shard`): every router instance picks the same shard
  for the same key, and removing a shard only moves the keys that lived
  on it.

* **Learned directories.**  :class:`PlacementDirectory` records where
  vantage points (and their device serials) actually live and which shard
  served each ``(owner, idempotency_key)`` submission.  Directories are
  *sticky*: entries survive a shard draining or detaching, so a resubmit
  with the same idempotency key and a constraint pinned to a re-attached
  shard's hardware keep landing where the original state lives —
  rendezvous answers only when no directory entry exists yet.
"""

from __future__ import annotations

import hashlib
from enum import Enum
from typing import Dict, List, Optional, Tuple

__all__ = [
    "PlacementDirectory",
    "ShardState",
    "lane_of_job",
    "rendezvous_shard",
]


class ShardState(Enum):
    """Drain state machine: ``active`` → ``draining`` → ``detached``.

    ``ACTIVE`` shards take new placements; ``DRAINING`` shards take no new
    placements but keep serving reads, watches and their in-flight jobs
    until those settle; ``DETACHED`` shards are gone from the scatter set
    entirely (a restarted process re-attaches under the same shard id via
    ``shard.add`` and recovers from its journal).
    """

    ACTIVE = "active"
    DRAINING = "draining"
    DETACHED = "detached"


def lane_of_job(job_id: int, lane_count: int) -> int:
    """The lane (shard index) whose allocator minted ``job_id``."""
    if lane_count < 1:
        raise ValueError(f"lane_count must be positive, got {lane_count!r}")
    if job_id < 1:
        raise ValueError(f"job ids start at 1, got {job_id!r}")
    return (job_id - 1) % lane_count


def _weight(shard_id: str, key: str) -> bytes:
    return hashlib.sha256(f"{shard_id}|{key}".encode("utf-8")).digest()


def rendezvous_shard(key: str, shard_ids: List[str]) -> str:
    """Highest-random-weight choice of one shard for ``key``.

    Deterministic across processes (SHA-256, no process seed) and minimally
    disruptive: dropping a shard from ``shard_ids`` only remaps the keys
    that shard was winning.
    """
    if not shard_ids:
        raise ValueError("rendezvous_shard needs at least one candidate shard")
    return max(shard_ids, key=lambda shard_id: (_weight(shard_id, key), shard_id))


class PlacementDirectory:
    """Learned placement state shared by every routing decision.

    Mutations happen only on the router thread holding the gateway's
    exclusive lock (placement is consulted by mutating ops), so plain
    dicts suffice — no lock of its own.
    """

    def __init__(self) -> None:
        #: vantage-point name -> shard id (learned at attach and register).
        self.vantage_points: Dict[str, str] = {}
        #: device serial -> shard id (learned from controller inventories).
        self.devices: Dict[str, str] = {}
        #: (owner, idempotency_key) -> shard id of the original submission.
        self.submissions: Dict[Tuple[str, str], str] = {}
        #: agent id -> shard id it registered with (its leases live there).
        self.agents: Dict[str, str] = {}

    def learn_shard(self, shard_id: str, server) -> None:
        """Record every vantage point and device ``server`` currently hosts."""
        for record in server.vantage_points():
            self.vantage_points[record.name] = shard_id
            for serial in record.controller.list_devices():
                self.devices[serial] = shard_id

    def forget_vantage_points(self, shard_id: str) -> None:
        """Drop a shard's hardware entries (it detached *without* intending
        to come back; re-attach simply re-learns them)."""
        self.vantage_points = {
            name: home
            for name, home in self.vantage_points.items()
            if home != shard_id
        }
        self.devices = {
            serial: home
            for serial, home in self.devices.items()
            if home != shard_id
        }

    def shard_for_constraints(
        self, vantage_point: Optional[str], device_serial: Optional[str]
    ) -> Optional[str]:
        """The shard hosting the constrained hardware, if any is named."""
        if vantage_point is not None:
            return self.vantage_points.get(vantage_point)
        if device_serial is not None:
            return self.devices.get(device_serial)
        return None

    def shard_for_submission(
        self, owner: str, idempotency_key: Optional[str]
    ) -> Optional[str]:
        if idempotency_key is None:
            return None
        return self.submissions.get((owner, idempotency_key))

    def record_submission(
        self, owner: str, idempotency_key: Optional[str], shard_id: str
    ) -> None:
        if idempotency_key is not None:
            self.submissions[(owner, idempotency_key)] = shard_id
