"""One federation shard: a full access-server deployment plus its lane.

A shard is an ordinary single-server BatteryLab platform — own simulation
context, own vantage points, own write-ahead journal, own telemetry — with
exactly two federation-specific twists applied at build time:

* :meth:`~repro.accessserver.server.AccessServer.configure_shard` switches
  the server onto its strided job-id lane *before* persistence attaches,
  so journal recovery claims ids into the lane allocator and every id the
  shard ever mints stays in its residue class;
* the shard's first vantage point is named after the shard
  (``<shard_id>-node1``), keeping hardware names unique across the fleet
  so the merged ``fleet.list`` has no colliding rows.

Because a shard *is* a stock platform, the federation router drives it
through an unmodified :class:`~repro.api.router.ApiRouter` — the same
wire ops, the same bytes, the same error taxonomy as a standalone server.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.api.router import ApiRouter
from repro.core.platform import BatteryLabPlatform, build_default_platform
from repro.federation.placement import ShardState

__all__ = ["FederationShard", "build_shard", "build_federation_shards"]


class FederationShard:
    """Handle pairing one shard's platform with its router and drain state."""

    def __init__(
        self,
        shard_id: str,
        index: int,
        lane_count: int,
        platform: BatteryLabPlatform,
    ) -> None:
        self.shard_id = shard_id
        self.index = index
        self.lane_count = lane_count
        self.platform = platform
        self.router = ApiRouter(platform.access_server)
        self.state = ShardState.ACTIVE

    @property
    def server(self):
        return self.platform.access_server

    def settle(self, max_rounds: int = 100) -> int:
        """Drain the shard's queue: run pending jobs until none remain.

        Returns how many jobs were executed.  ``max_rounds`` bounds the
        loop against a pathological queue that refills itself.
        """
        executed = 0
        for _ in range(max_rounds):
            ran = self.platform.run_queue()
            executed += len(ran)
            if self.server.scheduler.queue_length() == 0:
                break
        return executed

    def sync(self) -> None:
        """Flush the shard's journal so a re-attach recovers everything."""
        persistence = self.server.persistence
        if persistence is not None:
            persistence.backend.sync()


def build_shard(
    shard_id: str,
    index: int,
    lane_count: int,
    state_dir: Optional[str] = None,
    seed: int = 7,
    device_count: int = 1,
    browsers: Sequence[str] = ("chrome",),
    scheduling_policy: str = "fifo",
    reservation_admission: str = "ignore",
    analytics: bool = True,
) -> FederationShard:
    """Build (or recover) one shard's complete platform.

    Assembly order matters and differs from the single-server helper:
    the shard lane is configured *before* persistence attaches, because
    recovery must claim journaled job ids into the lane allocator — a job
    minted after recovery may otherwise reuse a recovered id.  Analytics
    still attaches last so a recovered journal seeds the engine before
    the live tap folds new events.
    """
    if not (0 <= index < lane_count):
        raise ValueError(
            f"shard index {index!r} outside lane space of {lane_count!r}"
        )
    platform = build_default_platform(
        # De-correlate the shards' random streams; same seed in, same
        # federation out — rebuilds are reproducible.
        seed=seed + index,
        node_identifier=f"{shard_id}-node1",
        browsers=browsers,
        device_count=device_count,
        scheduling_policy=scheduling_policy,
        reservation_admission=reservation_admission,
        state_dir=None,
        persistence=False,
        analytics=False,
    )
    server = platform.access_server
    server.configure_shard(shard_id, shard_index=index, shard_count=lane_count)
    if state_dir is not None:
        server.enable_persistence(state_dir)
    if analytics:
        server.enable_analytics()
    return FederationShard(shard_id, index, lane_count, platform)


def build_federation_shards(
    shard_count: int,
    state_root: Optional[str] = None,
    seed: int = 7,
    device_count: int = 1,
    browsers: Sequence[str] = ("chrome",),
    scheduling_policy: str = "fifo",
    reservation_admission: str = "ignore",
    analytics: bool = True,
) -> List[FederationShard]:
    """Build ``shard_count`` shards named ``shard-0 .. shard-N-1``.

    With ``state_root`` each shard journals under its own subdirectory
    (``<state_root>/shard-K``), which is also where ``shard.add`` recovers
    it from after a rolling restart.
    """
    if shard_count < 1:
        raise ValueError("a federation needs at least one shard")
    shards = []
    for index in range(shard_count):
        shard_id = f"shard-{index}"
        state_dir = None
        if state_root is not None:
            state_dir = os.path.join(state_root, shard_id)
        shards.append(
            build_shard(
                shard_id,
                index,
                shard_count,
                state_dir=state_dir,
                seed=seed,
                device_count=device_count,
                browsers=browsers,
                scheduling_policy=scheduling_policy,
                reservation_admission=reservation_admission,
                analytics=analytics,
            )
        )
    return shards
