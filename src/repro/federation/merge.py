"""Deterministic merges for scattered read responses.

Every function here takes the *wire payloads* the shards returned — the
exact dicts an :class:`~repro.api.router.ApiRouter` produced — and folds
them into one payload of the same schema.  Three rules keep the merged
views honest and byte-stable:

* **Stable order.**  Wherever a single server guarantees an order
  (``job.list`` by id, analytics owners by name, devices by
  ``(vantage_point, serial)``), the merge re-establishes that order over
  the union, keyed only on the data — never on shard arrival order.
* **Counters add, windows extend.**  Counts and durations sum; report
  windows take the min/max of the shard windows; gauges that are really
  fleet facts (``queued_jobs``) sum.
* **Percentiles merge by weight.**  Exact fleet percentiles would need
  the raw samples, which the shards deliberately do not ship; the merged
  ``p50/p90/p99`` are the sample-count-weighted average of the shard
  percentiles — deterministic, exact when shards see similar
  distributions, and clearly documented as an estimate in DESIGN.md.
  ``max`` and ``samples`` are exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "merge_approvals",
    "merge_fleet",
    "merge_job_list",
    "merge_report",
    "merge_status",
    "merge_timeseries",
]

#: Shard payloads tagged with their shard id, in sorted-shard-id order.
TaggedPayloads = List[Tuple[str, dict]]


def _round6(value: float) -> float:
    return round(float(value), 6)


def merge_fleet(payloads: TaggedPayloads) -> dict:
    """Union of the shards' ``fleet.list`` views, sorted by vantage point."""
    vantage_points = []
    for _, payload in payloads:
        vantage_points.extend(payload.get("vantage_points", []))
    vantage_points.sort(key=lambda vp: vp.get("name", ""))
    return {"vantage_points": vantage_points}


def merge_job_list(
    payloads: TaggedPayloads, offset: int = 0, limit: Optional[int] = None
) -> dict:
    """Global ``job.list``: id-ordered union, windowed after the merge.

    The router strips ``limit``/``offset`` from the scattered requests so
    each shard returns its full (filtered) set; pagination is applied to
    the merged, globally id-sorted list — the page a client sees is the
    page a single server holding every job would have returned.
    """
    jobs = []
    total = 0
    for _, payload in payloads:
        jobs.extend(payload.get("jobs", []))
        total += payload.get("total", 0)
    jobs.sort(key=lambda job: job.get("job_id", 0))
    if limit is None:
        window = jobs[offset:]
    else:
        window = jobs[offset : offset + limit]
    return {"jobs": window, "total": total, "offset": offset, "limit": limit}


def merge_approvals(payloads: TaggedPayloads) -> dict:
    """Union of the shards' approval queues, id-ordered."""
    jobs = []
    for _, payload in payloads:
        jobs.extend(payload.get("jobs", []))
    jobs.sort(key=lambda job: job.get("job_id", 0))
    return {"jobs": jobs}


def merge_status(payloads: TaggedPayloads, api_version: str) -> dict:
    """Fleet-wide ``server.status``: sums, unions, merged journal health.

    The merged view describes the federation, not any one process, so
    ``shard_id`` is absent (a directly-addressed shard reports its own)
    and ``certificate_serial`` is ``None`` — each shard serves its own
    certificate and a single serial would be a lie.  Policy fields take
    the first shard's value; :class:`~repro.federation.router.FederationRouter`
    deploys homogeneous policies.  ``auto_dispatch``/``persistence`` are
    true only when true on *every* shard — the conservative reading for
    an operator deciding whether the fleet self-drives or survives a
    crash.
    """
    first = payloads[0][1]
    vantage_points: List[str] = []
    users: set = set()
    orphaned_jobs: List[int] = []
    orphaned_vps: set = set()
    queued = pending = 0
    auto_dispatch = True
    persistence = True
    journal_records = journal_since = journal_snapshots = 0
    journal_last: Optional[float] = None
    any_journal = False
    for _, payload in payloads:
        vantage_points.extend(payload.get("vantage_points", []))
        users.update(payload.get("users", []))
        queued += payload.get("queued_jobs", 0)
        pending += payload.get("pending_approval", 0)
        auto_dispatch = auto_dispatch and payload.get("auto_dispatch", False)
        persistence = persistence and payload.get("persistence", False)
        orphaned_jobs.extend(payload.get("orphaned_jobs", []))
        orphaned_vps.update(payload.get("orphaned_vantage_points", []))
        journal = payload.get("journal")
        if journal is not None:
            any_journal = True
            journal_records += journal.get("records", 0)
            journal_since += journal.get("records_since_snapshot", 0)
            journal_snapshots += journal.get("snapshots_written", 0)
            last = journal.get("last_snapshot_at")
            if last is not None:
                journal_last = last if journal_last is None else max(journal_last, last)
    merged = {
        "api_version": api_version,
        "vantage_points": sorted(vantage_points),
        "users": sorted(users),
        "queued_jobs": queued,
        "pending_approval": pending,
        "scheduling_policy": first.get("scheduling_policy", "fifo"),
        "reservation_admission": first.get("reservation_admission", "ignore"),
        "auto_dispatch": auto_dispatch,
        "persistence": persistence,
        "certificate_serial": None,
        "orphaned_jobs": sorted(orphaned_jobs),
        "orphaned_vantage_points": sorted(orphaned_vps),
    }
    if any_journal:
        merged["journal"] = {
            "records": journal_records,
            "records_since_snapshot": journal_since,
            "snapshots_written": journal_snapshots,
            "last_snapshot_at": journal_last,
        }
    return merged


def _merge_percentiles(stats_list: List[dict]) -> dict:
    samples = sum(stats.get("samples", 0) for stats in stats_list)
    merged = {
        "samples": samples,
        "mean_s": 0.0,
        "p50_s": 0.0,
        "p90_s": 0.0,
        "p99_s": 0.0,
        "max_s": 0.0,
    }
    if samples == 0:
        return merged
    for key in ("mean_s", "p50_s", "p90_s", "p99_s"):
        weighted = sum(
            stats.get(key, 0.0) * stats.get("samples", 0) for stats in stats_list
        )
        merged[key] = _round6(weighted / samples)
    merged["max_s"] = _round6(max(stats.get("max_s", 0.0) for stats in stats_list))
    return merged


def merge_report(payloads: TaggedPayloads) -> dict:
    """Fold the shards' ``analytics.report`` views into a fleet report.

    Owner rows merge by owner name (an owner may burn credits on several
    shards), device rows concatenate (hardware is shard-unique) and both
    re-sort on their single-server keys.  The result is a pure function
    of the shard reports, so a merged live report equals a merged
    cold-replay report whenever the per-shard live/replay invariant holds.
    """
    reports = [payload for _, payload in payloads]
    first_ts = [r.get("first_ts") for r in reports if r.get("first_ts") is not None]
    last_ts = [r.get("last_ts") for r in reports if r.get("last_ts") is not None]
    jobs: Dict[str, int] = {}
    for report in reports:
        for key, value in report.get("jobs", {}).items():
            jobs[key] = jobs.get(key, 0) + value
    owners: Dict[str, dict] = {}
    for report in reports:
        for row in report.get("owners", []):
            name = row.get("owner", "")
            merged_row = owners.setdefault(name, {"owner": name})
            for key, value in row.items():
                if key == "owner":
                    continue
                if isinstance(value, float):
                    merged_row[key] = _round6(merged_row.get(key, 0.0) + value)
                else:
                    merged_row[key] = merged_row.get(key, 0) + value
    devices = []
    for report in reports:
        devices.extend(report.get("devices", []))
    devices.sort(key=lambda row: (row.get("vantage_point", ""), row.get("device_serial", "")))
    reservations: Dict[str, float] = {"created": 0, "cancelled": 0, "booked_device_hours": 0.0}
    for report in reports:
        row = report.get("reservations", {})
        reservations["created"] += row.get("created", 0)
        reservations["cancelled"] += row.get("cancelled", 0)
        reservations["booked_device_hours"] = _round6(
            reservations["booked_device_hours"] + row.get("booked_device_hours", 0.0)
        )
    return {
        "records_folded": sum(r.get("records_folded", 0) for r in reports),
        "first_ts": min(first_ts) if first_ts else None,
        "last_ts": max(last_ts) if last_ts else None,
        "jobs": jobs,
        "owners": [owners[name] for name in sorted(owners)],
        "queue_wait": _merge_percentiles([r.get("queue_wait", {}) for r in reports]),
        "run_time": _merge_percentiles([r.get("run_time", {}) for r in reports]),
        "devices": devices,
        "reservations": reservations,
    }


def merge_timeseries(payloads: TaggedPayloads) -> dict:
    """Sum the shards' throughput buckets on their (shared) time grid."""
    bucket_s = payloads[0][1].get("bucket_s", 60.0) if payloads else 60.0
    buckets: Dict[float, Dict[str, object]] = {}
    for _, payload in payloads:
        for bucket in payload.get("buckets", []):
            start = bucket.get("start_s", 0.0)
            merged = buckets.setdefault(start, {"start_s": start})
            for key, value in bucket.items():
                if key == "start_s":
                    continue
                merged[key] = merged.get(key, 0) + value
    return {
        "bucket_s": bucket_s,
        "buckets": [buckets[start] for start in sorted(buckets)],
    }
