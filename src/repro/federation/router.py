"""Scatter-gather federation router speaking unmodified Platform API v2.

:class:`FederationRouter` fronts N access-server shards behind the exact
duck-type surface :class:`~repro.api.gateway.ApiGateway` drives an
:class:`~repro.api.router.ApiRouter` with — ``handle`` / ``is_read_only`` /
``cancel_owner`` / ``close_all_subscriptions`` / ``operations`` / a
``server`` exposing ``.obs`` — so the stock gateway, the stock client and
every existing wire test run against a federation without modification.

Request classes and how each is served:

* **Routed** — one deterministic target shard, response returned
  *verbatim* (same bytes a standalone server would produce).  Job ops
  route by the job-id *lane* (``(job_id - 1) % N``; see
  :mod:`repro.federation.placement`); ``job.submit`` places by sticky
  idempotency key, then hardware-constraint directory, then rendezvous
  hash over the active shards; ``session.reserve`` and
  ``vantage-point.register`` follow the hardware; ``credits.*`` follow a
  rendezvous of the owner over the (fixed) lane set so an account lives
  on exactly one shard.
* **Scattered** — fanned out to every attached shard and merged with the
  deterministic folds in :mod:`repro.federation.merge`: ``fleet.list``,
  ``server.status``, ``job.list`` (pagination applied *after* the global
  id-sort), ``approvals.list``, ``analytics.report`` /
  ``analytics.timeseries``, ``obs.metrics`` (per-shard ``shard`` label)
  and trace-id ``obs.trace`` (first shard that knows the trace answers).
* **Broadcast** — applied to every shard because the resource is
  federation-global: ``auth.login`` (per-shard tokens collapsed behind
  one federated bearer token), ``auth.logout``, ``user.create``.
* **Streams** — ``events.subscribe`` opens one leg per attached shard and
  multiplexes them behind a single federated subscription id; the
  federated ``seq`` advances by each leg frame's ``dropped + 1``, so the
  PR-5 back-pressure contract (seq gap == dropped) holds across the
  merge.  ``job.watch`` is routed to the job's lane and re-tagged.
* **Admin** — ``shard.list`` / ``shard.add`` / ``shard.drain`` /
  ``shard.remove`` drive the drain state machine (``active`` →
  ``draining`` → ``detached``); they live in the router because shard
  membership *is* router state.

A single-lane federation passes every non-admin request through
verbatim — a federation of one is byte-identical to a standalone server.
"""

from __future__ import annotations

import threading
import uuid
from typing import Callable, Dict, List, Optional, Tuple

from repro.accessserver.auth import Permission, Role, User
from repro.api.errors import (
    AuthenticationApiError,
    ConflictApiError,
    NotFoundApiError,
    PermissionApiError,
    SessionApiError,
    UnknownOperationApiError,
    ValidationApiError,
    VersionApiError,
    map_exception,
)
from repro.api.router import ApiRouter
from repro.api.schemas import (
    API_VERSION,
    API_VERSION_V2,
    PUSH_FRAME_END,
    SUPPORTED_VERSIONS,
    ApiRequest,
    ApiResponse,
    ObsMetricsView,
    ShardListView,
    ShardRef,
    ShardView,
    SubscriptionAck,
    SubscriptionRef,
)
from repro.federation import merge as fed_merge
from repro.federation.placement import (
    PlacementDirectory,
    ShardState,
    lane_of_job,
    rendezvous_shard,
)
from repro.federation.shard import FederationShard
from repro.obs import Observability

__all__ = ["FederationRouter"]

#: Ops scattered to every attached shard and merged deterministically.
_SCATTER_OPS = frozenset(
    {
        "fleet.list",
        "server.status",
        "job.list",
        "approvals.list",
        "analytics.report",
        "analytics.timeseries",
        "obs.metrics",
    }
)

#: Ops routed to the lane that minted the referenced job id.
_JOB_OPS = frozenset(
    {"job.status", "job.cancel", "job.results", "job.approve", "job.reject"}
)

#: Agent-plane ops routed to the agent's learned home shard.  Leases are
#: shard-local state, so everything an agent does after registering must
#: keep landing on the shard that granted its leases.
_AGENT_OPS = frozenset(
    {"agent.poll", "agent.claim", "agent.heartbeat", "agent.report"}
)


class _RouterCore:
    """What the gateway sees behind ``router.server``: telemetry only."""

    def __init__(self, obs: Observability) -> None:
        self.obs = obs


class _FedSession:
    """One federated login: the per-shard bearer tokens behind one token."""

    __slots__ = ("username", "tokens")

    def __init__(self, username: str, tokens: Dict[str, str]) -> None:
        self.username = username
        self.tokens = tokens


class _FedSubscription:
    """One federated push stream multiplexing per-shard legs.

    ``seq`` is the federated cursor: every leg frame advances it by the
    frame's ``dropped + 1``, so a consumer summing ``dropped`` over the
    frames it received can reconcile against the federated seq exactly as
    it would against a single server's.
    """

    __slots__ = (
        "router",
        "fed_id",
        "owner_token",
        "username",
        "push",
        "watch",
        "legs",
        "seq",
        "lock",
        "closed",
    )

    def __init__(
        self,
        router: "FederationRouter",
        fed_id: int,
        owner_token: Optional[object],
        username: str,
        push: Callable[[dict], None],
        watch: bool = False,
    ) -> None:
        self.router = router
        self.fed_id = fed_id
        self.owner_token = owner_token
        self.username = username
        self.push = push
        self.watch = watch
        #: shard id -> that shard's subscription id for our leg.
        self.legs: Dict[str, int] = {}
        self.seq = 0
        self.lock = threading.Lock()
        self.closed = False

    def leg_push(self, shard_id: str) -> Callable[[dict], None]:
        def _push(frame: dict) -> None:
            self.router._forward_frame(self, shard_id, frame)

        return _push


class FederationRouter:
    """N shards behind one ApiRouter-shaped endpoint.

    Parameters
    ----------
    shards:
        The lane-ordered shard set (index ``k`` must hold lane ``k``).
        The lane count is fixed for the federation's lifetime — job-id
        residue classes cannot be renumbered once ids are minted.
    shard_factory:
        Optional ``(shard_id, index, lane_count) -> FederationShard``
        used by ``shard.add`` to rebuild a detached shard (recovering
        from its journal) during a rolling restart.
    """

    def __init__(
        self,
        shards: List[FederationShard],
        shard_factory: Optional[Callable[[str, int, int], FederationShard]] = None,
    ) -> None:
        if not shards:
            raise ValueError("a federation needs at least one shard")
        for index, shard in enumerate(shards):
            if shard.index != index:
                raise ValueError(
                    f"shard {shard.shard_id!r} holds lane {shard.index}, "
                    f"but was passed at position {index}"
                )
        self._lanes: List[FederationShard] = list(shards)
        self._lane_count = len(shards)
        self._shard_factory = shard_factory
        self._directory = PlacementDirectory()
        for shard in self._lanes:
            self._directory.learn_shard(shard.shard_id, shard.server)
        self._sessions: Dict[str, _FedSession] = {}
        self._subscriptions: Dict[int, _FedSubscription] = {}
        self._subscriptions_lock = threading.Lock()
        self._next_subscription_id = 1
        self.obs = Observability()
        self._core = _RouterCore(self.obs)
        self._requests_total = self.obs.registry.counter(
            "federation_requests_total",
            "Federated API requests by operation and serving mode",
            labelnames=("op", "mode"),
        )
        #: shard.* op -> (handler, read_only)
        self._fed_ops: Dict[str, Tuple[Callable, bool]] = {
            "shard.list": (self._op_shard_list, True),
            "shard.add": (self._op_shard_add, False),
            "shard.drain": (self._op_shard_drain, False),
            "shard.remove": (self._op_shard_remove, False),
        }

    # -- ApiRouter duck-type surface -----------------------------------------
    @property
    def server(self):
        return self._core

    @property
    def shards(self) -> List[FederationShard]:
        return list(self._lanes)

    def is_read_only(self, op_name: object) -> bool:
        if isinstance(op_name, str) and op_name in self._fed_ops:
            return self._fed_ops[op_name][1]
        return self._lanes[0].router.is_read_only(op_name)

    def is_blocking(self, op_name: object) -> bool:
        if isinstance(op_name, str) and op_name in self._fed_ops:
            return False
        return self._lanes[0].router.is_blocking(op_name)

    def operations(self, version: str = API_VERSION) -> Dict[str, Optional[Permission]]:
        ops = self._lanes[0].router.operations(version)
        if version >= API_VERSION_V2:
            for name in self._fed_ops:
                ops[name] = Permission.MANAGE_VANTAGE_POINTS
        return ops

    def cancel_owner(self, owner: Optional[object]) -> int:
        with self._subscriptions_lock:
            doomed = [
                fed_id
                for fed_id, sub in self._subscriptions.items()
                if sub.owner_token is owner
            ]
        cancelled = sum(
            1 for fed_id in doomed if self._cancel_fed_subscription(fed_id)
        )
        # Pass-through subscriptions were opened directly on a shard router
        # under the same owner token; tear those down too.
        for shard in self._attached():
            cancelled += shard.router.cancel_owner(owner)
        return cancelled

    def close_all_subscriptions(self) -> int:
        with self._subscriptions_lock:
            doomed = list(self._subscriptions)
        closed = sum(
            1 for fed_id in doomed if self._cancel_fed_subscription(fed_id)
        )
        for shard in self._attached():
            closed += shard.router.close_all_subscriptions()
        return closed

    def active_subscriptions(self) -> List[int]:
        with self._subscriptions_lock:
            fed = set(self._subscriptions)
        for shard in self._attached():
            fed.update(shard.router.active_subscriptions())
        return sorted(fed)

    # -- shard bookkeeping ----------------------------------------------------
    def _attached(self) -> List[FederationShard]:
        """Shards still participating (active or draining), lane order."""
        return [s for s in self._lanes if s.state is not ShardState.DETACHED]

    def _scatter_set(self) -> List[FederationShard]:
        """Attached shards in sorted-shard-id order (the merge order)."""
        return sorted(self._attached(), key=lambda s: s.shard_id)

    def _active(self) -> List[FederationShard]:
        return [s for s in self._lanes if s.state is ShardState.ACTIVE]

    def _shard_by_id(self, shard_id: str) -> Optional[FederationShard]:
        for shard in self._lanes:
            if shard.shard_id == shard_id:
                return shard
        return None

    def _lane_shard(self, job_id: int) -> FederationShard:
        shard = self._lanes[lane_of_job(job_id, self._lane_count)]
        if shard.state is ShardState.DETACHED:
            raise ConflictApiError(
                f"job {job_id} lives on shard {shard.shard_id!r}, which is "
                "detached; re-attach it with shard.add",
                details={"job_id": job_id, "shard_id": shard.shard_id},
            )
        return shard

    def _reference_shard(self) -> FederationShard:
        attached = self._scatter_set()
        if not attached:
            raise ConflictApiError("every shard of this federation is detached")
        return attached[0]

    # -- session fan-out ------------------------------------------------------
    def _request_for_shard(self, request: dict, shard_id: str) -> dict:
        """Rewrite the envelope's federated bearer token to the shard's own.

        Unknown tokens pass through untouched: either the caller holds a
        raw shard token from a pass-through era (the shard resolves it) or
        the token is stale (the shard answers ``auth.session_expired`` and
        the client re-logins, which re-broadcasts).  A *known* federated
        session missing this shard's token — the shard restarted and its
        in-memory sessions died — is forwarded stale on purpose for the
        same re-login effect.
        """
        session = request.get("session")
        if isinstance(session, str):
            fed = self._sessions.get(session)
            if fed is not None:
                token = fed.tokens.get(shard_id)
                if token is not None:
                    rewritten = dict(request)
                    rewritten["session"] = token
                    return rewritten
        return request

    def _caller_username(self, envelope: ApiRequest) -> str:
        if envelope.auth is not None:
            return envelope.auth.username
        if envelope.session is not None:
            fed = self._sessions.get(envelope.session)
            if fed is not None:
                return fed.username
            for shard in self._scatter_set():
                try:
                    session = shard.server.sessions.resolve(
                        envelope.session, shard.server.context.now
                    )
                    return session.username
                except Exception:
                    continue
        return ""

    def _resolve_user(self, envelope: ApiRequest, secure: bool) -> User:
        """Authenticate a federation-handled op against the reference shard."""
        shard = self._reference_shard()
        server = shard.server
        if envelope.session is not None:
            if envelope.version != API_VERSION_V2:
                raise VersionApiError(
                    "bearer session tokens require API version 2.0",
                    details={"version": envelope.version},
                )
            token = envelope.session
            fed = self._sessions.get(token)
            if fed is not None:
                token = fed.tokens.get(shard.shard_id)
                if token is None:
                    raise SessionApiError(
                        f"shard {shard.shard_id!r} restarted since this "
                        "session was issued; log in again"
                    )
            return server.sessions.resolve(
                token, server.context.now, over_https=secure
            )
        if envelope.auth is None:
            raise AuthenticationApiError(
                "operation requires credentials", details={"op": envelope.op}
            )
        return server.users.authenticate(
            envelope.auth.username, envelope.auth.token, over_https=secure
        )

    # -- entry point ----------------------------------------------------------
    def handle(
        self,
        request: dict,
        push: Optional[Callable[[dict], None]] = None,
        owner: Optional[object] = None,
        secure: bool = True,
    ) -> dict:
        """Execute one wire request; never raises (same contract as ApiRouter)."""
        request_id = request.get("request_id") if isinstance(request, dict) else 0
        if not isinstance(request_id, int) or isinstance(request_id, bool):
            request_id = 0
        version = API_VERSION
        try:
            envelope = ApiRequest.from_wire(request)
            if envelope.version not in SUPPORTED_VERSIONS:
                raise VersionApiError(
                    f"API version {envelope.version!r} is not supported",
                    details={"supported_versions": list(SUPPORTED_VERSIONS)},
                )
            version = envelope.version
            op = envelope.op
            if op in self._fed_ops:
                if envelope.version != API_VERSION_V2:
                    raise VersionApiError(
                        f"operation {op!r} requires API version "
                        f"{API_VERSION_V2}; negotiate a v2 envelope",
                        details={"operation": op, "min_version": API_VERSION_V2},
                    )
                handler = self._fed_ops[op][0]
                self._count(op, "admin")
                payload = handler(envelope, secure)
                return ApiResponse(
                    ok=True, version=version, request_id=request_id, payload=payload
                ).to_wire()
            return self._dispatch(request, envelope, push, owner, secure)
        except Exception as exc:  # noqa: BLE001 - boundary translation
            error = map_exception(exc)
            return ApiResponse(
                ok=False,
                version=version,
                request_id=request_id,
                error=error.to_wire(),
            ).to_wire()

    def _count(self, op: str, mode: str) -> None:
        if self.obs.registry.enabled:
            self._requests_total.labels(op, mode).inc()

    def _dispatch(
        self,
        request: dict,
        envelope: ApiRequest,
        push: Optional[Callable[[dict], None]],
        owner: Optional[object],
        secure: bool,
    ) -> dict:
        attached = self._scatter_set()
        if not attached:
            raise ConflictApiError("every shard of this federation is detached")
        op = envelope.op
        if self._lane_count == 1:
            # Federation of one: the shard's response *is* the federated
            # response, byte for byte — including streams.  Only the true
            # single-lane case qualifies — a multi-lane federation drained
            # down to one shard must keep routing so detached lanes answer
            # ``resource.conflict`` ("re-attach me"), not a false not-found.
            self._count(op, "passthrough")
            shard = attached[0]
            return shard.router.handle(
                self._request_for_shard(request, shard.shard_id),
                push=push,
                owner=owner,
                secure=secure,
            )
        if op == "auth.login":
            self._count(op, "broadcast")
            return self._broadcast_login(request, envelope, secure)
        if op == "auth.logout":
            self._count(op, "broadcast")
            return self._broadcast_logout(request, envelope, secure)
        if op == "user.create":
            self._count(op, "broadcast")
            return self._broadcast_create_user(request, secure)
        if op in _SCATTER_OPS:
            self._count(op, "scatter")
            return self._scatter(request, envelope, secure)
        if op == "obs.trace":
            self._count(op, "scatter")
            return self._route_obs_trace(request, envelope, secure)
        if op in _JOB_OPS:
            self._count(op, "routed")
            return self._route_to_job(request, envelope, secure)
        if op == "job.submit":
            self._count(op, "routed")
            return self._route_submit(request, envelope, secure)
        if op == "session.reserve":
            self._count(op, "routed")
            return self._route_reserve(request, secure)
        if op == "vantage-point.register":
            self._count(op, "routed")
            return self._route_register(request, secure)
        if op in ("credits.balance", "credits.grant"):
            self._count(op, "routed")
            return self._route_credits(request, envelope, secure)
        if op == "agent.register":
            self._count(op, "routed")
            return self._route_agent_register(request, envelope, secure)
        if op in _AGENT_OPS:
            self._count(op, "routed")
            return self._route_agent(request, envelope, secure)
        if op == "job.watch":
            self._count(op, "stream")
            return self._open_watch(request, envelope, push, owner, secure)
        if op == "events.subscribe":
            self._count(op, "stream")
            return self._open_events(request, envelope, push, owner, secure)
        if op == "subscription.cancel":
            self._count(op, "routed")
            return self._cancel_subscription_op(request, envelope, secure)
        raise UnknownOperationApiError(
            f"unknown operation {op!r}",
            details={"operations": sorted(self.operations(API_VERSION_V2))},
        )

    # -- forwarding helpers ----------------------------------------------------
    def _forward(
        self,
        request: dict,
        shard: FederationShard,
        secure: bool,
        push: Optional[Callable[[dict], None]] = None,
        owner: Optional[object] = None,
    ) -> dict:
        return shard.router.handle(
            self._request_for_shard(request, shard.shard_id),
            push=push,
            owner=owner,
            secure=secure,
        )

    def _scatter_responses(
        self, request: dict, secure: bool
    ) -> List[Tuple[str, dict]]:
        return [
            (shard.shard_id, self._forward(request, shard, secure))
            for shard in self._scatter_set()
        ]

    @staticmethod
    def _first_error(responses: List[Tuple[str, dict]]) -> Optional[dict]:
        for _, response in responses:
            if not response.get("ok"):
                return response
        return None

    # -- scattered reads -------------------------------------------------------
    def _scatter(self, request: dict, envelope: ApiRequest, secure: bool) -> dict:
        op = envelope.op
        scattered = request
        offset, limit = 0, None
        if op == "job.list" and isinstance(envelope.payload, dict):
            # Pagination must window the *merged* id-ordered list, so the
            # shards are asked for their full filtered sets.
            offset = envelope.payload.get("offset", 0)
            limit = envelope.payload.get("limit")
            stripped = {
                key: value
                for key, value in envelope.payload.items()
                if key not in ("offset", "limit")
            }
            scattered = dict(request)
            scattered["payload"] = stripped
        responses = self._scatter_responses(scattered, secure)
        error = self._first_error(responses)
        if error is not None:
            return error
        payloads = [(shard_id, resp["payload"]) for shard_id, resp in responses]
        if op == "fleet.list":
            merged = fed_merge.merge_fleet(payloads)
        elif op == "server.status":
            merged = fed_merge.merge_status(payloads, envelope.version)
        elif op == "job.list":
            merged = fed_merge.merge_job_list(payloads, offset=offset, limit=limit)
        elif op == "approvals.list":
            merged = fed_merge.merge_approvals(payloads)
        elif op == "analytics.report":
            merged = fed_merge.merge_report(payloads)
        elif op == "analytics.timeseries":
            merged = fed_merge.merge_timeseries(payloads)
        else:  # obs.metrics
            merged = self._merge_metrics(envelope, payloads)
        return ApiResponse(
            ok=True,
            version=envelope.version,
            request_id=envelope.request_id,
            payload=merged,
        ).to_wire()

    def _merge_metrics(
        self, envelope: ApiRequest, payloads: List[Tuple[str, dict]]
    ) -> dict:
        from repro.obs.metrics import merge_snapshots

        prefix = None
        if isinstance(envelope.payload, dict):
            prefix = envelope.payload.get("prefix")
        snapshots = {
            shard_id: ObsMetricsView.from_wire(payload).to_snapshot()
            for shard_id, payload in payloads
        }
        merged = merge_snapshots(
            snapshots, extra=self.obs.registry.snapshot(), label="shard"
        )
        return ObsMetricsView.from_snapshot(merged, prefix=prefix).to_wire()

    def _route_obs_trace(
        self, request: dict, envelope: ApiRequest, secure: bool
    ) -> dict:
        payload = envelope.payload if isinstance(envelope.payload, dict) else {}
        job_id = payload.get("job_id")
        if isinstance(job_id, int) and not isinstance(job_id, bool) and job_id >= 1:
            return self._forward(request, self._lane_shard(job_id), secure)
        # Trace ids are globally unique (uuid-based): the one shard that
        # recorded the trace answers; every miss is a not-found.
        responses = self._scatter_responses(request, secure)
        for _, response in responses:
            if response.get("ok"):
                return response
        return responses[0][1]

    # -- routed job ops --------------------------------------------------------
    def _route_to_job(self, request: dict, envelope: ApiRequest, secure: bool) -> dict:
        payload = envelope.payload if isinstance(envelope.payload, dict) else {}
        job_id = payload.get("job_id")
        if not isinstance(job_id, int) or isinstance(job_id, bool) or job_id < 1:
            # Malformed refs go to the reference shard for the exact
            # validation error a standalone server would emit.
            return self._forward(request, self._reference_shard(), secure)
        return self._forward(request, self._lane_shard(job_id), secure)

    def _route_submit(self, request: dict, envelope: ApiRequest, secure: bool) -> dict:
        payload = envelope.payload if isinstance(envelope.payload, dict) else {}
        constraints = payload.get("constraints")
        constraints = constraints if isinstance(constraints, dict) else {}
        vantage_point = constraints.get("vantage_point")
        device_serial = constraints.get("device_serial")
        idempotency_key = payload.get("idempotency_key")
        if not isinstance(idempotency_key, str):
            idempotency_key = None
        owner = payload.get("owner")
        if not isinstance(owner, str) or not owner:
            owner = self._caller_username(envelope)
        target: Optional[FederationShard] = None
        sticky = self._directory.shard_for_submission(owner, idempotency_key)
        if sticky is not None:
            # A resubmission must reach the shard holding the original
            # job, even mid-drain — that is the whole point of the key.
            target = self._shard_by_id(sticky)
            if target is not None and target.state is ShardState.DETACHED:
                raise ConflictApiError(
                    f"the original submission lives on detached shard "
                    f"{sticky!r}; re-attach it with shard.add",
                    details={"shard_id": sticky},
                )
        if target is None:
            home = self._directory.shard_for_constraints(
                vantage_point if isinstance(vantage_point, str) else None,
                device_serial if isinstance(device_serial, str) else None,
            )
            if home is not None:
                shard = self._shard_by_id(home)
                if shard is not None and shard.state is ShardState.ACTIVE:
                    target = shard
                elif shard is not None:
                    raise ConflictApiError(
                        f"the constrained hardware lives on shard "
                        f"{home!r}, which is {shard.state.value} and not "
                        "taking new jobs",
                        details={"shard_id": home, "state": shard.state.value},
                    )
        if target is None:
            active = self._active()
            if not active:
                raise ConflictApiError(
                    "no active shard is taking new jobs; re-attach or wait "
                    "for a drain to finish"
                )
            key = None
            for candidate in (vantage_point, device_serial, owner):
                if isinstance(candidate, str) and candidate:
                    key = candidate
                    break
            chosen = rendezvous_shard(key or "", [s.shard_id for s in active])
            target = self._shard_by_id(chosen)
        response = self._forward(request, target, secure)
        if response.get("ok"):
            self._directory.record_submission(
                owner, idempotency_key, target.shard_id
            )
        return response

    def _route_reserve(self, request: dict, secure: bool) -> dict:
        payload = request.get("payload")
        payload = payload if isinstance(payload, dict) else {}
        vantage_point = payload.get("vantage_point")
        home = None
        if isinstance(vantage_point, str):
            home = self._directory.vantage_points.get(vantage_point)
        if home is None:
            return self._forward(request, self._reference_shard(), secure)
        shard = self._shard_by_id(home)
        if shard is None or shard.state is ShardState.DETACHED:
            raise ConflictApiError(
                f"vantage point {vantage_point!r} lives on a detached shard",
                details={"vantage_point": vantage_point, "shard_id": home},
            )
        return self._forward(request, shard, secure)

    def _route_register(self, request: dict, secure: bool) -> dict:
        payload = request.get("payload")
        payload = payload if isinstance(payload, dict) else {}
        name = payload.get("name")
        if isinstance(name, str) and name in self._directory.vantage_points:
            # Conflict-check federation-wide before placing: rendezvous
            # would otherwise happily register a duplicate name on a
            # different shard.
            raise ConflictApiError(
                f"a vantage point named {name!r} is already registered",
                details={"name": name},
            )
        active = self._active()
        if not active:
            raise ConflictApiError("no active shard can take new hardware")
        chosen = rendezvous_shard(
            name if isinstance(name, str) else "",
            [s.shard_id for s in active],
        )
        shard = self._shard_by_id(chosen)
        response = self._forward(request, shard, secure)
        if response.get("ok"):
            self._directory.learn_shard(shard.shard_id, shard.server)
        return response

    def _route_credits(
        self, request: dict, envelope: ApiRequest, secure: bool
    ) -> dict:
        payload = envelope.payload if isinstance(envelope.payload, dict) else {}
        owner = payload.get("owner")
        if not isinstance(owner, str) or not owner:
            owner = self._caller_username(envelope)
        # Rendezvous over the *full* lane set: an account's home shard must
        # not move when another shard drains, or balances would appear to
        # reset.  A detached home refuses rather than silently re-homing.
        home_id = rendezvous_shard(owner, [s.shard_id for s in self._lanes])
        shard = self._shard_by_id(home_id)
        if shard.state is ShardState.DETACHED:
            raise ConflictApiError(
                f"the credit account for {owner!r} lives on detached shard "
                f"{home_id!r}; re-attach it with shard.add",
                details={"owner": owner, "shard_id": home_id},
            )
        return self._forward(request, shard, secure)

    # -- routed agent ops ------------------------------------------------------
    def _route_agent_register(
        self, request: dict, envelope: ApiRequest, secure: bool
    ) -> dict:
        """Place an agent on one shard and remember the choice.

        A vantage-point binding pins the agent to the shard hosting that
        hardware (its jobs can only be claimable there); otherwise a
        re-registration goes home to its learned shard, and a brand-new
        unbound agent is placed by rendezvous over the active shards.
        """
        payload = envelope.payload if isinstance(envelope.payload, dict) else {}
        agent_id = payload.get("agent_id")
        agent_id = agent_id if isinstance(agent_id, str) else ""
        vantage_point = payload.get("vantage_point")
        home = self._directory.agents.get(agent_id)
        if isinstance(vantage_point, str):
            vp_home = self._directory.vantage_points.get(vantage_point)
            if vp_home is not None:
                home = vp_home
        target: Optional[FederationShard] = None
        if home is not None:
            target = self._shard_by_id(home)
            if target is not None and target.state is ShardState.DETACHED:
                raise ConflictApiError(
                    f"agent {agent_id!r} belongs on detached shard "
                    f"{home!r}; re-attach it with shard.add",
                    details={"agent_id": agent_id, "shard_id": home},
                )
        if target is None:
            active = self._active()
            if not active:
                raise ConflictApiError("no active shard can take new agents")
            target = self._shard_by_id(
                rendezvous_shard(agent_id, [s.shard_id for s in active])
            )
        response = self._forward(request, target, secure)
        if response.get("ok"):
            self._directory.agents[agent_id] = target.shard_id
        return response

    def _route_agent(self, request: dict, envelope: ApiRequest, secure: bool) -> dict:
        payload = envelope.payload if isinstance(envelope.payload, dict) else {}
        agent_id = payload.get("agent_id")
        home = (
            self._directory.agents.get(agent_id)
            if isinstance(agent_id, str)
            else None
        )
        if home is None:
            # Unknown agent: the reference shard emits the standalone
            # "unknown agent ...; register it first" not-found.
            return self._forward(request, self._reference_shard(), secure)
        shard = self._shard_by_id(home)
        if shard is None or shard.state is ShardState.DETACHED:
            raise ConflictApiError(
                f"agent {agent_id!r} belongs on detached shard {home!r}; "
                "re-attach it with shard.add",
                details={"agent_id": agent_id, "shard_id": home},
            )
        return self._forward(request, shard, secure)

    # -- broadcast ops ---------------------------------------------------------
    def _broadcast_login(
        self, request: dict, envelope: ApiRequest, secure: bool
    ) -> dict:
        responses = self._scatter_responses(request, secure)
        tokens: Dict[str, str] = {}
        home_response: Optional[dict] = None
        for shard_id, response in responses:
            if response.get("ok"):
                tokens[shard_id] = response["payload"]["session_token"]
                if home_response is None:
                    home_response = response
        if home_response is None:
            return responses[0][1]
        username = str(home_response["payload"].get("username", ""))
        fed_token = uuid.uuid4().hex
        self._sessions[fed_token] = _FedSession(username, tokens)
        merged = dict(home_response)
        merged_payload = dict(home_response["payload"])
        merged_payload["session_token"] = fed_token
        merged["payload"] = merged_payload
        return merged

    def _broadcast_logout(
        self, request: dict, envelope: ApiRequest, secure: bool
    ) -> dict:
        fed = (
            self._sessions.pop(envelope.session, None)
            if envelope.session is not None
            else None
        )
        if fed is None:
            # Not a federated token: let the reference shard produce the
            # standalone behaviour (including the revoked=false case).
            return self._forward(request, self._reference_shard(), secure)
        revoked = False
        for shard in self._scatter_set():
            token = fed.tokens.get(shard.shard_id)
            if token is None:
                continue
            rewritten = dict(request)
            rewritten["session"] = token
            response = shard.router.handle(rewritten, secure=secure)
            if response.get("ok") and response["payload"].get("revoked"):
                revoked = True
        return ApiResponse(
            ok=True,
            version=envelope.version,
            request_id=envelope.request_id,
            payload={"revoked": revoked},
        ).to_wire()

    def _broadcast_create_user(self, request: dict, secure: bool) -> dict:
        """Create the account on every shard so credentials work fleet-wide.

        Succeeds if at least one shard accepted; shards answering
        ``resource.conflict`` already hold the account (a retry after a
        partial failure), which is the idempotent outcome we want.
        """
        responses = self._scatter_responses(request, secure)
        for _, response in responses:
            if response.get("ok"):
                return response
        return responses[0][1]

    # -- streams ---------------------------------------------------------------
    def _new_fed_subscription(
        self,
        owner: Optional[object],
        username: str,
        push: Callable[[dict], None],
        watch: bool,
    ) -> _FedSubscription:
        with self._subscriptions_lock:
            fed_id = self._next_subscription_id
            self._next_subscription_id += 1
            sub = _FedSubscription(self, fed_id, owner, username, push, watch=watch)
            self._subscriptions[fed_id] = sub
        return sub

    def _forward_frame(
        self, sub: _FedSubscription, shard_id: str, frame: dict
    ) -> None:
        deliver_failed = False
        ended = False
        with sub.lock:
            if sub.closed:
                return
            dropped = frame.get("dropped", 0)
            sub.seq += dropped + 1
            out = dict(frame)
            out["subscription_id"] = sub.fed_id
            out["seq"] = sub.seq
            try:
                sub.push(out)
            except Exception:
                deliver_failed = True
            else:
                if sub.watch and frame.get("frame") == PUSH_FRAME_END:
                    # The shard already closed its own leg after the end
                    # frame; only the federated bookkeeping remains.
                    ended = True
                    sub.closed = True
        if deliver_failed:
            self._cancel_fed_subscription(sub.fed_id)
        elif ended:
            with self._subscriptions_lock:
                self._subscriptions.pop(sub.fed_id, None)

    def _cancel_fed_subscription(self, fed_id: int) -> bool:
        with self._subscriptions_lock:
            sub = self._subscriptions.pop(fed_id, None)
        if sub is None:
            return False
        with sub.lock:
            sub.closed = True
            legs = dict(sub.legs)
            sub.legs.clear()
        for shard_id, leg_id in legs.items():
            shard = self._shard_by_id(shard_id)
            if shard is not None:
                shard.router.cancel_subscription(leg_id)
        return True

    def _drop_shard_legs(self, shard_id: str) -> None:
        """Forget a detaching shard's legs (its router closes them itself)."""
        with self._subscriptions_lock:
            subs = list(self._subscriptions.values())
        for sub in subs:
            with sub.lock:
                sub.legs.pop(shard_id, None)

    def _open_watch(
        self,
        request: dict,
        envelope: ApiRequest,
        push: Optional[Callable[[dict], None]],
        owner: Optional[object],
        secure: bool,
    ) -> dict:
        if push is None:
            raise ValidationApiError(
                "this transport cannot carry server pushes; use a streaming-"
                "capable transport (gateway connection or in-process client)"
            )
        payload = envelope.payload if isinstance(envelope.payload, dict) else {}
        job_id = payload.get("job_id")
        if not isinstance(job_id, int) or isinstance(job_id, bool) or job_id < 1:
            return self._forward(request, self._reference_shard(), secure)
        shard = self._lane_shard(job_id)
        sub = self._new_fed_subscription(
            owner, self._caller_username(envelope), push, watch=True
        )
        response = self._forward(
            request, shard, secure, push=sub.leg_push(shard.shard_id), owner=sub
        )
        if not response.get("ok"):
            self._cancel_fed_subscription(sub.fed_id)
            return response
        leg_id = response["payload"]["subscription_id"]
        still_open = True
        with sub.lock:
            if sub.closed:
                # Terminal job: the end frame arrived inside handle().
                still_open = False
            else:
                sub.legs[shard.shard_id] = leg_id
        if not still_open:
            with self._subscriptions_lock:
                self._subscriptions.pop(sub.fed_id, None)
        rewritten = dict(response)
        rewritten_payload = dict(response["payload"])
        rewritten_payload["subscription_id"] = sub.fed_id
        rewritten["payload"] = rewritten_payload
        return rewritten

    def _open_events(
        self,
        request: dict,
        envelope: ApiRequest,
        push: Optional[Callable[[dict], None]],
        owner: Optional[object],
        secure: bool,
    ) -> dict:
        if push is None:
            raise ValidationApiError(
                "this transport cannot carry server pushes; use a streaming-"
                "capable transport (gateway connection or in-process client)"
            )
        sub = self._new_fed_subscription(
            owner, self._caller_username(envelope), push, watch=False
        )
        opened: List[Tuple[FederationShard, int]] = []
        for shard in self._scatter_set():
            response = self._forward(
                request, shard, secure, push=sub.leg_push(shard.shard_id), owner=sub
            )
            if not response.get("ok"):
                self._cancel_fed_subscription(sub.fed_id)
                return response
            opened.append((shard, response["payload"]["subscription_id"]))
        with sub.lock:
            for shard, leg_id in opened:
                sub.legs[shard.shard_id] = leg_id
        return ApiResponse(
            ok=True,
            version=envelope.version,
            request_id=envelope.request_id,
            payload=SubscriptionAck(subscription_id=sub.fed_id).to_wire(),
        ).to_wire()

    def _cancel_subscription_op(
        self, request: dict, envelope: ApiRequest, secure: bool
    ) -> dict:
        ref = SubscriptionRef.from_wire(
            envelope.payload if isinstance(envelope.payload, dict) else {}
        )
        with self._subscriptions_lock:
            sub = self._subscriptions.get(ref.subscription_id)
        if sub is None:
            # Not federated: a pass-through-era shard subscription, or
            # simply unknown — the shards decide, with their own checks.
            responses = self._scatter_responses(request, secure)
            for _, response in responses:
                if response.get("ok") and response["payload"].get("cancelled"):
                    return response
            return responses[0][1]
        user = self._resolve_user(envelope, secure)
        self._reference_shard().server.users.authorize(
            user, Permission.VIEW_RESULTS
        )
        if sub.username != user.username and user.role is not Role.ADMIN:
            raise PermissionApiError(
                "only the subscriber or an admin may cancel a subscription"
            )
        cancelled = self._cancel_fed_subscription(ref.subscription_id)
        return ApiResponse(
            ok=True,
            version=envelope.version,
            request_id=envelope.request_id,
            payload={"cancelled": cancelled},
        ).to_wire()

    # -- shard admin plane -----------------------------------------------------
    def _require_admin(self, envelope: ApiRequest, secure: bool) -> User:
        user = self._resolve_user(envelope, secure)
        self._reference_shard().server.users.authorize(
            user, Permission.MANAGE_VANTAGE_POINTS
        )
        return user

    def _shard_view(self, shard: FederationShard) -> ShardView:
        vantage_points = sorted(
            name
            for name, home in self._directory.vantage_points.items()
            if home == shard.shard_id
        )
        queued = running = pending = 0
        if shard.state is not ShardState.DETACHED:
            from repro.accessserver.jobs import JobStatus

            server = shard.server
            queued = server.scheduler.queue_length()
            running = len(server.scheduler.jobs(JobStatus.RUNNING))
            pending = len(server.pending_approval())
        return ShardView(
            shard_id=shard.shard_id,
            state=shard.state.value,
            vantage_points=vantage_points,
            queued_jobs=queued,
            running_jobs=running,
            pending_approval=pending,
        )

    def _op_shard_list(self, envelope: ApiRequest, secure: bool) -> dict:
        self._require_admin(envelope, secure)
        shards = sorted(self._lanes, key=lambda s: s.shard_id)
        return ShardListView(
            shards=[self._shard_view(shard) for shard in shards]
        ).to_wire()

    def _op_shard_drain(self, envelope: ApiRequest, secure: bool) -> dict:
        self._require_admin(envelope, secure)
        ref = ShardRef.from_wire(
            envelope.payload if isinstance(envelope.payload, dict) else {}
        )
        shard = self._shard_by_id(ref.shard_id)
        if shard is None:
            raise NotFoundApiError(
                f"unknown shard {ref.shard_id!r}",
                details={"shards": [s.shard_id for s in self._lanes]},
            )
        if shard.state is ShardState.DETACHED:
            raise ConflictApiError(
                f"shard {ref.shard_id!r} is detached; nothing to drain"
            )
        if len(self._attached()) == 1:
            raise ConflictApiError(
                "refusing to drain the last attached shard; the federation "
                "would serve nothing"
            )
        # Draining: new placements stop immediately (the placement paths
        # only consider ACTIVE shards), then the in-flight work settles so
        # watches receive their end frames before any detach.  Parked
        # agent long-polls are woken now — a drain must not sit behind a
        # poll deadline (watches stay open; they get their end frames).
        shard.state = ShardState.DRAINING
        shard.router.cancel_parked_polls()
        shard.settle()
        shard.sync()
        return self._shard_view(shard).to_wire()

    def _op_shard_remove(self, envelope: ApiRequest, secure: bool) -> dict:
        self._require_admin(envelope, secure)
        ref = ShardRef.from_wire(
            envelope.payload if isinstance(envelope.payload, dict) else {}
        )
        shard = self._shard_by_id(ref.shard_id)
        if shard is None:
            raise NotFoundApiError(f"unknown shard {ref.shard_id!r}")
        if shard.state is ShardState.ACTIVE:
            raise ConflictApiError(
                f"shard {ref.shard_id!r} is still active; drain it first "
                "(shard.drain) so in-flight jobs settle",
                details={"shard_id": ref.shard_id},
            )
        if shard.state is ShardState.DETACHED:
            raise ConflictApiError(f"shard {ref.shard_id!r} is already detached")
        shard.sync()
        shard.router.close_all_subscriptions()
        self._drop_shard_legs(shard.shard_id)
        shard.state = ShardState.DETACHED
        # Directory entries survive on purpose: the shard's hardware and
        # sticky submissions still *belong* to its lane, and a re-attach
        # under the same id finds them waiting.
        return self._shard_view(shard).to_wire()

    def _op_shard_add(self, envelope: ApiRequest, secure: bool) -> dict:
        self._require_admin(envelope, secure)
        ref = ShardRef.from_wire(
            envelope.payload if isinstance(envelope.payload, dict) else {}
        )
        shard = self._shard_by_id(ref.shard_id)
        if shard is None:
            raise ConflictApiError(
                f"unknown shard {ref.shard_id!r}: the lane space is fixed at "
                "federation creation; shard.add re-attaches a detached lane",
                details={"shards": [s.shard_id for s in self._lanes]},
            )
        if shard.state is not ShardState.DETACHED:
            raise ConflictApiError(
                f"shard {ref.shard_id!r} is already attached "
                f"({shard.state.value})"
            )
        if self._shard_factory is None:
            raise ConflictApiError(
                "this federation has no shard factory configured; restart "
                "the router with one to support wire-driven re-attach"
            )
        rebuilt = self._shard_factory(ref.shard_id, shard.index, self._lane_count)
        if rebuilt.shard_id != ref.shard_id or rebuilt.index != shard.index:
            raise ConflictApiError(
                "shard factory returned a shard for the wrong lane",
                details={
                    "expected": {"shard_id": ref.shard_id, "index": shard.index},
                    "got": {"shard_id": rebuilt.shard_id, "index": rebuilt.index},
                },
            )
        rebuilt.state = ShardState.ACTIVE
        self._lanes[shard.index] = rebuilt
        self._directory.learn_shard(rebuilt.shard_id, rebuilt.server)
        return self._shard_view(rebuilt).to_wire()
