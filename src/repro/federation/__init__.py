"""Horizontally sharded access servers behind a scatter-gather router.

The federation layer (PR 8) lets one BatteryLab deployment outgrow a
single access-server process without touching the wire protocol: N
shards — each a complete platform with its own state directory,
write-ahead journal, gateway-compatible router and telemetry — sit
behind a :class:`FederationRouter` that speaks unmodified Platform API
v2.  Existing clients, goldens and streaming consumers work against a
federation exactly as they do against one server.

Modules:

* :mod:`repro.federation.placement` — job-id lanes, rendezvous hashing
  and the learned placement directory (sticky idempotency keys,
  hardware homes).
* :mod:`repro.federation.shard` — :class:`FederationShard` plus the
  ``build_shard`` / ``build_federation_shards`` assembly helpers that
  wire a shard's lane allocator in before journal recovery.
* :mod:`repro.federation.merge` — deterministic folds for scattered
  reads (``fleet.list``, ``job.list``, ``server.status``, analytics,
  metrics).
* :mod:`repro.federation.router` — the :class:`FederationRouter`
  itself: routing, scatter-gather, federated sessions, merged push
  streams and the ``shard.*`` admin plane (drain → detach → re-attach).
"""

from repro.federation.merge import (
    merge_approvals,
    merge_fleet,
    merge_job_list,
    merge_report,
    merge_status,
    merge_timeseries,
)
from repro.federation.placement import (
    PlacementDirectory,
    ShardState,
    lane_of_job,
    rendezvous_shard,
)
from repro.federation.router import FederationRouter
from repro.federation.shard import (
    FederationShard,
    build_federation_shards,
    build_shard,
)

__all__ = [
    "FederationRouter",
    "FederationShard",
    "PlacementDirectory",
    "ShardState",
    "build_federation_shards",
    "build_shard",
    "lane_of_job",
    "merge_approvals",
    "merge_fleet",
    "merge_job_list",
    "merge_report",
    "merge_status",
    "merge_timeseries",
    "rendezvous_shard",
]
