"""Structured logging helpers: per-component loggers with trace IDs.

Components get stdlib loggers named after their module role
(``repro.api.gateway``, ``repro.accessserver.server``, ...) via
:func:`component_logger`.  Every record carries a ``trace_id`` attribute —
``"-"`` when no trace is in flight — injected by :class:`TraceIdFilter`, so
one ``--log-level`` flag on the CLI yields grep-able lines like::

    2026-08-08 12:00:01 WARNING repro.api.gateway [t0000002a] slow op job.submit: 0.412s

Use ``extra={"trace_id": ...}`` (or the :func:`log_slow_op` helper) to tag
records; the filter only fills the default in.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = [
    "LOG_FORMAT",
    "TraceIdFilter",
    "component_logger",
    "configure_logging",
    "log_slow_op",
]

LOG_FORMAT = "%(asctime)s %(levelname)s %(name)s [%(trace_id)s] %(message)s"


class TraceIdFilter(logging.Filter):
    """Guarantee every record has a ``trace_id`` attribute (default ``"-"``)."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "trace_id"):
            record.trace_id = "-"
        return True


_TRACE_FILTER = TraceIdFilter()


def component_logger(name: str) -> logging.Logger:
    """A per-component logger whose records always carry ``trace_id``."""
    logger = logging.getLogger(name)
    if _TRACE_FILTER not in logger.filters:
        logger.addFilter(_TRACE_FILTER)
    return logger


def configure_logging(level: str = "WARNING") -> None:
    """Root configuration for the CLI's ``--log-level`` flag.

    Idempotent: reconfigures the root handler level/format on repeat calls
    instead of stacking handlers.
    """
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger()
    root.setLevel(numeric)
    for handler in root.handlers:
        if getattr(handler, "_repro_obs_handler", False):
            handler.setLevel(numeric)
            return
    handler = logging.StreamHandler()
    handler.setLevel(numeric)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    handler.addFilter(_TRACE_FILTER)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)


def log_slow_op(
    logger: logging.Logger,
    op: str,
    elapsed_s: float,
    threshold_s: float,
    trace_id: Optional[str] = None,
) -> bool:
    """Warn when ``elapsed_s`` exceeds ``threshold_s``; returns whether it did."""
    if threshold_s <= 0 or elapsed_s < threshold_s:
        return False
    logger.warning(
        "slow op %s: %.3fs (threshold %.3fs)",
        op,
        elapsed_s,
        threshold_s,
        extra={"trace_id": trace_id or "-"},
    )
    return True
