"""Lock-cheap in-process metrics: counters, gauges and bounded-bucket histograms.

The platform's hot paths — the gateway selector loop, the dispatch tick,
the wave executor — run at tens of thousands of operations per second, so
the registry is built around three rules:

* **Children are cheap.**  A :class:`Counter`/:class:`Gauge`/:class:`Histogram`
  child is a slotted object whose mutation is a GIL-atomic ``list.append``
  into a pending mailbox — no lock on the write path, because even an
  uncontended acquire opens a GIL handoff window on multi-threaded hot
  loops.  Reads fold the mailbox under the per-child lock, so exposed
  values are exact once writers quiesce.  Label resolution
  (:meth:`MetricFamily.labels`) is a dict hit and is expected to be done
  **once**, outside the loop.
- **Reads are scrape-time.**  Expensive values (queue depths per constraint
  bucket, orphan counts, snapshot age) are not maintained inline; they are
  filled in by collect hooks (:meth:`MetricsRegistry.add_collect_hook`)
  that run only when somebody renders or snapshots the registry.
* **Disable is honest.**  ``registry.enabled = False`` short-circuits every
  mutation with a single attribute check, so the telemetry-off arm of
  ``benchmarks/bench_obs_overhead.py`` measures the real residual cost of
  default-on instrumentation.

Timestamps are *simulated* time when the registry has a
:class:`~repro.simulation.clock.SimClock` (so metric ages line up with
journal and bus records); durations observed into histograms are real
``time.perf_counter()`` seconds, because wall latency is what the operator
is debugging.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.simulation.clock import SimClock

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "merge_snapshots",
    "render_snapshot",
]

#: Default histogram bounds (seconds), tuned for the latencies this platform
#: actually exhibits: sub-millisecond in-process API calls up through
#: multi-second device payload runs.  The overflow (+Inf) bucket is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

LabelValues = Tuple[str, ...]


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


#: Writers fold their pending mailbox once it reaches this depth, bounding
#: memory between scrapes (8 bytes/event) at a once-per-thousands lock cost.
_FOLD_LIMIT = 8192


class Counter:
    """Monotonically increasing count; one child per label combination.

    Mutation is a GIL-atomic ``list.append`` into a pending mailbox, not a
    locked read-modify-write: on multi-threaded hot paths (gateway loop +
    worker pool) even an *uncontended* lock acquire opens a GIL handoff
    window that costs several times the arithmetic it guards.  Reads fold
    the mailbox under the lock, so values are exact once writers quiesce —
    and writers only quiesce-read their own children at scrape time.
    """

    __slots__ = ("_registry", "_lock", "labelvalues", "_value", "_pending")

    def __init__(self, registry: "MetricsRegistry", labelvalues: LabelValues) -> None:
        self._registry = registry
        self._lock = threading.Lock()
        self.labelvalues = labelvalues
        self._value = 0.0
        self._pending: List[float] = []

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount!r}")
        pending = self._pending
        pending.append(amount)
        if len(pending) >= _FOLD_LIMIT:
            self._fold()

    def _fold(self) -> None:
        # Folds serialize on the lock; writers only append.  The slice copy
        # and slice delete are each a single C operation, and appends that
        # race in after the copy land at indices >= taken, which the delete
        # leaves in place — no increment is ever lost.
        with self._lock:
            pending = self._pending
            taken = len(pending)
            if not taken:
                return
            batch = pending[:taken]
            del pending[:taken]
            self._value += sum(batch)

    @property
    def value(self) -> float:
        self._fold()
        return self._value


class Gauge:
    """A value that can go up and down (or be computed at scrape time)."""

    __slots__ = ("_registry", "_lock", "labelvalues", "value")

    def __init__(self, registry: "MetricsRegistry", labelvalues: LabelValues) -> None:
        self._registry = registry
        self._lock = threading.Lock()
        self.labelvalues = labelvalues
        self.value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Bounded-bucket histogram with ``le`` (less-or-equal) semantics.

    ``observe(v)`` lands in the first bucket whose upper bound is ``>= v``;
    values above every bound land in the implicit overflow (+Inf) bucket,
    so an observation is never dropped and memory stays fixed at
    ``len(bounds) + 1`` integers regardless of the value distribution.
    """

    __slots__ = (
        "_registry",
        "_lock",
        "labelvalues",
        "bounds",
        "_counts",
        "_sum",
        "_count",
        "_pending",
    )

    def __init__(
        self,
        registry: "MetricsRegistry",
        labelvalues: LabelValues,
        bounds: Tuple[float, ...],
    ) -> None:
        self._registry = registry
        self._lock = threading.Lock()
        self.labelvalues = labelvalues
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._pending: List[float] = []

    def observe(self, value: float) -> None:
        # Same mailbox scheme as Counter.inc: appending is GIL-atomic and
        # lock-free; bucketing happens at fold (read) time.
        if not self._registry.enabled:
            return
        pending = self._pending
        pending.append(value)
        if len(pending) >= _FOLD_LIMIT:
            self._fold()

    def _fold(self) -> None:
        # Same snapshot-and-delete scheme as Counter._fold, then bucket the
        # batch at C speed: sort it and bisect each *bound* into the batch
        # (len(bounds) bisects total) instead of each value into the bounds.
        # A value lands in the first bucket whose bound is >= it, so bucket
        # i gains the values in (bounds[i-1], bounds[i]] — exactly the
        # elements bisect_right separates in the sorted batch.
        with self._lock:
            pending = self._pending
            taken = len(pending)
            if not taken:
                return
            batch = pending[:taken]
            del pending[:taken]
            batch.sort()
            counts = self._counts
            below_previous = 0
            for index, bound in enumerate(self.bounds):
                below = bisect_right(batch, bound)
                counts[index] += below - below_previous
                below_previous = below
            counts[-1] += taken - below_previous
            self._sum += sum(batch)
            self._count += taken

    @property
    def counts(self) -> List[int]:
        self._fold()
        return self._counts

    @property
    def sum(self) -> float:
        self._fold()
        return self._sum

    @property
    def count(self) -> int:
        self._fold()
        return self._count

    def cumulative_counts(self) -> List[int]:
        """Per-bound cumulative counts (Prometheus ``_bucket`` semantics),
        overflow included as the final entry (== ``count``)."""
        cumulative: List[int] = []
        running = 0
        for bucket in self.counts:
            running += bucket
            cumulative.append(running)
        return cumulative


class MetricFamily:
    """All children of one named metric, keyed by label values."""

    __slots__ = ("name", "help", "kind", "labelnames", "bounds", "_registry", "_children", "_lock")

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        kind: str,
        labelnames: Tuple[str, ...],
        bounds: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self.bounds = bounds
        self._registry = registry
        self._children: Dict[LabelValues, object] = {}
        self._lock = threading.Lock()

    def labels(self, *labelvalues: str, **labelkv: str):
        """Resolve (creating on first use) the child for one label combination.

        Accepts positional values in declaration order or keyword form;
        hot loops should call this once and keep the child.
        """
        if labelkv:
            if labelvalues:
                raise ValueError("pass label values positionally or by keyword, not both")
            try:
                labelvalues = tuple(str(labelkv[name]) for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(f"metric {self.name!r} missing label {exc.args[0]!r}") from None
            if len(labelkv) != len(self.labelnames):
                raise ValueError(
                    f"metric {self.name!r} takes labels {self.labelnames}, got {sorted(labelkv)}"
                )
        else:
            labelvalues = tuple(str(value) for value in labelvalues)
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes {len(self.labelnames)} label(s), "
                f"got {len(labelvalues)}"
            )
        child = self._children.get(labelvalues)
        if child is None:
            with self._lock:
                child = self._children.get(labelvalues)
                if child is None:
                    child = self._make_child(labelvalues)
                    self._children[labelvalues] = child
        return child

    def _make_child(self, labelvalues: LabelValues):
        if self.kind == "counter":
            return Counter(self._registry, labelvalues)
        if self.kind == "gauge":
            return Gauge(self._registry, labelvalues)
        return Histogram(self._registry, labelvalues, self.bounds or DEFAULT_LATENCY_BUCKETS)

    def children(self) -> List[object]:
        return [self._children[key] for key in sorted(self._children)]

    # Unlabeled families proxy mutation straight through to their single child.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)


class MetricsRegistry:
    """Named registry of metric families with Prometheus-style exposition.

    Parameters
    ----------
    clock:
        Optional :class:`~repro.simulation.clock.SimClock`; when present,
        snapshots and renders are stamped with simulated time so telemetry
        lines up with journal and bus records.
    enabled:
        Initial on/off state.  Disabling short-circuits every mutation with
        one attribute check; families and children stay registered so the
        registry can be re-enabled without losing its shape.
    """

    def __init__(self, clock: Optional[SimClock] = None, enabled: bool = True) -> None:
        self._clock = clock
        self.enabled = enabled
        self._families: Dict[str, MetricFamily] = {}
        self._collect_hooks: List[Callable[[], None]] = []
        self._lock = threading.Lock()

    # -- declaration ----------------------------------------------------------------
    def counter(self, name: str, help_text: str = "", labelnames: Iterable[str] = ()) -> MetricFamily:
        return self._family(name, help_text, "counter", tuple(labelnames))

    def gauge(self, name: str, help_text: str = "", labelnames: Iterable[str] = ()) -> MetricFamily:
        return self._family(name, help_text, "gauge", tuple(labelnames))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(hi <= lo for lo, hi in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        return self._family(name, help_text, "histogram", tuple(labelnames), bounds)

    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Tuple[str, ...],
        bounds: Optional[Tuple[float, ...]] = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.labelnames}"
                    )
                return family
            family = MetricFamily(self, name, help_text, kind, labelnames, bounds)
            self._families[name] = family
            return family

    def family(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def add_collect_hook(self, hook: Callable[[], None]) -> None:
        """Register a hook run before every render/snapshot to fill
        scrape-time gauges (queue depths, orphan counts, snapshot age)."""
        self._collect_hooks.append(hook)

    # -- enable / disable -----------------------------------------------------------
    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    # -- exposition -----------------------------------------------------------------
    @property
    def timestamp(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    def collect(self) -> None:
        for hook in self._collect_hooks:
            hook()

    def render_text(self) -> str:
        """Prometheus text exposition format (one TYPE block per family)."""
        return render_snapshot(self.snapshot())

    def snapshot(self) -> Dict[str, object]:
        """Primitive-typed snapshot consumed by the ``obs.metrics`` DTOs
        and by :func:`render_snapshot` (the CLI's text exposition)."""
        self.collect()
        counters: List[Dict[str, object]] = []
        gauges: List[Dict[str, object]] = []
        histograms: List[Dict[str, object]] = []
        for name in sorted(self._families):
            family = self._families[name]
            children = family.children()
            if not children and not family.labelnames:
                # Materialise the single child of an untouched unlabeled
                # family so declared metrics show up at zero.
                children = [family.labels()]
            for child in children:
                labels = dict(zip(family.labelnames, child.labelvalues))
                if family.kind == "histogram":
                    histograms.append(
                        {
                            "name": name,
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "bounds": list(child.bounds),
                            "counts": list(child.counts),
                        }
                    )
                elif family.kind == "counter":
                    counters.append({"name": name, "labels": labels, "value": child.value})
                else:
                    gauges.append({"name": name, "labels": labels, "value": child.value})
        return {
            "generated_at": self.timestamp,
            "enabled": self.enabled,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def merge_snapshots(
    shard_snapshots: Dict[str, Dict[str, object]],
    extra: Optional[Dict[str, object]] = None,
    label: str = "shard",
) -> Dict[str, object]:
    """Merge per-shard :meth:`MetricsRegistry.snapshot` dicts into one view.

    Each shard's samples keep their identity: every sample gains a
    ``label`` (default ``"shard"``) entry carrying the shard id, so two
    shards' ``jobs_submitted_total`` stay distinct series rather than
    being summed into an unattributable blob — federation surfaces, it
    does not launder.  ``extra`` (the router's own registry snapshot, no
    shard label) is appended last.  Output ordering is deterministic:
    family name, then shard id, then the shard's own child order — so the
    merged ``obs.metrics`` response is byte-stable across calls.
    """
    merged: Dict[str, List[Dict[str, object]]] = {
        "counters": [],
        "gauges": [],
        "histograms": [],
    }
    generated_at = 0.0
    enabled = False
    sources = [
        (shard_id, shard_snapshots[shard_id]) for shard_id in sorted(shard_snapshots)
    ]
    if extra is not None:
        sources.append((None, extra))
    for kind in ("counters", "gauges", "histograms"):
        samples: List[Tuple[str, Dict[str, object]]] = []
        for shard_id, snapshot in sources:
            for sample in snapshot.get(kind) or []:
                labels = dict(sample.get("labels") or {})
                if shard_id is not None:
                    labels[label] = shard_id
                stamped = dict(sample)
                stamped["labels"] = labels
                samples.append((str(stamped.get("name", "")), stamped))
        # Stable sort on family name alone: within one family, samples stay
        # in source order (shards sorted by id, each shard's own child
        # order), which is the deterministic grouping the docstring promises.
        samples.sort(key=lambda item: item[0])
        merged[kind] = [sample for _, sample in samples]
    for _, snapshot in sources:
        generated_at = max(generated_at, float(snapshot.get("generated_at") or 0.0))
        enabled = enabled or bool(snapshot.get("enabled"))
    return {
        "generated_at": generated_at,
        "enabled": enabled,
        "counters": merged["counters"],
        "gauges": merged["gauges"],
        "histograms": merged["histograms"],
    }


def _labels_dict_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = ", ".join(f'{name}="{_escape_label(str(value))}"' for name, value in labels.items())
    return "{" + parts + "}"


def render_snapshot(snapshot: Dict[str, object]) -> str:
    """Prometheus text exposition of a :meth:`MetricsRegistry.snapshot`.

    Works off the primitive snapshot shape rather than live registry
    objects, so the CLI renders identical text whether it reads a local
    registry or an ``obs.metrics`` response from a remote gateway.
    """
    lines: List[str] = []
    seen_types: set = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for sample in snapshot.get("counters", []):
        type_line(sample["name"], "counter")
        labels = _labels_dict_text(sample.get("labels") or {})
        lines.append(f"{sample['name']}{labels} {_format_value(sample['value'])}")
    for sample in snapshot.get("gauges", []):
        type_line(sample["name"], "gauge")
        labels = _labels_dict_text(sample.get("labels") or {})
        lines.append(f"{sample['name']}{labels} {_format_value(sample['value'])}")
    for sample in snapshot.get("histograms", []):
        name = sample["name"]
        type_line(name, "histogram")
        labels = _labels_dict_text(sample.get("labels") or {})
        bounds = list(sample.get("bounds") or ()) + [float("inf")]
        running = 0
        for bound, bucket in zip(bounds, sample.get("counts") or ()):
            running += bucket
            extra = f'le="{_format_value(bound)}"'
            merged = labels[:-1] + ", " + extra + "}" if labels else "{" + extra + "}"
            lines.append(f"{name}_bucket{merged} {running}")
        lines.append(f"{name}_sum{labels} {_format_value(sample['sum'])}")
        lines.append(f"{name}_count{labels} {sample['count']}")
    return "\n".join(lines) + "\n"
