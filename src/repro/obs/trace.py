"""Job-lifecycle tracing: trace/span IDs minted at the API boundary.

A *trace* follows one request (and, for ``job.submit``, the job it creates)
through every layer: the gateway reads a line, the router handles the op,
the access server admits the job onto a device, the wave executor runs the
payload, and the settle phase writes the outcome.  Each phase records a
:class:`Span`; all spans of one trace share a ``trace_id`` minted (or
accepted from the client) where the request enters the system.

Design constraints inherited from the platform:

* **Determinism.**  The parallel wave executor promises byte-identical
  journals and bus streams versus serial execution.  Spans for the ``run``
  phase are therefore *measured* on worker threads (plain floats captured
  by the executor) but *recorded* — IDs minted, bus record published — in
  the settle phase on the server thread, in assignment order.  Nothing
  about tracing depends on worker interleaving.
* **The journal stays trace-free.**  Finished spans are published on the
  event bus under the ``trace.span`` topic, which streams through the
  existing ``events.subscribe`` op but is not in
  ``DISPATCH_TOPIC_KINDS``, so persistence never journals it and replay
  determinism is untouched.
* **Bounded memory.**  Finished traces are retained in an insertion-order
  dict capped at ``max_traces``; the oldest trace is evicted whole.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.simulation.clock import SimClock
from repro.simulation.events import EventBus

__all__ = ["SPAN_TOPIC", "Span", "Tracer"]

#: Bus topic finished spans are published under; subscribe with
#: ``topic_prefix="trace."`` over the streaming API to follow live traces.
SPAN_TOPIC = "trace.span"


@dataclass(slots=True)
class Span:
    """One recorded phase of a trace.

    ``start``/``end`` are simulated-clock timestamps (aligned with journal
    and bus records); ``elapsed_s`` is real ``time.perf_counter()`` seconds,
    because wall latency is what the span is for.
    """

    trace_id: str
    span_id: str
    name: str
    start: float
    parent_id: Optional[str] = None
    end: Optional[float] = None
    elapsed_s: Optional[float] = None
    status: str = "ok"
    attrs: Dict[str, object] = field(default_factory=dict)
    _t0: Optional[float] = field(default=None, repr=False, compare=False)

    def to_record(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "elapsed_s": self.elapsed_s if self.elapsed_s is not None else 0.0,
            "status": self.status,
        }
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class _NullSpan:
    """Returned by a disabled tracer so hot paths never branch twice."""

    __slots__ = ()
    trace_id = ""
    span_id = ""
    attrs: Dict[str, object] = {}


_NULL_SPAN = _NullSpan()


class Tracer:
    """Mints trace/span IDs and retains finished spans per trace.

    Thread-safety: ID minting and span recording take a small internal
    lock.  By construction (see module docstring) recording happens on the
    server/loop threads in deterministic order; the lock exists for the
    gateway's worker threads, which record request spans concurrently.
    """

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        bus: Optional[EventBus] = None,
        max_traces: int = 512,
        enabled: bool = True,
    ) -> None:
        self._clock = clock
        self._bus = bus
        self._max_traces = max_traces
        self.enabled = enabled
        #: Live ``events.subscribe`` streams whose topic prefix matches
        #: ``trace.span`` (maintained by the API router).  Spans are only
        #: published on the bus while someone is listening — the retained
        #: trace store always answers ``obs.trace`` either way, and a bus
        #: publish fans out to every wildcard subscriber (analytics, the
        #: journal dispatcher's filter), which is too expensive to pay per
        #: job phase when nothing downstream wants the record.
        self.stream_interest = 0
        self._lock = threading.Lock()
        self._next_trace = 1
        self._next_span = 1
        self._traces: "OrderedDict[str, List[Span]]" = OrderedDict()
        # job_id -> (trace_id, parent_span_id): which trace a job's lifecycle
        # spans belong to, and the span they hang off (the submit span).
        self._job_traces: "OrderedDict[int, Tuple[str, Optional[str]]]" = OrderedDict()
        # trace_id -> [job_ids]: reverse index so evicting one trace drops
        # its job bindings without scanning every binding (O(queue) scans on
        # the submit path are exactly what this layer must not introduce).
        self._trace_jobs: Dict[str, List[int]] = {}

    # -- ids ------------------------------------------------------------------------
    def new_trace_id(self) -> str:
        with self._lock:
            value = self._next_trace
            self._next_trace += 1
        return f"t{value:08x}"

    def _new_span_id(self) -> str:
        value = self._next_span
        self._next_span += 1
        return f"s{value:06x}"

    # -- span lifecycle ---------------------------------------------------------------
    @property
    def _now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    def start_span(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        **attrs: object,
    ):
        """Open a span; returns a no-op sentinel when tracing is disabled."""
        if not self.enabled:
            return _NULL_SPAN
        if trace_id is None:
            trace_id = self.new_trace_id()
        with self._lock:
            span_id = self._new_span_id()
        return Span(
            trace_id=trace_id,
            span_id=span_id,
            name=name,
            start=self._now,
            parent_id=parent_id,
            attrs=attrs,
            _t0=time.perf_counter(),
        )

    def end_span(self, span, status: str = "ok", **attrs: object) -> None:
        """Close ``span``: stamp end/elapsed, retain it, publish ``trace.span``."""
        if span is _NULL_SPAN or not self.enabled:
            return
        span.end = self._now
        if span._t0 is not None:
            span.elapsed_s = time.perf_counter() - span._t0
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        self._retain(span)

    def record_span(
        self,
        name: str,
        trace_id: str,
        start: float,
        end: float,
        elapsed_s: float,
        parent_id: Optional[str] = None,
        status: str = "ok",
        **attrs: object,
    ) -> Optional[Span]:
        """Record an already-measured span (used for phases timed on worker
        threads so that IDs and bus order stay deterministic)."""
        if not self.enabled:
            return None
        with self._lock:
            span = Span(
                trace_id=trace_id,
                span_id=self._new_span_id(),
                name=name,
                start=start,
                parent_id=parent_id,
                end=end,
                elapsed_s=elapsed_s,
                status=status,
                attrs=attrs,
            )
            self._retain_locked(span)
        self._publish(span)
        return span

    def begin_job_trace(
        self,
        job_id: int,
        trace_id: Optional[str],
        start: float,
        elapsed_s: float,
        **attrs: object,
    ) -> Optional[str]:
        """Record a ``job.submit`` span and bind ``job_id`` to its trace.

        The submit hot path's fused form of ``new_trace_id`` +
        ``record_span`` + ``bind_job``: one lock acquisition instead of
        three (locks are not free at thousands of jobs per second).  A
        ``trace_id`` carried in from the API boundary is reused; otherwise
        a fresh trace is minted.  ``job_id`` is folded into the span's
        attrs.  Returns the trace ID, or ``None`` when tracing is off.
        """
        if not self.enabled:
            return None
        attrs["job_id"] = job_id
        with self._lock:
            if trace_id is None:
                value = self._next_trace
                self._next_trace += 1
                trace_id = f"t{value:08x}"
            span = Span(
                trace_id=trace_id,
                span_id=self._new_span_id(),
                name="job.submit",
                start=start,
                end=start,
                elapsed_s=elapsed_s,
                attrs=attrs,
            )
            self._retain_locked(span)
            self._job_traces[job_id] = (trace_id, span.span_id)
            self._trace_jobs.setdefault(trace_id, []).append(job_id)
            while len(self._job_traces) > self._max_traces:
                self._evict_job_binding_locked()
        self._publish(span)
        return trace_id

    def record_phases(
        self,
        job_id: int,
        phases: List[Tuple[str, float, float, float, str, Dict[str, object]]],
    ) -> bool:
        """Record several already-measured lifecycle spans of one job's trace
        under a single lock acquisition.

        ``phases`` is a list of ``(name, start, end, elapsed_s, status,
        attrs)`` tuples; every span gets the job's bound trace ID and hangs
        off its submit span.  This is the settle path's fused form of N
        ``record_span`` calls — the settle phase runs once per job per
        wave, so its lock traffic is the telemetry overhead budget's
        biggest line item.  Returns False when the job has no bound trace
        (evicted, or tracing was off at submit).
        """
        if not self.enabled:
            return False
        spans = []
        with self._lock:
            binding = self._job_traces.get(job_id)
            if binding is None:
                return False
            trace_id, parent_id = binding
            for name, start, end, elapsed_s, status, attrs in phases:
                span = Span(
                    trace_id=trace_id,
                    span_id=self._new_span_id(),
                    name=name,
                    start=start,
                    parent_id=parent_id,
                    end=end,
                    elapsed_s=elapsed_s,
                    status=status,
                    attrs=attrs,
                )
                self._retain_locked(span)
                spans.append(span)
        for span in spans:
            self._publish(span)
        return True

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        **attrs: object,
    ) -> Iterator[object]:
        span = self.start_span(name, trace_id=trace_id, parent_id=parent_id, **attrs)
        try:
            yield span
        except BaseException:
            self.end_span(span, status="error")
            raise
        else:
            self.end_span(span)

    def _retain(self, span: Span) -> None:
        with self._lock:
            self._retain_locked(span)
        self._publish(span)

    def _retain_locked(self, span: Span) -> None:
        spans = self._traces.get(span.trace_id)
        if spans is None:
            spans = []
            self._traces[span.trace_id] = spans
            while len(self._traces) > self._max_traces:
                evicted, _ = self._traces.popitem(last=False)
                # Drop the job bindings with their trace so lookups cannot
                # point at an evicted (empty) trace.
                for job_id in self._trace_jobs.pop(evicted, ()):
                    self._job_traces.pop(job_id, None)
        spans.append(span)

    def _publish(self, span: Span) -> None:
        bus = self._bus
        if bus is None:
            return
        # Only pay the bus fan-out while a trace stream is actually open
        # (router-bridged ``events.subscribe`` with a ``trace.`` prefix) or
        # something subscribed to the topic directly.
        if self.stream_interest > 0 or bus.has_subscribers(SPAN_TOPIC):
            bus.publish(SPAN_TOPIC, **span.to_record())

    # -- job binding ------------------------------------------------------------------
    def bind_job(
        self, job_id: int, trace_id: str, parent_span_id: Optional[str] = None
    ) -> None:
        """Associate ``job_id`` with ``trace_id`` (and optionally the span the
        lifecycle hangs off) so later phases (admit/run/settle) can attach
        their spans to the right trace."""
        if not self.enabled:
            return
        with self._lock:
            self._job_traces[job_id] = (trace_id, parent_span_id)
            self._trace_jobs.setdefault(trace_id, []).append(job_id)
            while len(self._job_traces) > self._max_traces:
                self._evict_job_binding_locked()

    def _evict_job_binding_locked(self) -> None:
        evicted_job, (evicted_trace, _parent) = self._job_traces.popitem(last=False)
        jobs = self._trace_jobs.get(evicted_trace)
        if jobs is not None:
            try:
                jobs.remove(evicted_job)
            except ValueError:
                pass
            if not jobs:
                del self._trace_jobs[evicted_trace]

    def trace_id_for_job(self, job_id: int) -> Optional[str]:
        binding = self._job_traces.get(job_id)
        return binding[0] if binding is not None else None

    def parent_span_for_job(self, job_id: int) -> Optional[str]:
        binding = self._job_traces.get(job_id)
        return binding[1] if binding is not None else None

    # -- retrieval --------------------------------------------------------------------
    def trace(self, trace_id: str) -> List[Span]:
        """Finished spans of one trace, in recording order."""
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def trace_ids(self) -> List[str]:
        """Retained trace IDs, oldest first."""
        return list(self._traces)

    def span_count(self) -> int:
        with self._lock:
            return sum(len(spans) for spans in self._traces.values())
