"""``repro.obs`` — in-process telemetry for the BatteryLab platform.

One :class:`Observability` object per access server bundles the two halves
of the telemetry layer:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  bounded-bucket histograms with labeled families, scrape-time collect
  hooks and Prometheus-style text exposition (``cli metrics``).
* :class:`~repro.obs.trace.Tracer` — trace/span IDs minted at the API
  boundary and propagated through router → server → executor, with
  finished spans published on the event bus as ``trace.span`` records
  (streamable via ``events.subscribe``).

Telemetry is **default-on**; :meth:`Observability.disable` short-circuits
every mutation for overhead measurement (``bench_obs_overhead.py``) and
for callers that want a dark platform.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.logsetup import (
    LOG_FORMAT,
    TraceIdFilter,
    component_logger,
    configure_logging,
    log_slow_op,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    render_snapshot,
)
from repro.obs.trace import SPAN_TOPIC, Span, Tracer
from repro.simulation.clock import SimClock
from repro.simulation.events import EventBus

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "LOG_FORMAT",
    "SPAN_TOPIC",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Observability",
    "Span",
    "TraceIdFilter",
    "Tracer",
    "component_logger",
    "configure_logging",
    "log_slow_op",
    "render_snapshot",
]

#: Default latency above which an API operation logs a warning; override per
#: platform via ``Observability.slow_op_threshold_s``.
DEFAULT_SLOW_OP_THRESHOLD_S = 0.25


class Observability:
    """Registry + tracer pair shared by every layer of one platform."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        bus: Optional[EventBus] = None,
        enabled: bool = True,
        max_traces: int = 512,
        slow_op_threshold_s: float = DEFAULT_SLOW_OP_THRESHOLD_S,
    ) -> None:
        self.registry = MetricsRegistry(clock=clock, enabled=enabled)
        self.tracer = Tracer(clock=clock, bus=bus, max_traces=max_traces, enabled=enabled)
        self.slow_op_threshold_s = slow_op_threshold_s

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def enable(self) -> None:
        self.registry.enable()
        self.tracer.enabled = True

    def disable(self) -> None:
        self.registry.disable()
        self.tracer.enabled = False
