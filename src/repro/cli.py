"""Command-line interface for the BatteryLab reproduction.

A thin wrapper around the experiment drivers so a downstream user can
regenerate any of the paper's tables and figures without writing Python::

    batterylab-repro quickstart
    batterylab-repro figure2 --duration 120
    batterylab-repro figure3 --repetitions 3
    batterylab-repro figure5
    batterylab-repro table2
    batterylab-repro figure6
    batterylab-repro sysperf
    batterylab-repro locations
    batterylab-repro dispatch-bench --devices 100 --jobs 1000

Platform-operations subcommands drive the access server exclusively
through the Platform API client SDK (:mod:`repro.api`) — the same typed
request/response layer a remote experimenter would use::

    batterylab-repro --state-dir ./state submit --name nightly --payload noop
    batterylab-repro --state-dir ./state status
    batterylab-repro --state-dir ./state cancel --job-id 3
    batterylab-repro --state-dir ./state fleet

Platform API v2 adds the admin control plane and streaming — approvals,
credit grants, remote vantage-point registration, live ``dispatch.*``
event streaming instead of status polling, and a TLS gateway server::

    batterylab-repro --state-dir ./state watch --job-id 3
    batterylab-repro --state-dir ./state approve --job-id 3
    batterylab-repro --state-dir ./state reject --job-id 3 --reason "unsafe"
    batterylab-repro --state-dir ./state grant --owner alice --amount 5
    batterylab-repro --state-dir ./state register-vp --name node2 --institution "Example University"
    batterylab-repro --state-dir ./state serve --tls --cert-dir ./state/tls

Horizontal scale-out (``repro.federation``) serves N sharded access
servers behind one scatter-gather router that speaks the same wire
protocol — or one process as a single shard of a larger deployment::

    batterylab-repro federate --shards 2 --state-root ./state --tls --cert-dir ./state/tls
    batterylab-repro serve --shard-id shard-0 --shard-index 0 --shard-count 2

The ``report`` subcommand folds the platform's event-sourced records
(``repro.analytics``) into an operations report — owner utilisation and
credit burn, queue-wait/run-time percentiles, per-device occupancy and
failure rates — either by cold-replaying a ``--state-dir`` journal or by
querying a live gateway::

    batterylab-repro --state-dir ./state report --bucket-s 300
    batterylab-repro report --gateway 127.0.0.1:8443

The ``metrics`` subcommand renders the platform's telemetry registry
(``repro.obs``) as Prometheus-style text — counters, gauges and latency
histograms from the gateway loop, dispatcher, executor and journal —
again either locally or from a live gateway::

    batterylab-repro --state-dir ./state metrics
    batterylab-repro metrics --gateway 127.0.0.1:8443 --prefix gateway_

``--log-level DEBUG`` turns on structured component logging
(``repro.api.gateway``, ``repro.accessserver.server``, ...) with trace IDs
on the records.

Each command prints the reproduced rows as an aligned table.  ``--seed``
controls the simulation seed so runs are reproducible, and
``--scheduling-policy`` selects the dispatch queue ordering
(``fifo``/``priority``/``fair-share``/``deadline``) for the commands that
go through the job scheduler: ``quickstart`` and ``dispatch-bench``.  The
figure/table commands replay the paper's single-experimenter workloads and
always use the default FIFO ordering.

``--state-dir DIR`` makes the access server durable: every job,
reservation and credit mutation is journaled under ``DIR`` and a later run
pointed at the same directory recovers the queue before doing anything
else (``--no-persistence`` opts back out).  ``--reservation-admission
defer`` keeps jobs off devices whose next interactive reservation would
start before the job's timeout elapses.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.accessserver.dispatch import DispatchEngine
from repro.accessserver.policies import policy_names
from repro.analysis.tables import format_table
from repro.core.platform import build_default_platform
from repro.experiments.accuracy import run_accuracy_experiment
from repro.experiments.browser_study import run_browser_study
from repro.experiments.controller_load import run_controller_load_experiment
from repro.experiments.system_perf import run_system_performance
from repro.experiments.vpn_study import run_vpn_energy_study, run_vpn_speedtests
from repro.network.vpn import PROTONVPN_LOCATIONS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="batterylab-repro",
        description="Regenerate the BatteryLab paper's evaluation on the emulated platform.",
    )
    parser.add_argument("--seed", type=int, default=7, help="simulation seed (default: 7)")
    parser.add_argument(
        "--scheduling-policy",
        choices=policy_names(),
        default="fifo",
        help="dispatch queue ordering for quickstart/dispatch-bench (default: fifo)",
    )
    parser.add_argument(
        "--reservation-admission",
        choices=list(DispatchEngine.ADMISSION_MODES),
        default="ignore",
        help="whether dispatch plans around upcoming session reservations: "
        "'defer' keeps a job off a device whose next reservation starts "
        "before the job's timeout elapses (default: ignore)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="for quickstart and the API subcommands (submit/status/cancel/fleet): "
        "journal access-server state (jobs, reservations, credits) under DIR "
        "and recover any previous run's state from it on startup (the "
        "figure/table commands build throwaway platforms and ignore this)",
    )
    parser.add_argument(
        "--no-persistence",
        action="store_true",
        help="ignore --state-dir: no recovery and no journaling",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="enable structured component logging at LEVEL "
        "(DEBUG/INFO/WARNING/ERROR); records carry trace IDs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("quickstart", help="build the platform and take a 30 s idle measurement")
    sub.add_parser("locations", help="list the built-in ProtonVPN locations (Table 2 profiles)")

    dispatch_bench = sub.add_parser(
        "dispatch-bench",
        help="measure batch dispatch throughput on a synthetic device fleet",
    )
    dispatch_bench.add_argument("--devices", type=int, default=100, help="device slots in the fleet")
    dispatch_bench.add_argument("--jobs", type=int, default=1000, help="jobs to queue")
    dispatch_bench.add_argument(
        "--vantage-points", type=int, default=10, help="vantage points the devices spread over"
    )

    figure2 = sub.add_parser("figure2", help="accuracy experiment (current CDFs)")
    figure2.add_argument("--duration", type=float, default=120.0, help="measurement length in seconds")
    figure2.add_argument("--sample-rate", type=float, default=500.0, help="monitor sampling rate in Hz")

    figure3 = sub.add_parser("figure3", help="per-browser battery discharge")
    figure3.add_argument("--repetitions", type=int, default=2)
    figure3.add_argument("--scrolls", type=int, default=10, help="scroll operations per page")

    figure5 = sub.add_parser("figure5", help="controller CPU utilisation")
    figure5.add_argument("--repetitions", type=int, default=1)

    sub.add_parser("table2", help="ProtonVPN speedtest statistics")

    figure6 = sub.add_parser("figure6", help="Brave/Chrome energy through VPN tunnels")
    figure6.add_argument("--repetitions", type=int, default=1)

    sub.add_parser("sysperf", help="controller CPU/memory/network and mirroring latency")

    submit = sub.add_parser(
        "submit",
        help="submit a job through the Platform API v1 client (payloads by registered name)",
    )
    submit.add_argument("--name", required=True, help="job name")
    submit.add_argument(
        "--payload",
        default="noop",
        help="registered payload name (see register_payload; default: noop)",
    )
    submit.add_argument("--priority", type=float, default=0.0, help="scheduling priority")
    submit.add_argument("--timeout", type=float, default=3600.0, help="job timeout in seconds")
    submit.add_argument(
        "--vantage-point", default=None, help="pin the job to one vantage point"
    )
    submit.add_argument("--device", default=None, help="pin the job to one device serial")
    submit.add_argument(
        "--execution",
        default="push",
        choices=("push", "agent"),
        help="'agent' keeps the job out of push dispatch so a pulling "
        "agent daemon claims it (default: push)",
    )
    submit.add_argument(
        "--connector",
        default=None,
        help="with --execution agent: device connector type the job needs "
        "(default: fake)",
    )
    submit.add_argument(
        "--device-count",
        type=int,
        default=1,
        help="with --execution agent: device slots the job claims "
        "all-or-nothing under one lease (default: 1)",
    )
    submit.add_argument(
        "--no-run",
        action="store_true",
        help="leave the job queued instead of draining the queue before exiting "
        "(useful with --state-dir: a later run recovers and executes it)",
    )

    status = sub.add_parser(
        "status", help="platform status via the API (queue depth, orphaned jobs, policy)"
    )
    status.add_argument(
        "--jobs", action="store_true", help="also list every known job with its state"
    )

    cancel = sub.add_parser("cancel", help="cancel a queued or running job via the API")
    cancel.add_argument("--job-id", type=int, required=True, help="id of the job to cancel")

    sub.add_parser("fleet", help="list vantage points and device slots via the API")

    watch = sub.add_parser(
        "watch",
        help="stream a job's dispatch.* events (API v2 job.watch, no polling)",
    )
    watch.add_argument("--job-id", type=int, required=True, help="id of the job to watch")

    approve = sub.add_parser(
        "approve", help="approve a pending pipeline-change job (admin, API v2)"
    )
    approve.add_argument("--job-id", type=int, required=True)

    reject = sub.add_parser(
        "reject", help="reject a pending pipeline-change job (admin, API v2)"
    )
    reject.add_argument("--job-id", type=int, required=True)
    reject.add_argument("--reason", default="", help="recorded on the job for its owner")

    grant = sub.add_parser(
        "grant", help="grant credit device-hours to an account (admin, API v2)"
    )
    grant.add_argument("--owner", required=True, help="credit account owner")
    grant.add_argument("--amount", type=float, required=True, help="device-hours to add")
    grant.add_argument("--note", default="", help="audit note on the ledger entry")

    register_vp = sub.add_parser(
        "register-vp",
        help="register a new vantage point over the API (admin, API v2)",
    )
    register_vp.add_argument("--name", required=True, help="node identifier (DNS label)")
    register_vp.add_argument("--institution", required=True)
    register_vp.add_argument("--devices", type=int, default=1, help="test device count")
    register_vp.add_argument(
        "--profile",
        default="samsung-j7-duo",
        help="built-in device hardware profile (e.g. samsung-j7-duo, google-pixel-3a)",
    )

    report = sub.add_parser(
        "report",
        help="operations report folded from the platform's event-sourced "
        "records: owner utilisation, queue waits, device health (API v2)",
    )
    report.add_argument(
        "--gateway",
        default=None,
        metavar="HOST:PORT",
        help="query a live gateway instead of replaying --state-dir locally",
    )
    report.add_argument(
        "--cert-dir",
        default=None,
        metavar="DIR",
        help="with --gateway: trust the platform wildcard material under "
        "DIR and connect over TLS (pair of 'serve --tls --cert-dir')",
    )
    report.add_argument(
        "--username",
        default="experimenter",
        help="account to query as (non-admins see fleet aggregates plus "
        "their own owner row; use admin for the full owners table)",
    )
    report.add_argument(
        "--token",
        default=None,
        help="account token (defaults to the bootstrap '<username>-token')",
    )
    report.add_argument(
        "--owner", default=None, help="narrow the owners table to one account"
    )
    report.add_argument(
        "--bucket-s",
        type=float,
        default=None,
        help="also render the fleet throughput timeseries at this bucket size",
    )

    metrics = sub.add_parser(
        "metrics",
        help="render the platform's telemetry registry as Prometheus-style "
        "text (gateway loop, dispatcher, executor, journal)",
    )
    metrics.add_argument(
        "--gateway",
        default=None,
        metavar="HOST:PORT",
        help="scrape a live gateway instead of a local --state-dir platform",
    )
    metrics.add_argument(
        "--cert-dir",
        default=None,
        metavar="DIR",
        help="with --gateway: trust the platform wildcard material under "
        "DIR and connect over TLS",
    )
    metrics.add_argument(
        "--username", default="experimenter", help="account to scrape as"
    )
    metrics.add_argument(
        "--token",
        default=None,
        help="account token (defaults to the bootstrap '<username>-token')",
    )
    metrics.add_argument(
        "--prefix",
        default=None,
        help="only families whose name starts with PREFIX (e.g. gateway_)",
    )

    agent = sub.add_parser(
        "agent",
        help="run a vantage-point agent daemon: long-poll the server for "
        "matching jobs, execute them through a device connector, report "
        "results (exactly-once via a local outbox journal)",
    )
    agent.add_argument(
        "--gateway",
        default=None,
        metavar="HOST:PORT",
        help="pull work from a live gateway instead of a local --state-dir "
        "platform",
    )
    agent.add_argument(
        "--cert-dir",
        default=None,
        metavar="DIR",
        help="with --gateway: trust the platform wildcard material under "
        "DIR and connect over TLS (pair of 'serve --tls --cert-dir')",
    )
    agent.add_argument(
        "--username",
        default="experimenter",
        help="account the agent authenticates as (needs run_job)",
    )
    agent.add_argument(
        "--token",
        default=None,
        help="account token (defaults to the bootstrap '<username>-token')",
    )
    agent.add_argument(
        "--agent-id",
        default=None,
        help="stable agent identity (default: agent-<hostname>)",
    )
    agent.add_argument(
        "--connector",
        default="fake",
        help="device connector type to execute jobs with "
        "(noprovision/fake/multi, or any registered type)",
    )
    agent.add_argument(
        "--vantage-point",
        default=None,
        help="bind the agent to one vantage point's devices",
    )
    agent.add_argument(
        "--tags",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="capability tag on the agent record (repeatable)",
    )
    agent.add_argument(
        "--outbox",
        default=None,
        metavar="FILE",
        help="journal path backing crash recovery and exactly-once uploads "
        "(default: ./<agent-id>-outbox.jsonl)",
    )
    agent.add_argument(
        "--poll-wait-s",
        type=float,
        default=2.0,
        help="server-side long-poll wait per cycle (default: 2)",
    )
    agent.add_argument(
        "--lease-ttl-s",
        type=float,
        default=30.0,
        help="claim lease TTL; renewed between connector phases (default: 30)",
    )
    agent.add_argument(
        "--once",
        action="store_true",
        help="run a single poll→claim→execute→report cycle and exit",
    )
    agent.add_argument(
        "--duration-s",
        type=float,
        default=None,
        help="stop after this many wall-clock seconds (default: run until ^C)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve the JSON-lines API gateway (optionally TLS) until interrupted",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="0 picks a free port")
    serve.add_argument(
        "--tls",
        action="store_true",
        help="wrap the gateway in TLS using wildcard material under --cert-dir "
        "(minted with openssl on first use); the paper mandates HTTPS-only",
    )
    serve.add_argument(
        "--cert-dir",
        default=None,
        metavar="DIR",
        help="directory holding (or receiving) wildcard.pem/wildcard.key",
    )
    serve.add_argument(
        "--duration-s",
        type=float,
        default=None,
        help="stop after this many wall-clock seconds (default: run until ^C)",
    )
    serve.add_argument(
        "--shard-id",
        default=None,
        metavar="ID",
        help="serve as one federation shard: mint job ids on the lane "
        "selected by --shard-index/--shard-count and stamp ID into "
        "journal snapshots and v2 server.status",
    )
    serve.add_argument(
        "--shard-index",
        type=int,
        default=0,
        help="this shard's lane (0-based; requires --shard-id)",
    )
    serve.add_argument(
        "--shard-count",
        type=int,
        default=1,
        help="total lanes in the federation (requires --shard-id)",
    )

    federate = sub.add_parser(
        "federate",
        help="serve N access-server shards behind one scatter-gather "
        "gateway speaking unmodified Platform API v2",
    )
    federate.add_argument(
        "--shards", type=int, default=2, help="shard count (fixes the lane space)"
    )
    federate.add_argument("--host", default="127.0.0.1")
    federate.add_argument("--port", type=int, default=0, help="0 picks a free port")
    federate.add_argument(
        "--tls",
        action="store_true",
        help="wrap the router gateway in TLS using wildcard material under "
        "--cert-dir (minted with openssl on first use)",
    )
    federate.add_argument(
        "--cert-dir",
        default=None,
        metavar="DIR",
        help="directory holding (or receiving) wildcard.pem/wildcard.key",
    )
    federate.add_argument(
        "--state-root",
        default=None,
        metavar="DIR",
        help="journal each shard under DIR/shard-K (also where shard.add "
        "recovers a restarted shard from)",
    )
    federate.add_argument(
        "--duration-s",
        type=float,
        default=None,
        help="stop after this many wall-clock seconds (default: run until ^C)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run a chaos soak: scripted faults against a live platform, "
        "then check every invariant (exit 1 on violation)",
    )
    chaos.add_argument(
        "--scenario",
        default="kitchen-sink",
        metavar="NAME|@FILE",
        help="canned scenario name, @path to a scenario JSON script, or "
        "'none' for a fault-free baseline (default: kitchen-sink)",
    )
    chaos.add_argument(
        "--jobs", type=int, default=10_000, help="jobs to submit (default: 10000)"
    )
    chaos.add_argument(
        "--batch",
        type=int,
        default=None,
        help="jobs per one-second submission wave (default: jobs/100, min 50)",
    )
    chaos.add_argument(
        "--agents", type=int, default=1, help="pull-mode agent daemons (default: 1)"
    )
    chaos.add_argument(
        "--vantage-points", type=int, default=2, help="vantage points (default: 2)"
    )
    chaos.add_argument(
        "--devices", type=int, default=2, help="devices per vantage point (default: 2)"
    )
    chaos.add_argument(
        "--credits",
        action="store_true",
        help="enable the credit system and check ledger conservation too",
    )
    chaos.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the canned scenario names and exit",
    )
    return parser


def _ops_platform(args):
    """The shared platform for the API-driven subcommands (submit/status/...)."""
    return build_default_platform(
        seed=args.seed,
        browsers=("chrome",),
        scheduling_policy=args.scheduling_policy,
        reservation_admission=args.reservation_admission,
        state_dir=args.state_dir,
        persistence=not args.no_persistence,
    )


def _job_row(view) -> dict:
    return {
        "job_id": view.job_id,
        "name": view.name,
        "owner": view.owner,
        "status": view.status,
        "priority": view.priority,
        "vantage_point": view.vantage_point or "-",
        "device": view.device_serial or "-",
    }


def _frame_row(frame) -> dict:
    return {
        "seq": frame.seq,
        "frame": frame.frame,
        "topic": frame.topic or "-",
        "t": round(frame.timestamp, 1),
        "detail": ", ".join(
            f"{key}={value}"
            for key, value in sorted(frame.payload.items())
            if key not in ("job_id", "job")
        )
        or "-",
    }


def _cmd_submit(args) -> str:
    platform = _ops_platform(args)
    client = platform.client()
    extra = {}
    if args.execution == "agent":
        extra = {
            "execution": "agent",
            "connector": args.connector or "fake",
            "device_count": args.device_count,
        }
    view = client.submit_job(
        args.name,
        args.payload,
        priority=args.priority,
        timeout_s=args.timeout,
        vantage_point=args.vantage_point,
        device_serial=args.device,
        **extra,
    )
    sections = [format_table([_job_row(view)], title="Submitted (Platform API v1)")]
    if args.execution == "agent":
        # Push dispatch will never take this job; it waits for an agent.
        sections.append(
            f"queued for agent pull (connector: {extra['connector']}, "
            f"devices: {extra['device_count']}) — run 'repro agent' to claim it"
        )
    elif not args.no_run:
        # Subscribe before dispatching, then stream the dispatch.* events —
        # the v2 replacement for polling job.status in a loop.
        watch = client.watch_job(view.job_id)
        platform.run_queue()
        frames = list(watch)
        if frames:
            sections.append(
                format_table([_frame_row(f) for f in frames], title="Dispatch events (job.watch)")
            )
        final = watch.final if watch.final is not None else client.job_status(view.job_id)
        results = client.job_results(view.job_id)
        row = _job_row(final)
        row["result"] = results.result if results.result is not None else (results.error or "-")
        sections.append(format_table([row], title="After dispatch"))
    return "\n\n".join(sections)


def _cmd_status(args) -> str:
    from repro.api.schemas import API_VERSION_V2

    platform = _ops_platform(args)
    client = platform.client()
    # v2 envelope: journal health rides only on v2 so strict v1 clients
    # keep their frozen wire form.
    view = client.server_status(version=API_VERSION_V2)
    rows = [
        {"field": "api_version", "value": view.api_version},
        {"field": "shard_id", "value": view.shard_id or "-"},
        {"field": "vantage_points", "value": ", ".join(view.vantage_points) or "-"},
        {"field": "queued_jobs", "value": view.queued_jobs},
        {"field": "pending_approval", "value": view.pending_approval},
        {"field": "scheduling_policy", "value": view.scheduling_policy},
        {"field": "reservation_admission", "value": view.reservation_admission},
        {"field": "persistence", "value": view.persistence},
        {
            "field": "orphaned_jobs",
            "value": ", ".join(map(str, view.orphaned_jobs)) or "-",
        },
        {
            "field": "orphaned_vantage_points",
            "value": ", ".join(view.orphaned_vantage_points) or "-",
        },
    ]
    if view.journal is not None:
        rows.extend(
            [
                {"field": "journal_records", "value": view.journal.records},
                {
                    "field": "records_since_snapshot",
                    "value": view.journal.records_since_snapshot,
                },
                {
                    "field": "last_snapshot_at",
                    "value": view.journal.last_snapshot_at
                    if view.journal.last_snapshot_at is not None
                    else "-",
                },
            ]
        )
    sections = [format_table(rows, title="Platform status (Platform API)")]
    if args.jobs:
        job_rows = [_job_row(view) for view in client.list_jobs()]
        if job_rows:
            sections.append(format_table(job_rows, title="Jobs"))
    return "\n\n".join(sections)


def _cmd_cancel(args) -> str:
    platform = _ops_platform(args)
    client = platform.client()
    view = client.cancel_job(args.job_id)
    return format_table([_job_row(view)], title="Cancelled (Platform API v1)")


def _cmd_fleet(args) -> str:
    platform = _ops_platform(args)
    fleet = platform.client().fleet()
    rows = [
        {
            "vantage_point": vp.name,
            "institution": vp.institution,
            "dns_name": vp.dns_name,
            "device": device.serial,
            "busy": device.busy,
            "held_by": device.held_by or "-",
        }
        for vp in fleet.vantage_points
        for device in vp.devices
    ]
    return format_table(rows, title="Fleet (Platform API v1)")


def _cmd_watch(args) -> str:
    platform = _ops_platform(args)
    client = platform.client()
    watch = client.watch_job(args.job_id)
    initial = watch.initial
    sections = [format_table([_job_row(initial)], title=f"Watching job {args.job_id}")]
    platform.run_queue()
    frames = list(watch)
    if frames:
        sections.append(
            format_table([_frame_row(f) for f in frames], title="Dispatch events (job.watch)")
        )
    if watch.final is not None:
        sections.append(format_table([_job_row(watch.final)], title="Final state"))
    else:
        watch.close()
        sections.append(
            f"job {args.job_id} is still {client.job_status(args.job_id).status}; "
            "re-run watch after its constraints can be met"
        )
    return "\n\n".join(sections)


def _cmd_approve(args) -> str:
    platform = _ops_platform(args)
    admin = platform.client(username="admin")
    admin.approve_job(args.job_id)
    platform.run_queue()
    return format_table(
        [_job_row(admin.job_status(args.job_id))], title="Approved (Platform API v2)"
    )


def _cmd_reject(args) -> str:
    platform = _ops_platform(args)
    admin = platform.client(username="admin")
    view = admin.reject_job(args.job_id, reason=args.reason)
    return format_table([_job_row(view)], title="Rejected (Platform API v2)")


def _cmd_grant(args) -> str:
    platform = _ops_platform(args)
    if platform.access_server.credit_policy is None:
        platform.access_server.enable_credit_system()
    admin = platform.client(username="admin")
    balance = admin.grant_credits(args.owner, args.amount, note=args.note)
    rows = [
        {
            "owner": balance.owner,
            "balance_device_hours": balance.balance_device_hours,
            "contributes_hardware": balance.contributes_hardware,
            "transactions": balance.transaction_count,
        }
    ]
    return format_table(rows, title="Credits granted (Platform API v2)")


def _cmd_register_vp(args) -> str:
    platform = _ops_platform(args)
    admin = platform.client(username="admin")
    view = admin.register_vantage_point(
        args.name,
        args.institution,
        device_count=args.devices,
        device_profile=args.profile,
    )
    rows = [
        {
            "vantage_point": view.name,
            "institution": view.institution,
            "dns_name": view.dns_name,
            "device": device.serial,
            "busy": device.busy,
        }
        for device in view.devices
    ]
    return format_table(rows, title="Vantage point registered (Platform API v2)")


def _report_sections(view, timeseries=None) -> List[str]:
    """Render an AnalyticsReportView (and optional timeseries) as tables."""
    jobs = view.jobs
    summary = [
        {"field": "records_folded", "value": view.records_folded},
        {
            "field": "window",
            "value": f"{view.first_ts or 0.0:.1f} .. {view.last_ts or 0.0:.1f} s",
        },
        {"field": "submitted", "value": jobs.submitted},
        {"field": "completed", "value": jobs.completed},
        {"field": "failed", "value": jobs.failed},
        {"field": "cancelled", "value": jobs.cancelled},
        {"field": "queued_now", "value": jobs.queued},
        {"field": "running_now", "value": jobs.running},
        {"field": "pending_approval_now", "value": jobs.pending_approval},
        {"field": "requeues", "value": jobs.requeues},
        {"field": "reservations", "value": view.reservations.created},
        {
            "field": "reserved_device_hours",
            "value": round(view.reservations.booked_device_hours, 3),
        },
    ]
    sections = [format_table(summary, title="Fleet summary (analytics.report)")]
    if view.owners:
        sections.append(
            format_table(
                [
                    {
                        "owner": row.owner,
                        "submitted": row.submitted,
                        "completed": row.completed,
                        "failed": row.failed,
                        "cancelled": row.cancelled,
                        "device_s": round(row.device_seconds, 1),
                        "wait_s": round(row.queue_wait_s, 1),
                        "burned_dh": round(row.credits_burned_device_hours, 3),
                        "granted_dh": round(row.credits_granted_device_hours, 3),
                    }
                    for row in view.owners
                ],
                title="Owners — utilisation and credit burn",
            )
        )
    queue_rows = [
        {
            "metric": name,
            "samples": stats.samples,
            "mean_s": round(stats.mean_s, 2),
            "p50_s": round(stats.p50_s, 2),
            "p90_s": round(stats.p90_s, 2),
            "p99_s": round(stats.p99_s, 2),
            "max_s": round(stats.max_s, 2),
        }
        for name, stats in (("queue_wait", view.queue_wait), ("run_time", view.run_time))
    ]
    sections.append(format_table(queue_rows, title="Job flow percentiles"))
    if view.devices:
        sections.append(
            format_table(
                [
                    {
                        "vantage_point": row.vantage_point,
                        "device": row.device_serial,
                        "assignments": row.assignments,
                        "completed": row.completed,
                        "failed": row.failed,
                        "busy_s": round(row.busy_seconds, 1),
                        "failure_rate": round(row.failure_rate, 3),
                        "occupancy": round(row.occupancy, 3),
                    }
                    for row in view.devices
                ],
                title="Devices — occupancy and health",
            )
        )
    if timeseries is not None and timeseries.buckets:
        sections.append(
            format_table(
                [
                    {
                        "start_s": bucket.start_s,
                        "submitted": bucket.submitted,
                        "completed": bucket.completed,
                        "failed": bucket.failed,
                        "cancelled": bucket.cancelled,
                    }
                    for bucket in timeseries.buckets
                ],
                title=f"Fleet throughput ({timeseries.bucket_s:.0f} s buckets)",
            )
        )
    return sections


def _remote_or_local_client(args):
    """A client for ``--gateway HOST:PORT`` or a local ``--state-dir`` platform."""
    token = args.token if args.token is not None else f"{args.username}-token"
    if args.gateway is not None:
        from repro.api.client import BatteryLabClient
        from repro.api.gateway import JsonLinesTransport

        host, _, port = args.gateway.rpartition(":")
        if not host or not port.isdigit():
            raise SystemExit("--gateway expects HOST:PORT")
        tls_context = None
        if args.cert_dir is not None:
            from repro.accessserver.certificates import (
                client_tls_context,
                ensure_tls_material,
            )

            tls_context = client_tls_context(ensure_tls_material(args.cert_dir))
        return BatteryLabClient(
            JsonLinesTransport(host, int(port), tls_context=tls_context),
            args.username,
            token,
        )
    return _ops_platform(args).client(username=args.username, token=token)


def _cmd_report(args) -> str:
    client = _remote_or_local_client(args)
    with client:
        view = client.analytics_report(owner=args.owner)
        timeseries = (
            client.analytics_timeseries(args.bucket_s)
            if args.bucket_s is not None
            else None
        )
    return "\n\n".join(_report_sections(view, timeseries))


def _cmd_metrics(args) -> str:
    from repro.obs import render_snapshot

    client = _remote_or_local_client(args)
    with client:
        view = client.obs_metrics(prefix=args.prefix)
    text = render_snapshot(view.to_snapshot())
    if not text:
        return "# no metric families matched" + (
            f" prefix {args.prefix!r}" if args.prefix else ""
        )
    return text.rstrip("\n")


def _cmd_agent(args) -> str:
    import socket
    import time as wall

    from repro.agent import AgentDaemon
    from repro.api.errors import TransportApiError

    tags = {}
    for item in args.tags or ():
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise SystemExit("--tags expects KEY=VALUE")
        tags[key] = value
    agent_id = args.agent_id or f"agent-{socket.gethostname()}"
    outbox = args.outbox or f"{agent_id}-outbox.jsonl"
    client = _remote_or_local_client(args)
    daemon = AgentDaemon(
        client,
        agent_id,
        outbox,
        connector=args.connector,
        vantage_point=args.vantage_point,
        tags=tags,
        lease_ttl_s=args.lease_ttl_s,
    )
    lines = []
    completed = []
    with client:
        view = daemon.register()
        lines.append(
            f"agent {view.agent_id} registered "
            f"(connectors: {', '.join(view.connectors)}; outbox: {outbox})"
        )
        resumed = daemon.resume()
        if resumed:
            lines.append(f"resumed from outbox; settled jobs: {resumed}")
        deadline = (
            wall.monotonic() + args.duration_s if args.duration_s is not None else None
        )
        try:
            while True:
                try:
                    job_id = daemon.run_once(wait_s=args.poll_wait_s)
                except TransportApiError:
                    wall.sleep(1.0)
                    continue
                if job_id is not None:
                    completed.append(job_id)
                if args.once:
                    break
                if deadline is not None and wall.monotonic() >= deadline:
                    break
                if job_id is None and args.poll_wait_s <= 0:
                    wall.sleep(0.2)
        except KeyboardInterrupt:
            lines.append("interrupted; draining")
    lines.append(
        f"settled jobs: {completed}" if completed else "no jobs settled"
    )
    return "\n".join(lines)


def _cmd_serve(args) -> str:
    if args.tls and args.cert_dir is None:
        raise SystemExit("--tls requires --cert-dir DIR for the wildcard material")
    if args.shard_id is not None:
        from repro.federation import build_shard

        # A shard is assembled in federation order: lane first, then the
        # journal (recovery must claim ids into the lane allocator), then
        # analytics — _ops_platform cannot express that.
        if not (0 <= args.shard_index < args.shard_count):
            raise SystemExit(
                f"--shard-index {args.shard_index} is outside the lane space "
                f"of --shard-count {args.shard_count}"
            )
        shard = build_shard(
            args.shard_id,
            args.shard_index,
            args.shard_count,
            state_dir=None if args.no_persistence else args.state_dir,
            seed=args.seed,
            scheduling_policy=args.scheduling_policy,
            reservation_admission=args.reservation_admission,
        )
        platform = shard.platform
    else:
        platform = _ops_platform(args)
    gateway = platform.serve_gateway(
        host=args.host,
        port=args.port,
        tls_cert_dir=args.cert_dir if args.tls else None,
    )
    host, port = gateway.address
    scheme = "tls" if gateway.tls_enabled else "plaintext"
    print(f"serving Platform API gateway on {host}:{port} ({scheme}); ^C to stop")
    deadline = None if args.duration_s is None else time.time() + args.duration_s
    served = 0
    try:
        while deadline is None or time.time() < deadline:
            # Drive the simulation so remotely submitted jobs execute; the
            # gateway threads only enqueue work.  The router lock keeps a
            # request landing mid-dispatch from racing the single-threaded
            # simulation state.
            with gateway.router_lock:
                served += len(platform.run_queue())
                platform.context.run_for(1.0)
            time.sleep(0.05)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        gateway.stop()
    return f"gateway stopped after executing {served} job(s)"


def _cmd_federate(args) -> str:
    from repro.api.gateway import ApiGateway
    from repro.federation import (
        FederationRouter,
        ShardState,
        build_federation_shards,
        build_shard,
    )

    if args.tls and args.cert_dir is None:
        raise SystemExit("--tls requires --cert-dir DIR for the wildcard material")
    if args.shards < 1:
        raise SystemExit("--shards must be at least 1")
    shards = build_federation_shards(
        args.shards,
        state_root=args.state_root,
        seed=args.seed,
        scheduling_policy=args.scheduling_policy,
        reservation_admission=args.reservation_admission,
    )

    def factory(shard_id: str, index: int, lane_count: int):
        state_dir = None
        if args.state_root is not None:
            import os

            state_dir = os.path.join(args.state_root, shard_id)
        return build_shard(
            shard_id,
            index,
            lane_count,
            state_dir=state_dir,
            seed=args.seed,
            scheduling_policy=args.scheduling_policy,
            reservation_admission=args.reservation_admission,
        )

    router = FederationRouter(shards, shard_factory=factory)
    tls_context = None
    if args.tls:
        from repro.accessserver.certificates import (
            ensure_tls_material,
            server_tls_context,
        )

        # One wildcard certificate fronts the whole federation: clients
        # talk to the router, never to a shard directly.
        material = ensure_tls_material(
            args.cert_dir, certificate=shards[0].server.wildcard_certificate
        )
        tls_context = server_tls_context(material)
    gateway = ApiGateway(
        router, host=args.host, port=args.port, tls_context=tls_context
    )
    gateway.start()
    host, port = gateway.address
    scheme = "tls" if gateway.tls_enabled else "plaintext"
    print(
        f"serving federated Platform API ({args.shards} shard(s)) on "
        f"{host}:{port} ({scheme}); ^C to stop"
    )
    deadline = None if args.duration_s is None else time.time() + args.duration_s
    served = 0
    try:
        while deadline is None or time.time() < deadline:
            # Drive every attached shard's simulation under the gateway's
            # exclusive lock — same discipline as single-server serve.
            with gateway.router_lock:
                for shard in router.shards:
                    if shard.state is ShardState.DETACHED:
                        continue
                    served += len(shard.platform.run_queue())
                    shard.platform.context.run_for(1.0)
            time.sleep(0.05)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        gateway.stop()
    return f"federation gateway stopped after executing {served} job(s)"


def _cmd_quickstart(args) -> str:
    platform = build_default_platform(
        seed=args.seed,
        browsers=("chrome",),
        scheduling_policy=args.scheduling_policy,
        reservation_admission=args.reservation_admission,
        state_dir=args.state_dir,
        persistence=not args.no_persistence,
    )
    api = platform.api()
    device_id = api.list_devices()[0]
    api.power_monitor()
    api.set_voltage(3.85)
    trace = api.measure(device_id, duration=30.0, label="idle")
    rows = [
        {
            "device": device_id,
            "duration_s": round(trace.duration_s, 1),
            "median_ma": round(trace.median_current_ma(), 1),
            "discharge_mah": round(trace.discharge_mah(), 3),
        }
    ]
    return format_table(rows, title="Quickstart — 30 s idle measurement")


def _cmd_locations(args) -> str:
    rows = [
        {
            "key": location.key,
            "exit": f"{location.country} / {location.city}",
            "download_mbps": location.download_mbps,
            "upload_mbps": location.upload_mbps,
            "latency_ms": location.latency_ms,
        }
        for location in PROTONVPN_LOCATIONS.values()
    ]
    return format_table(rows, title="Built-in ProtonVPN locations (Table 2 profiles)")


def _cmd_figure2(args) -> str:
    study = run_accuracy_experiment(
        duration_s=args.duration, sample_rate_hz=args.sample_rate, seed=args.seed
    )
    return format_table(study.rows(), title="Figure 2 — current drawn per scenario")


def _cmd_figure3(args) -> str:
    study = run_browser_study(
        repetitions=args.repetitions,
        scrolls_per_page=args.scrolls,
        scroll_interval_s=1.5,
        sample_rate_hz=50.0,
        seed=args.seed,
    )
    table = format_table(study.discharge_rows(), title="Figure 3 — battery discharge per browser")
    cpu = format_table(study.device_cpu_rows(), title="Figure 4 — device CPU utilisation")
    return table + "\n\n" + cpu


def _cmd_figure5(args) -> str:
    result = run_controller_load_experiment(
        repetitions=args.repetitions, scrolls_per_page=12, sample_rate_hz=100.0, seed=args.seed
    )
    return format_table(result.rows(), title="Figure 5 — controller CPU utilisation")


def _cmd_table2(args) -> str:
    rows = run_vpn_speedtests(probes_per_location=3, seed=args.seed)
    return format_table(rows, title="Table 2 — ProtonVPN statistics")


def _cmd_figure6(args) -> str:
    study = run_vpn_energy_study(
        repetitions=args.repetitions, scrolls_per_page=8, sample_rate_hz=50.0, seed=args.seed
    )
    return format_table(study.rows(), title="Figure 6 — discharge per VPN location")


def _cmd_sysperf(args) -> str:
    result = run_system_performance(scrolls_per_page=12, sample_rate_hz=100.0, seed=args.seed)
    return format_table(result.rows(), title="System performance (Section 4.2)")


def _cmd_dispatch_bench(args) -> str:
    """Queue a synthetic fleet-scale workload and time pure dispatch decisions."""
    from repro.accessserver.jobs import Job, JobConstraints, JobSpec
    from repro.accessserver.scheduler import JobScheduler

    scheduler = JobScheduler(
        policy=args.scheduling_policy, reservation_admission=args.reservation_admission
    )
    # More vantage points than devices would leave some nodes unregistered
    # while constrained jobs still referenced them (silently skewing the
    # throughput figure), so clamp to one device per vantage point minimum.
    vantage_points = max(1, min(args.vantage_points, args.devices))
    for index in range(args.devices):
        scheduler.register_device(
            f"node{index % vantage_points:02d}", f"dev{index // vantage_points:02d}"
        )
    for index in range(args.jobs):
        constraints = JobConstraints()
        if index % 3 == 0:
            constraints = JobConstraints(vantage_point=f"node{index % vantage_points:02d}")
        spec = JobSpec(
            name=f"job-{index}",
            owner=f"owner{index % 5}",
            run=lambda ctx: None,
            constraints=constraints,
            priority=float(index % 4),
        )
        scheduler.submit(Job(spec=spec), now=0.0)

    assignments = 0
    batches = 0
    started = time.perf_counter()
    while True:
        batch = scheduler.dispatch_batch(now=0.0)
        if not batch:
            break
        batches += 1
        assignments += len(batch)
        for assignment in batch:
            assignment.job.mark_completed(0.0, None)
            scheduler.release(assignment.job)
    elapsed = time.perf_counter() - started
    rows = [
        {
            "policy": scheduler.policy.name,
            "devices": args.devices,
            "jobs": args.jobs,
            "batches": batches,
            "assignments": assignments,
            "elapsed_ms": round(elapsed * 1000.0, 2),
            "jobs_per_s": round(assignments / elapsed, 0) if elapsed > 0 else float("inf"),
        }
    ]
    return format_table(rows, title="Batch dispatch throughput (synthetic fleet)")


def _cmd_chaos(args) -> str:
    """Run one chaos soak and render its metrics + invariant verdicts.

    The seed every random choice drew from is printed so any run can be
    reproduced exactly with ``--seed``.  A failed invariant raises
    :class:`~repro.chaos.invariants.InvariantViolation` (an
    ``AssertionError``), which :func:`main` turns into exit code 1.
    """
    from repro.chaos import (
        SoakConfig,
        SoakHarness,
        Scenario,
        canned_scenario_names,
    )

    if args.list_scenarios:
        return "\n".join(canned_scenario_names())
    scenario = args.scenario
    if scenario == "none":
        scenario = None
    elif scenario.startswith("@"):
        with open(scenario[1:], "r", encoding="utf-8") as handle:
            scenario = Scenario.from_json(handle.read())
    batch = args.batch if args.batch is not None else max(50, args.jobs // 100)
    config = SoakConfig(
        jobs=args.jobs,
        seed=args.seed,
        batch=batch,
        agents=args.agents,
        vantage_points=args.vantage_points,
        devices_per_vp=args.devices,
        scenario=scenario,
        state_dir=args.state_dir if not args.no_persistence else None,
        credits=args.credits,
    )
    result = SoakHarness(config).run()
    if not result.ok:
        # Show the metrics before the violation lands as exit code 1.
        print(result.summary())
        result.report.raise_on_failure()
    return result.summary()


_COMMANDS = {
    "quickstart": _cmd_quickstart,
    "locations": _cmd_locations,
    "figure2": _cmd_figure2,
    "figure3": _cmd_figure3,
    "figure5": _cmd_figure5,
    "table2": _cmd_table2,
    "figure6": _cmd_figure6,
    "sysperf": _cmd_sysperf,
    "dispatch-bench": _cmd_dispatch_bench,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "cancel": _cmd_cancel,
    "fleet": _cmd_fleet,
    "watch": _cmd_watch,
    "approve": _cmd_approve,
    "reject": _cmd_reject,
    "grant": _cmd_grant,
    "register-vp": _cmd_register_vp,
    "report": _cmd_report,
    "metrics": _cmd_metrics,
    "agent": _cmd_agent,
    "serve": _cmd_serve,
    "federate": _cmd_federate,
    "chaos": _cmd_chaos,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.api.errors import ApiError

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None:
        from repro.obs import configure_logging

        try:
            configure_logging(args.log_level)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    handler = _COMMANDS[args.command]
    try:
        print(handler(args))
    except ApiError as error:
        # The API subcommands speak the typed v1 taxonomy; operators get
        # the stable code and message, not a traceback.
        print(f"error [{error.code}]: {error.message}", file=sys.stderr)
        return 1
    except AssertionError as violation:
        # A chaos run's invariant violation: the metrics were already
        # printed; the verdicts land on stderr with a failing exit code.
        print(str(violation), file=sys.stderr)
        return 1
    except ValueError as error:
        # Bad operator input (unknown scenario name, malformed scenario
        # file, invalid soak sizing): a clean message, not a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
