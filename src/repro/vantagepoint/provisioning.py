"""Vantage point provisioning ("How to Join?", Section 3.4).

New BatteryLab members follow a fixed procedure: set up the recommended
hardware, make the controller publicly reachable on the platform's ports
(2222 for SSH from the access server, 8080 for the GUI backend, 6081 for
noVNC), pick a human-readable identifier that becomes a ``batterylab.dev``
DNS name, flash the controller with the BatteryLab Raspbian image, grant the
access server public-key SSH access, and connect at least one Android
device.  :func:`provision_vantage_point` walks those steps against the
simulated controller and reports which ones passed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.network.ssh import SshKeyPair
from repro.vantagepoint.controller import VantagePointController

#: Ports the tutorial requires to be publicly reachable, and their role.
REQUIRED_PORTS: Dict[int, str] = {
    2222: "SSH (access server only)",
    8080: "GUI backend",
    6081: "noVNC",
}

#: Raspbian release the BatteryLab controller image is built from.
IMAGE_VERSION = "raspbian-stretch-2019-04"


class ProvisioningError(RuntimeError):
    """Raised when a mandatory join step fails."""


@dataclass
class JoinRequest:
    """What a prospective member submits when joining the platform."""

    institution: str
    node_identifier: str
    contact_email: str
    open_ports: List[int] = field(default_factory=lambda: sorted(REQUIRED_PORTS))
    public_address: str = "0.0.0.0"


@dataclass
class ProvisioningStep:
    name: str
    passed: bool
    detail: str = ""


@dataclass
class ProvisioningReport:
    """Outcome of the join procedure for one vantage point."""

    node_identifier: str
    dns_name: str
    image_version: str
    steps: List[ProvisioningStep] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return all(step.passed for step in self.steps)

    def failed_steps(self) -> List[ProvisioningStep]:
        return [step for step in self.steps if not step.passed]


def provision_vantage_point(
    controller: VantagePointController,
    request: JoinRequest,
    access_server_key: SshKeyPair,
    access_server_address: str,
    dns_registry=None,
    certificate=None,
) -> ProvisioningReport:
    """Run the full join procedure for one new vantage point.

    Parameters
    ----------
    controller:
        The member's (already assembled) controller.
    request:
        The join request describing the institution and its connectivity.
    access_server_key / access_server_address:
        The access server's SSH identity, to be authorized on the controller.
    dns_registry:
        Optional object with ``register(name, address)`` — the platform's
        Route53-style zone; the node becomes ``<identifier>.batterylab.dev``.
    certificate:
        Optional wildcard certificate object with a ``pem`` attribute to be
        deployed on the controller for the HTTPS GUI.
    """
    dns_name = f"{request.node_identifier}.batterylab.dev"
    report = ProvisioningReport(
        node_identifier=request.node_identifier,
        dns_name=dns_name,
        image_version=IMAGE_VERSION,
    )

    # Step 1: port reachability.
    missing = sorted(set(REQUIRED_PORTS) - set(request.open_ports))
    report.steps.append(
        ProvisioningStep(
            name="port-reachability",
            passed=not missing,
            detail="all required ports reachable"
            if not missing
            else f"unreachable ports: {missing}",
        )
    )

    # Step 2: DNS registration.
    if dns_registry is not None:
        dns_registry.register(dns_name, request.public_address)
        report.steps.append(
            ProvisioningStep(name="dns-registration", passed=True, detail=dns_name)
        )
    else:
        report.steps.append(
            ProvisioningStep(
                name="dns-registration", passed=False, detail="no DNS registry provided"
            )
        )

    # Step 3: flash the controller image (modelled as recording the version).
    report.steps.append(
        ProvisioningStep(name="flash-image", passed=True, detail=IMAGE_VERSION)
    )

    # Step 4: grant the access server SSH access (pubkey + IP white-list).
    controller.authorize_access_server(access_server_key, access_server_address)
    granted = access_server_key.fingerprint in controller.ssh_server.authorized_fingerprints()
    report.steps.append(
        ProvisioningStep(
            name="ssh-authorization",
            passed=granted,
            detail=f"key {access_server_key.fingerprint[:16]}... authorized",
        )
    )

    # Step 5: deploy the wildcard certificate for the HTTPS GUI.
    if certificate is not None:
        controller.ssh_server._write_file("/etc/batterylab/wildcard.pem", certificate.pem)
        report.steps.append(
            ProvisioningStep(name="certificate-deployment", passed=True, detail=certificate.common_name)
        )
    else:
        report.steps.append(
            ProvisioningStep(
                name="certificate-deployment",
                passed=False,
                detail="no wildcard certificate provided",
            )
        )

    # Step 6: at least one Android device must be connected.
    android_serials = [
        serial
        for serial in controller.list_devices()
        if controller.device(serial).profile.os_name == "android"
    ]
    report.steps.append(
        ProvisioningStep(
            name="android-device-connected",
            passed=bool(android_serials),
            detail=", ".join(android_serials) if android_serials else "no Android device found",
        )
    )

    return report
