"""Vantage point substrate.

A BatteryLab vantage point (Figure 1(b) in the paper) is a local battery
testbed contributed by a member institution: a Raspberry Pi controller, a
Monsoon power monitor, one or more test devices, a relay-based circuit
switch, and a WiFi power socket.  This package models every one of those
components plus the provisioning ("How to Join?", Section 3.4) procedure:

* :class:`~repro.vantagepoint.gpio.GpioInterface` — the controller's GPIO pins;
* :class:`~repro.vantagepoint.relay.RelayCircuit` — battery bypass switching
  between multiple devices and the power monitor;
* :class:`~repro.vantagepoint.usb.UsbHub` — per-port USB power control (uhubctl);
* :class:`~repro.vantagepoint.wifi_ap.WifiAccessPoint` — the controller's AP in
  NAT or bridge mode;
* :class:`~repro.vantagepoint.bluetooth.BluetoothHidKeyboard` — the virtual
  keyboard automation channel;
* :class:`~repro.vantagepoint.power_socket.MerossPowerSocket` — mains control
  of the power monitor;
* :class:`~repro.vantagepoint.controller.VantagePointController` — the
  Raspberry Pi that ties everything together;
* :mod:`~repro.vantagepoint.provisioning` — the join / flashing workflow.
"""

from repro.vantagepoint.bluetooth import BluetoothHidKeyboard, BluetoothPairingError
from repro.vantagepoint.controller import ControllerSpec, RASPBERRY_PI_3B_PLUS, VantagePointController
from repro.vantagepoint.gpio import GpioInterface, PinMode
from repro.vantagepoint.power_socket import MerossPowerSocket
from repro.vantagepoint.provisioning import JoinRequest, ProvisioningReport, provision_vantage_point
from repro.vantagepoint.relay import RelayChannel, RelayCircuit, RelayError
from repro.vantagepoint.usb import UsbHub, UsbPort
from repro.vantagepoint.wifi_ap import ApMode, WifiAccessPoint

__all__ = [
    "BluetoothHidKeyboard",
    "BluetoothPairingError",
    "ControllerSpec",
    "RASPBERRY_PI_3B_PLUS",
    "VantagePointController",
    "GpioInterface",
    "PinMode",
    "MerossPowerSocket",
    "JoinRequest",
    "ProvisioningReport",
    "provision_vantage_point",
    "RelayChannel",
    "RelayCircuit",
    "RelayError",
    "UsbHub",
    "UsbPort",
    "ApMode",
    "WifiAccessPoint",
]
