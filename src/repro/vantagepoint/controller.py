"""Vantage point controller (Raspberry Pi).

The controller is "a Linux-based machine responsible for managing the
vantage point" (Section 3.2): it manages connectivity with the test devices
(USB, its own WiFi access point, Bluetooth), drives the relay circuit and
the power monitor, provides device mirroring, and is remotely reachable by
the access server over SSH.  The paper deploys a Raspberry Pi 3B+.

Besides the control plane, the controller model keeps the resource accounts
the paper's "System Performance" analysis needs: CPU samples (Figure 5 —
about 25% flat while only polling the Monsoon, ~75% median with mirroring),
memory utilisation (below 20% of the Pi's 1 GB, +6% with mirroring) and
upload traffic (about 32 MB for a ~7 minute mirrored test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.device.adb import AdbServer, AdbTransport
from repro.device.android import AndroidDevice
from repro.device.ios import IOSDevice
from repro.mirroring.session import MirroringSession
from repro.network.link import NetworkLink
from repro.network.path import NetworkPath
from repro.network.ssh import SshKeyPair, SshServer
from repro.network.vpn import VpnClient
from repro.powermonitor.monsoon import MonsoonHVPM
from repro.simulation.entity import Entity, SimulationContext
from repro.simulation.process import PeriodicProcess
from repro.vantagepoint.bluetooth import BluetoothHidKeyboard
from repro.vantagepoint.gpio import GpioInterface
from repro.vantagepoint.power_socket import MerossPowerSocket
from repro.vantagepoint.relay import RelayCircuit
from repro.vantagepoint.usb import UsbHub
from repro.vantagepoint.wifi_ap import WifiAccessPoint

AnyDevice = Union[AndroidDevice, IOSDevice]


class ControllerError(RuntimeError):
    """Raised for unknown devices or invalid controller operations."""


@dataclass(frozen=True)
class ControllerSpec:
    """Hardware description of the controller machine."""

    model: str
    cpu_cores: int
    memory_mb: int
    has_wifi: bool = True
    has_ethernet: bool = True
    gpio_pins: int = 40


RASPBERRY_PI_3B_PLUS = ControllerSpec(
    model="Raspberry Pi 3B+",
    cpu_cores=4,
    memory_mb=1024,
)
"""The controller used by the paper's first vantage point."""


@dataclass
class ControllerCpuSample:
    timestamp: float
    total_percent: float
    monsoon_percent: float
    mirroring_percent: float


class VantagePointController(Entity):
    """The Raspberry Pi managing one BatteryLab vantage point.

    Parameters
    ----------
    context:
        Simulation context.
    hostname:
        Public DNS name of the controller (``node1.batterylab.dev``).
    uplink:
        The vantage point's Internet uplink.
    spec:
        Controller hardware spec (defaults to the Raspberry Pi 3B+).
    home_region:
        Content region when no VPN tunnel is active.
    """

    #: CPU cost of pulling Monsoon readings at the highest frequency.
    MONSOON_POLL_CPU_PERCENT = 21.0
    #: Background load of Raspbian plus the BatteryLab software suite.
    BASE_CPU_PERCENT = 4.0
    #: Resident memory of the OS and BatteryLab suite, in MB.
    BASE_MEMORY_MB = 128.0

    def __init__(
        self,
        context: SimulationContext,
        hostname: str,
        uplink: Optional[NetworkLink] = None,
        spec: ControllerSpec = RASPBERRY_PI_3B_PLUS,
        home_region: str = "GB",
        ssid: str = "batterylab",
        cpu_sample_period: float = 1.0,
    ) -> None:
        super().__init__(context, f"controller:{hostname}")
        self._hostname = hostname
        self._spec = spec
        self._uplink = uplink or NetworkLink(
            name=f"{hostname}-uplink", downlink_mbps=95.0, uplink_mbps=40.0, latency_ms=6.0
        )
        self._home_region = home_region
        self.gpio = GpioInterface(spec.gpio_pins)
        self.usb_hub = UsbHub(port_count=4)
        self.wifi_ap = WifiAccessPoint(ssid=ssid)
        self.keyboard = BluetoothHidKeyboard(adapter_name=f"{hostname}-kbd")
        self.vpn = VpnClient()
        self.ssh_server = SshServer(
            host=hostname, port=2222, command_handler=self.handle_command, clock=lambda: self.now
        )
        self._monitor: Optional[MonsoonHVPM] = None
        self._power_socket: Optional[MerossPowerSocket] = None
        self.relay = RelayCircuit(self.gpio)
        self._devices: Dict[str, AnyDevice] = {}
        self._adb_servers: Dict[str, AdbServer] = {}
        self._mirroring: Dict[str, MirroringSession] = {}
        self._cpu_samples: List[ControllerCpuSample] = []
        self._job_upload_bytes = 0
        self._cpu_process = PeriodicProcess(
            context.scheduler, cpu_sample_period, self._cpu_tick, label=f"{self.name}:cpu"
        )
        self._cpu_process.start(initial_delay=cpu_sample_period)

    # -- identity / attachments ------------------------------------------------------
    @property
    def hostname(self) -> str:
        return self._hostname

    @property
    def spec(self) -> ControllerSpec:
        return self._spec

    @property
    def uplink(self) -> NetworkLink:
        return self._uplink

    @property
    def monitor(self) -> Optional[MonsoonHVPM]:
        return self._monitor

    @property
    def power_socket(self) -> Optional[MerossPowerSocket]:
        return self._power_socket

    def attach_monitor(
        self, monitor: MonsoonHVPM, power_socket: Optional[MerossPowerSocket] = None
    ) -> None:
        """Wire a power monitor (and optionally its mains socket) into the vantage point."""
        self._monitor = monitor
        self.relay.set_monitor(monitor)
        if power_socket is not None:
            self._power_socket = power_socket
            power_socket.attach_appliance(monitor)

    def network_path(self) -> NetworkPath:
        """The current end-to-end path test-device traffic follows."""
        return NetworkPath(self._uplink, vpn=self.vpn, home_region=self._home_region)

    # -- device management --------------------------------------------------------------
    def add_device(
        self,
        device: AnyDevice,
        usb_port: Optional[int] = None,
        pair_bluetooth: bool = True,
        wire_relay: bool = True,
    ) -> None:
        """Connect a test device: USB port, WiFi association, Bluetooth pairing, relay channel."""
        serial = device.serial
        if serial in self._devices:
            raise ControllerError(f"device {serial!r} is already managed by this controller")
        self._devices[serial] = device
        self.usb_hub.attach_device(device, usb_port)
        self.wifi_ap.associate(device)
        if pair_bluetooth:
            self.keyboard.pair(device)
        if wire_relay:
            self.relay.add_channel(device)
        if isinstance(device, AndroidDevice):
            self._adb_servers[serial] = AdbServer(device)
        self.log("device added", serial=serial, model=device.profile.model)

    def remove_device(self, serial: str) -> None:
        device = self._require_device(serial)
        if serial in self._mirroring and self._mirroring[serial].active:
            self._mirroring[serial].stop()
        self._mirroring.pop(serial, None)
        self.usb_hub.detach_device(serial)
        if self.wifi_ap.is_associated(serial):
            self.wifi_ap.disassociate(device)
        if serial in self.keyboard.paired_serials():
            self.keyboard.unpair(serial)
        self._adb_servers.pop(serial, None)
        del self._devices[serial]

    def _require_device(self, serial: str) -> AnyDevice:
        try:
            return self._devices[serial]
        except KeyError:
            raise ControllerError(f"unknown device {serial!r}") from None

    def device(self, serial: str) -> AnyDevice:
        return self._require_device(serial)

    def devices(self) -> List[AnyDevice]:
        return [self._devices[serial] for serial in sorted(self._devices)]

    def list_devices(self) -> List[str]:
        """ADB-style identifiers of the test devices at this vantage point."""
        return sorted(self._devices)

    def adb_server(self, serial: str) -> AdbServer:
        self._require_device(serial)
        server = self._adb_servers.get(serial)
        if server is None:
            raise ControllerError(f"device {serial!r} does not support ADB")
        return server

    def adb_connect(self, serial: str, transport: AdbTransport = AdbTransport.WIFI):
        """Open an ADB connection to a device over the requested transport."""
        return self.adb_server(serial).connect(transport)

    def execute_adb(
        self, serial: str, command: str, transport: AdbTransport = AdbTransport.WIFI
    ) -> str:
        """Run a single ADB command against a device (the ``execute_adb`` API)."""
        return self.adb_server(serial).execute(command, transport)

    # -- USB power (uhubctl) ----------------------------------------------------------------
    def set_device_usb_power(self, serial: str, powered: bool) -> None:
        self._require_device(serial)
        self.usb_hub.set_device_power(serial, powered)

    # -- battery switching --------------------------------------------------------------------
    def batt_switch(self, serial: str, bypass: bool) -> None:
        """(De)activate battery bypass for one device via the relay circuit."""
        self._require_device(serial)
        if bypass:
            self.relay.engage_bypass(serial)
        else:
            self.relay.release_bypass(serial)

    # -- power monitor control -------------------------------------------------------------------
    def set_power_monitor(self, on: bool) -> None:
        """Toggle the Monsoon's mains power through the WiFi socket."""
        if self._power_socket is None:
            raise ControllerError("no WiFi power socket is attached to this vantage point")
        if on:
            self._power_socket.turn_on()
        else:
            self._power_socket.turn_off()

    def set_voltage(self, voltage_v: float) -> None:
        if self._monitor is None:
            raise ControllerError("no power monitor is attached to this vantage point")
        self._monitor.set_vout(voltage_v)

    # -- mirroring --------------------------------------------------------------------------------
    def start_mirroring(self, serial: str, bitrate_mbps: float = 1.0):
        """Activate device mirroring: scrcpy for Android, AirPlay for iOS."""
        device = self._require_device(serial)
        session = self._mirroring.get(serial)
        if session is None or not session.active:
            if isinstance(device, AndroidDevice):
                session = MirroringSession(
                    self.context,
                    device,
                    bitrate_mbps=bitrate_mbps,
                    display=len(self._mirroring) + 1,
                )
            elif isinstance(device, IOSDevice):
                from repro.mirroring.airplay import AirPlayMirroringSession

                session = AirPlayMirroringSession(
                    self.context,
                    device,
                    bitrate_mbps=max(bitrate_mbps, 1.5),
                    display=len(self._mirroring) + 1,
                )
            else:
                raise ControllerError(
                    f"device {serial!r} does not support mirroring (no scrcpy or AirPlay path)"
                )
            self._mirroring[serial] = session
            session.start()
        return session

    def stop_mirroring(self, serial: str) -> None:
        session = self._mirroring.get(serial)
        if session is not None and session.active:
            session.stop()

    def mirroring_session(self, serial: str) -> Optional[MirroringSession]:
        return self._mirroring.get(serial)

    def mirroring_active(self, serial: str) -> bool:
        session = self._mirroring.get(serial)
        return session is not None and session.active

    # -- resource accounting ------------------------------------------------------------------------
    def _mirroring_cpu_percent(self) -> float:
        return sum(session.controller_cpu_percent() for session in self._mirroring.values())

    def _monsoon_cpu_percent(self) -> float:
        if self._monitor is not None and self._monitor.sampling:
            return self.MONSOON_POLL_CPU_PERCENT
        return 0.0

    def _cpu_tick(self, timestamp: float) -> None:
        monsoon = self._monsoon_cpu_percent()
        mirroring = self._mirroring_cpu_percent()
        vpn_overhead = 2.0 if self.vpn.connected else 0.0
        total = self.BASE_CPU_PERCENT + monsoon + mirroring + vpn_overhead
        total *= self.random.clipped_normal(1.0, 0.06, low=0.75, high=1.25)
        # Periodic keyframe (IDR) encodes and framebuffer resyncs briefly pin
        # the Pi: this is the >95% tail the paper observes in ~10% of samples.
        if mirroring > 0 and self.random.bernoulli(0.12):
            total += self.random.uniform(18.0, 40.0)
        total = min(total, 100.0)
        self._cpu_samples.append(
            ControllerCpuSample(
                timestamp=timestamp,
                total_percent=total,
                monsoon_percent=monsoon,
                mirroring_percent=mirroring,
            )
        )

    @property
    def cpu_samples(self) -> List[ControllerCpuSample]:
        return list(self._cpu_samples)

    def cpu_utilisation_series(self) -> List[float]:
        return [sample.total_percent for sample in self._cpu_samples]

    def latest_cpu_percent(self) -> float:
        """Most recent CPU utilisation sample, or 0.0 before the first one.

        O(1) — this sits on the dispatch hot path (the "low CPU utilization"
        job constraint is evaluated per tick).
        """
        return self._cpu_samples[-1].total_percent if self._cpu_samples else 0.0

    def reset_cpu_samples(self) -> None:
        self._cpu_samples.clear()

    def memory_used_mb(self) -> float:
        """Resident memory right now (OS + suite + mirroring pipelines + per-device agents)."""
        mirroring = sum(session.controller_memory_mb() for session in self._mirroring.values())
        per_device = 6.0 * len(self._devices)
        return self.BASE_MEMORY_MB + mirroring + per_device

    def memory_utilisation_percent(self) -> float:
        return 100.0 * self.memory_used_mb() / self._spec.memory_mb

    def account_job_upload(self, size_bytes: int) -> None:
        """Record bytes uploaded to the access server (job logs, traces)."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        self._job_upload_bytes += int(size_bytes)

    def upload_bytes(self) -> int:
        """Total upload traffic: mirroring streams plus job artefacts."""
        mirroring = sum(session.upload_bytes() for session in self._mirroring.values())
        return mirroring + self._job_upload_bytes

    # -- SSH command surface ------------------------------------------------------------------------
    def handle_command(self, command: str) -> str:
        """Execute a management command arriving over SSH from the access server.

        The command vocabulary mirrors the management jobs described in
        Section 3.1 (certificate deployment, power-monitor safety, factory
        reset) plus the basics the scheduler needs (status, device listing).
        """
        tokens = command.split()
        if not tokens:
            raise ControllerError("empty command")
        head = tokens[0]
        if head == "status":
            return str(self.status())
        if head == "list_devices":
            return "\n".join(self.list_devices())
        if head == "power_monitor":
            if len(tokens) != 2 or tokens[1] not in ("on", "off"):
                raise ControllerError("usage: power_monitor <on|off>")
            self.set_power_monitor(tokens[1] == "on")
            return f"power monitor {tokens[1]}"
        if head == "usb_power":
            if len(tokens) != 3 or tokens[2] not in ("on", "off"):
                raise ControllerError("usage: usb_power <serial> <on|off>")
            self.set_device_usb_power(tokens[1], tokens[2] == "on")
            return f"usb power {tokens[2]} for {tokens[1]}"
        if head == "factory_reset":
            if len(tokens) != 2:
                raise ControllerError("usage: factory_reset <serial>")
            return self.factory_reset(tokens[1])
        if head == "deploy_cert":
            return "certificate deployed"
        if head == "vpn":
            if len(tokens) == 2 and tokens[1] == "disconnect":
                self.vpn.disconnect()
                return "vpn disconnected"
            if len(tokens) == 3 and tokens[1] == "connect":
                location = self.vpn.connect(tokens[2])
                return f"vpn connected to {location.city}"
            raise ControllerError("usage: vpn <connect <location>|disconnect>")
        raise ControllerError(f"unknown command {head!r}")

    def factory_reset(self, serial: str) -> str:
        """Wipe a device back to a clean state (one of the maintenance jobs)."""
        device = self._require_device(serial)
        for package in list(device.packages.installed_packages()):
            device.packages.stop(package, ignore_missing=True)
            device.packages.clear_data(package)
        self.log("factory reset", serial=serial)
        return f"device {serial} reset"

    def authorize_access_server(self, key: SshKeyPair, source_address: str) -> None:
        """Grant the access server SSH access (pubkey + IP white-list, Section 3.4)."""
        self.ssh_server.authorize_key(key)
        self.ssh_server.allow_source(source_address)

    # -- status ----------------------------------------------------------------------------------------
    def status(self) -> dict:
        return {
            "hostname": self._hostname,
            "model": self._spec.model,
            "devices": self.list_devices(),
            "monitor": self._monitor.serial if self._monitor else None,
            "monitor_sampling": bool(self._monitor.sampling) if self._monitor else False,
            "mirroring": sorted(
                serial for serial, session in self._mirroring.items() if session.active
            ),
            "vpn": self.vpn.active_location.key if self.vpn.connected else None,
            "memory_percent": round(self.memory_utilisation_percent(), 1),
            "upload_bytes": self.upload_bytes(),
        }
