"""Controller WiFi access point.

Test devices associate with the controller's own access point so that ADB
automation can run over WiFi "without the extra USB current" (Section 3.2).
The AP can operate in NAT or bridge mode and forwards client traffic onto
the vantage point's uplink — which is where the VPN tunnels of Section 4.3
attach.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional


class ApMode(str, enum.Enum):
    NAT = "nat"
    BRIDGE = "bridge"


class WifiApError(RuntimeError):
    """Raised for association errors (wrong PSK, duplicate client, unknown client)."""


@dataclass
class WifiClient:
    """One associated station."""

    serial: str
    ip_address: str
    rx_bytes: int = 0
    tx_bytes: int = 0


class WifiAccessPoint:
    """An hostapd-style access point run by the controller.

    Parameters
    ----------
    ssid:
        Network name the test devices join.
    psk:
        Pre-shared key; devices must present the same key to associate.
    mode:
        NAT (clients get private addresses behind the controller) or bridge.
    """

    def __init__(self, ssid: str = "batterylab", psk: str = "battery-lab", mode: ApMode = ApMode.NAT) -> None:
        if not ssid:
            raise ValueError("ssid must be non-empty")
        self._ssid = ssid
        self._psk = psk
        self._mode = ApMode(mode)
        self._enabled = True
        self._clients: Dict[str, WifiClient] = {}
        self._next_host = 2

    @property
    def ssid(self) -> str:
        return self._ssid

    @property
    def mode(self) -> ApMode:
        return self._mode

    def set_mode(self, mode: ApMode) -> None:
        self._mode = ApMode(mode)

    @property
    def enabled(self) -> bool:
        return self._enabled

    def disable(self) -> None:
        self._enabled = False
        self._clients.clear()

    def enable(self) -> None:
        self._enabled = True

    # -- association ---------------------------------------------------------------
    def associate(self, device, psk: Optional[str] = None) -> WifiClient:
        """Associate a device with the AP and configure its WiFi interface."""
        if not self._enabled:
            raise WifiApError("access point is disabled")
        if psk is not None and psk != self._psk:
            raise WifiApError("authentication failed: wrong pre-shared key")
        serial = device.serial
        if serial in self._clients:
            raise WifiApError(f"device {serial!r} is already associated")
        if self._mode is ApMode.NAT:
            ip_address = f"192.168.4.{self._next_host}"
        else:
            ip_address = f"10.0.0.{self._next_host}"
        self._next_host += 1
        client = WifiClient(serial=serial, ip_address=ip_address)
        self._clients[serial] = client
        device.connect_wifi(self._ssid)
        return client

    def disassociate(self, device) -> None:
        serial = device.serial
        if serial not in self._clients:
            raise WifiApError(f"device {serial!r} is not associated")
        del self._clients[serial]
        device.disconnect_wifi()

    def is_associated(self, serial: str) -> bool:
        return serial in self._clients

    def client(self, serial: str) -> WifiClient:
        try:
            return self._clients[serial]
        except KeyError:
            raise WifiApError(f"device {serial!r} is not associated") from None

    def clients(self) -> List[WifiClient]:
        return [self._clients[serial] for serial in sorted(self._clients)]

    # -- traffic accounting -----------------------------------------------------------
    def account_traffic(self, serial: str, rx_bytes: int = 0, tx_bytes: int = 0) -> None:
        """Record bytes forwarded to/from a client (rx/tx from the client's view)."""
        client = self.client(serial)
        if rx_bytes < 0 or tx_bytes < 0:
            raise ValueError("traffic byte counts must be non-negative")
        client.rx_bytes += int(rx_bytes)
        client.tx_bytes += int(tx_bytes)

    def total_forwarded_bytes(self) -> int:
        return sum(client.rx_bytes + client.tx_bytes for client in self._clients.values())

    def status(self) -> dict:
        return {
            "ssid": self._ssid,
            "mode": self._mode.value,
            "enabled": self._enabled,
            "clients": [client.serial for client in self.clients()],
        }
