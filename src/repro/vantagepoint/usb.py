"""USB hub with per-port power control.

The controller powers test devices over USB when they are not being
measured and cuts USB power during measurements because the charge current
"interferes with the power monitoring procedure" (Section 3.2).  Port power
switching is done with ``uhubctl`` on the real Raspberry Pi; :class:`UsbHub`
reproduces that per-port on/off control and the attach/detach bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class UsbError(RuntimeError):
    """Raised for invalid port numbers or operations on empty ports."""


@dataclass
class UsbPort:
    """One physical port on the hub."""

    number: int
    powered: bool = True
    device_serial: Optional[str] = None
    attach_count: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)


class UsbHub:
    """A hub with a fixed number of individually switchable ports."""

    def __init__(self, port_count: int = 4) -> None:
        if port_count <= 0:
            raise ValueError(f"port_count must be positive, got {port_count!r}")
        self._ports: Dict[int, UsbPort] = {
            number: UsbPort(number=number) for number in range(1, port_count + 1)
        }
        self._devices: Dict[str, object] = {}

    @property
    def port_count(self) -> int:
        return len(self._ports)

    def _port(self, number: int) -> UsbPort:
        try:
            return self._ports[number]
        except KeyError:
            raise UsbError(
                f"port {number} does not exist (hub has {len(self._ports)} ports)"
            ) from None

    def ports(self) -> List[UsbPort]:
        return [self._ports[number] for number in sorted(self._ports)]

    def free_port(self) -> Optional[UsbPort]:
        for port in self.ports():
            if port.device_serial is None:
                return port
        return None

    # -- attach / detach -----------------------------------------------------------
    def attach_device(self, device, port_number: Optional[int] = None) -> UsbPort:
        """Plug a device into a port (the first free one by default)."""
        if device.serial in self._devices:
            raise UsbError(f"device {device.serial!r} is already attached to the hub")
        if port_number is None:
            port = self.free_port()
            if port is None:
                raise UsbError("no free USB port available")
        else:
            port = self._port(port_number)
            if port.device_serial is not None:
                raise UsbError(f"port {port.number} is already occupied by {port.device_serial!r}")
        port.device_serial = device.serial
        port.attach_count += 1
        self._devices[device.serial] = device
        device.connect_usb(powered=port.powered)
        return port

    def detach_device(self, serial: str) -> None:
        device = self._devices.pop(serial, None)
        if device is None:
            raise UsbError(f"device {serial!r} is not attached to the hub")
        for port in self._ports.values():
            if port.device_serial == serial:
                port.device_serial = None
        device.disconnect_usb()

    def device_port(self, serial: str) -> UsbPort:
        for port in self._ports.values():
            if port.device_serial == serial:
                return port
        raise UsbError(f"device {serial!r} is not attached to the hub")

    def attached_serials(self) -> List[str]:
        return sorted(self._devices)

    # -- power control (uhubctl) -----------------------------------------------------
    def set_port_power(self, port_number: int, powered: bool) -> None:
        """``uhubctl -p <port> -a <on|off>`` equivalent."""
        port = self._port(port_number)
        port.powered = bool(powered)
        if port.device_serial is not None:
            self._devices[port.device_serial].set_usb_power(port.powered)

    def set_device_power(self, serial: str, powered: bool) -> None:
        """Power-switch the port a given device is plugged into."""
        port = self.device_port(serial)
        self.set_port_power(port.number, powered)

    def power_off_all(self) -> None:
        for port in self.ports():
            self.set_port_power(port.number, False)

    def power_on_all(self) -> None:
        for port in self.ports():
            self.set_port_power(port.number, True)

    def status(self) -> List[dict]:
        return [
            {
                "port": port.number,
                "powered": port.powered,
                "device": port.device_serial,
            }
            for port in self.ports()
        ]
