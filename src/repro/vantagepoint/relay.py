"""Relay-based circuit switch ("battery bypass").

Each relay channel sits between one test device's voltage terminal and
either its own battery or the power monitor's ``Vout`` connector
(Section 3.2).  The circuit has two jobs:

1. switch a device between normal battery operation and *battery bypass*,
   in which the monitor both powers the device and measures its current;
2. let one monitor serve several devices without manual re-cabling —
   therefore only one channel may be in bypass at any time.

The relay path adds a tiny series overhead (contact resistance and wiring),
which is exactly what the paper's Figure 2 "direct vs relay" comparison
quantifies; the default of well under 2 mA keeps that difference negligible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.device.battery import BatteryConnection
from repro.vantagepoint.gpio import GpioInterface, PinMode


class RelayError(RuntimeError):
    """Raised for invalid relay operations (unknown channel, double bypass, ...)."""


@dataclass
class RelayChannel:
    """One relay channel: a device wired through a GPIO-driven relay."""

    index: int
    gpio_pin: int
    device_serial: str
    bypass: bool = False


class RelayCircuit:
    """Multi-channel relay circuit connecting test devices to one power monitor.

    Parameters
    ----------
    gpio:
        The controller's GPIO interface; one output pin is consumed per channel.
    monitor:
        The power monitor whose ``Vout`` the bypass path connects to.  The
        circuit is also usable without a monitor (pure battery switching).
    series_overhead_ma:
        Extra current attributed to the relay path (contact + wiring losses).
    """

    def __init__(
        self,
        gpio: GpioInterface,
        monitor=None,
        series_overhead_ma: float = 0.8,
        first_gpio_pin: int = 17,
    ) -> None:
        if series_overhead_ma < 0:
            raise ValueError("series overhead must be non-negative")
        self._gpio = gpio
        self._monitor = monitor
        self._series_overhead_ma = float(series_overhead_ma)
        self._first_gpio_pin = int(first_gpio_pin)
        self._channels: Dict[int, RelayChannel] = {}
        self._devices: Dict[str, object] = {}

    # -- configuration -----------------------------------------------------------
    @property
    def series_overhead_ma(self) -> float:
        return self._series_overhead_ma

    @property
    def monitor(self):
        return self._monitor

    def set_monitor(self, monitor) -> None:
        if self.bypassed_channel() is not None:
            raise RelayError("cannot swap the power monitor while a channel is in bypass")
        self._monitor = monitor

    def add_channel(self, device) -> RelayChannel:
        """Wire a device into the next free relay channel."""
        serial = device.serial
        if serial in self._devices:
            raise RelayError(f"device {serial!r} is already wired to a relay channel")
        index = len(self._channels)
        pin = self._first_gpio_pin + index
        self._gpio.configure(pin, PinMode.OUTPUT)
        channel = RelayChannel(index=index, gpio_pin=pin, device_serial=serial)
        self._channels[index] = channel
        self._devices[serial] = device
        return channel

    def channels(self) -> List[RelayChannel]:
        return [self._channels[i] for i in sorted(self._channels)]

    def channel_for(self, serial: str) -> RelayChannel:
        for channel in self._channels.values():
            if channel.device_serial == serial:
                return channel
        raise RelayError(f"device {serial!r} is not wired to any relay channel")

    def device(self, serial: str):
        try:
            return self._devices[serial]
        except KeyError:
            raise RelayError(f"device {serial!r} is not wired to any relay channel") from None

    def bypassed_channel(self) -> Optional[RelayChannel]:
        for channel in self._channels.values():
            if channel.bypass:
                return channel
        return None

    # -- switching -----------------------------------------------------------------
    def engage_bypass(self, serial: str) -> None:
        """Disconnect the device's battery and hand its supply to the monitor."""
        if self._monitor is None:
            raise RelayError("no power monitor is connected to the relay circuit")
        current = self.bypassed_channel()
        if current is not None and current.device_serial != serial:
            raise RelayError(
                f"channel for {current.device_serial!r} is already in bypass; "
                "release it before engaging another device"
            )
        channel = self.channel_for(serial)
        if channel.bypass:
            return
        device = self._devices[serial]
        if not self._monitor.vout_enabled:
            raise RelayError(
                "monitor Vout is disabled; set a voltage before engaging battery bypass"
            )
        channel.bypass = True
        self._gpio.write(channel.gpio_pin, True)
        # Battery-less devices (mains-powered IoT nodes) have nothing to
        # disconnect: the monitor simply becomes their supply.
        if getattr(device, "battery", None) is not None:
            device.battery.set_connection(BatteryConnection.BYPASS)
        overhead = self._series_overhead_ma
        self._monitor.attach_load(
            lambda: device.instantaneous_current_ma() + overhead,
            label=f"relay-ch{channel.index}:{serial}",
        )

    def release_bypass(self, serial: str) -> None:
        """Reconnect the device to its own battery."""
        channel = self.channel_for(serial)
        if not channel.bypass:
            return
        device = self._devices[serial]
        channel.bypass = False
        self._gpio.write(channel.gpio_pin, False)
        if getattr(device, "battery", None) is not None:
            device.battery.set_connection(BatteryConnection.INTERNAL)
        if self._monitor is not None:
            self._monitor.detach_load()

    def release_all(self) -> None:
        for channel in self.channels():
            if channel.bypass:
                self.release_bypass(channel.device_serial)

    def is_bypassed(self, serial: str) -> bool:
        return self.channel_for(serial).bypass

    def status(self) -> List[dict]:
        return [
            {
                "channel": channel.index,
                "gpio_pin": channel.gpio_pin,
                "device": channel.device_serial,
                "bypass": channel.bypass,
            }
            for channel in self.channels()
        ]


def connect_direct(monitor, device) -> None:
    """Wire a device straight to the monitor, with no relay in the path.

    This is the paper's "direct" accuracy scenario (Section 4.1): the device
    is put into battery bypass and its raw current draw — with no relay
    overhead — becomes the monitor's load.
    """
    if not monitor.vout_enabled:
        raise RelayError("monitor Vout is disabled; set a voltage before connecting a device")
    device.battery.set_connection(BatteryConnection.BYPASS)
    monitor.attach_load(device.instantaneous_current_ma, label=f"direct:{device.serial}")


def disconnect_direct(monitor, device) -> None:
    """Undo :func:`connect_direct`, restoring normal battery operation."""
    device.battery.set_connection(BatteryConnection.INTERNAL)
    monitor.detach_load()
