"""General-purpose I/O interface of the controller.

The relay circuit switch is wired to the Raspberry Pi's GPIO header and
"all relays can be controlled via software from the controller"
(Section 3.2).  :class:`GpioInterface` models the header: pins must be
configured as outputs before they can be driven, and reads reflect the last
written level, which is all the relay driver needs.
"""

from __future__ import annotations

import enum
from typing import Dict, List


class PinMode(str, enum.Enum):
    UNCONFIGURED = "unconfigured"
    INPUT = "input"
    OUTPUT = "output"


class GpioError(RuntimeError):
    """Raised for invalid pin numbers or operations on misconfigured pins."""


class GpioInterface:
    """A bank of numbered GPIO pins (BCM numbering, 40-pin header by default)."""

    def __init__(self, pin_count: int = 40) -> None:
        if pin_count <= 0:
            raise ValueError(f"pin_count must be positive, got {pin_count!r}")
        self._pin_count = int(pin_count)
        self._modes: Dict[int, PinMode] = {pin: PinMode.UNCONFIGURED for pin in range(pin_count)}
        self._levels: Dict[int, bool] = {pin: False for pin in range(pin_count)}

    @property
    def pin_count(self) -> int:
        return self._pin_count

    def _check_pin(self, pin: int) -> None:
        if pin not in self._modes:
            raise GpioError(f"pin {pin} does not exist (header has {self._pin_count} pins)")

    def configure(self, pin: int, mode: PinMode) -> None:
        self._check_pin(pin)
        self._modes[pin] = PinMode(mode)
        if mode is PinMode.OUTPUT:
            self._levels[pin] = False

    def mode(self, pin: int) -> PinMode:
        self._check_pin(pin)
        return self._modes[pin]

    def write(self, pin: int, level: bool) -> None:
        self._check_pin(pin)
        if self._modes[pin] is not PinMode.OUTPUT:
            raise GpioError(f"pin {pin} is not configured as an output")
        self._levels[pin] = bool(level)

    def read(self, pin: int) -> bool:
        self._check_pin(pin)
        if self._modes[pin] is PinMode.UNCONFIGURED:
            raise GpioError(f"pin {pin} is not configured")
        return self._levels[pin]

    def high_pins(self) -> List[int]:
        """Pins currently driven high (useful in tests and status pages)."""
        return sorted(pin for pin, level in self._levels.items() if level)
