"""Bluetooth HID keyboard emulation.

The third automation channel of Section 3.3: the controller "emulates a
typical keyboard service to which test devices connect via Bluetooth".  It
works on Android *and* iOS, needs no root, and leaves WiFi and cellular free
for the experiment — at the cost of a coarser input vocabulary than ADB.
:class:`BluetoothHidKeyboard` delivers key events to the paired device's
foreground app through the same input path ADB's ``input keyevent`` uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class BluetoothPairingError(RuntimeError):
    """Raised when pairing or key delivery is attempted in an invalid state."""


#: Key names the virtual keyboard supports, a superset of what the browser
#: automation needs (app switching, arrows for scrolling, text entry keys).
SUPPORTED_KEYS = frozenset(
    {
        "KEYCODE_HOME",
        "KEYCODE_BACK",
        "KEYCODE_APP_SWITCH",
        "KEYCODE_ENTER",
        "KEYCODE_TAB",
        "KEYCODE_DPAD_UP",
        "KEYCODE_DPAD_DOWN",
        "KEYCODE_DPAD_LEFT",
        "KEYCODE_DPAD_RIGHT",
        "KEYCODE_PAGE_UP",
        "KEYCODE_PAGE_DOWN",
        "KEYCODE_SEARCH",
        "KEYCODE_MENU",
    }
)


@dataclass
class PairedDevice:
    serial: str
    device: object
    connected: bool = False
    keys_sent: int = 0
    history: List[str] = field(default_factory=list)


class BluetoothHidKeyboard:
    """The controller-side virtual keyboard service.

    One keyboard instance can be *paired* with many devices but *connected*
    to at most one at a time, matching how a physical HID keyboard behaves.
    """

    def __init__(self, adapter_name: str = "batterylab-kbd") -> None:
        self._adapter_name = adapter_name
        self._paired: Dict[str, PairedDevice] = {}
        self._connected_serial: Optional[str] = None

    @property
    def adapter_name(self) -> str:
        return self._adapter_name

    @property
    def connected_serial(self) -> Optional[str]:
        return self._connected_serial

    # -- pairing / connection ----------------------------------------------------
    def pair(self, device) -> None:
        serial = device.serial
        if serial in self._paired:
            raise BluetoothPairingError(f"device {serial!r} is already paired")
        self._paired[serial] = PairedDevice(serial=serial, device=device)

    def unpair(self, serial: str) -> None:
        if serial == self._connected_serial:
            self.disconnect()
        if serial not in self._paired:
            raise BluetoothPairingError(f"device {serial!r} is not paired")
        del self._paired[serial]

    def paired_serials(self) -> List[str]:
        return sorted(self._paired)

    def connect(self, serial: str) -> None:
        """Open the HID link to one paired device (holding a BT radio link open)."""
        if serial not in self._paired:
            raise BluetoothPairingError(f"device {serial!r} is not paired")
        if self._connected_serial == serial:
            return
        if self._connected_serial is not None:
            self.disconnect()
        entry = self._paired[serial]
        entry.device.attach_bluetooth_link()
        entry.connected = True
        self._connected_serial = serial

    def disconnect(self) -> None:
        if self._connected_serial is None:
            return
        entry = self._paired[self._connected_serial]
        entry.device.detach_bluetooth_link()
        entry.connected = False
        self._connected_serial = None

    def is_connected(self, serial: str) -> bool:
        return self._connected_serial == serial

    # -- input delivery -------------------------------------------------------------
    def _require_connection(self) -> PairedDevice:
        if self._connected_serial is None:
            raise BluetoothPairingError("no device is connected to the keyboard")
        return self._paired[self._connected_serial]

    def send_key(self, key: str) -> None:
        """Send one key press to the connected device's foreground app."""
        if key not in SUPPORTED_KEYS:
            raise BluetoothPairingError(f"unsupported key {key!r}")
        entry = self._require_connection()
        entry.keys_sent += 1
        entry.history.append(key)
        entry.device.packages.deliver_input(f"keyevent {key}")

    def send_keys(self, keys: List[str]) -> None:
        for key in keys:
            self.send_key(key)

    def type_text(self, text: str) -> None:
        """Type a free-form string (URL entry, search terms)."""
        if not text:
            return
        entry = self._require_connection()
        entry.keys_sent += len(text)
        entry.history.append(f"text:{text}")
        entry.device.packages.deliver_input(f"text {text}")

    def scroll_down(self, times: int = 1) -> None:
        """Convenience for the browser workload's scroll interactions."""
        for _ in range(times):
            self.send_key("KEYCODE_PAGE_DOWN")

    def scroll_up(self, times: int = 1) -> None:
        for _ in range(times):
            self.send_key("KEYCODE_PAGE_UP")

    def history(self, serial: str) -> List[str]:
        if serial not in self._paired:
            raise BluetoothPairingError(f"device {serial!r} is not paired")
        return list(self._paired[serial].history)
