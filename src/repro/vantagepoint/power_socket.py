"""Meross-style WiFi power socket.

The vantage point uses a WiFi smart plug so the controller can cut mains
power to the Monsoon "when not needed (for safety reasons)" (Sections 3.1
and 3.2).  The real deployment drives Meross sockets through the MerossIot
Python API; this emulation keeps the same on/off/toggle surface plus a tiny
energy meter, and notifies an attached appliance (the power monitor
emulator) when its supply changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.simulation.entity import Entity, SimulationContext


class PowerSocketError(RuntimeError):
    """Raised when the socket is unreachable or misused."""


@dataclass
class SocketEvent:
    timestamp: float
    action: str


class MerossPowerSocket(Entity):
    """A network-controlled mains socket with an attached appliance.

    Parameters
    ----------
    context:
        Simulation context.
    name:
        Socket name as configured in the Meross app (entity name derives from it).
    appliance:
        Object with ``power_on()`` / ``power_off()`` methods; the Monsoon
        emulator satisfies this.
    """

    def __init__(
        self,
        context: SimulationContext,
        name: str = "monsoon-socket",
        appliance=None,
        standby_power_w: float = 0.6,
    ) -> None:
        super().__init__(context, f"socket:{name}")
        self._label = name
        self._appliance = appliance
        self._on = False
        self._reachable = True
        self._standby_power_w = float(standby_power_w)
        self._events: List[SocketEvent] = []
        self._last_on_time: Optional[float] = None
        self._energy_wh = 0.0
        self._appliance_power_w = 6.0

    @property
    def label(self) -> str:
        return self._label

    @property
    def is_on(self) -> bool:
        return self._on

    @property
    def reachable(self) -> bool:
        return self._reachable

    def set_reachable(self, reachable: bool) -> None:
        """Simulate the socket dropping off WiFi (failure-injection hook)."""
        self._reachable = bool(reachable)

    def attach_appliance(self, appliance, power_draw_w: float = 6.0) -> None:
        self._appliance = appliance
        self._appliance_power_w = float(power_draw_w)

    def _require_reachable(self) -> None:
        if not self._reachable:
            raise PowerSocketError(f"power socket {self._label!r} is unreachable over WiFi")

    # -- control API (MerossIot-like) -------------------------------------------------
    def turn_on(self) -> None:
        self._require_reachable()
        if self._on:
            return
        self._on = True
        self._last_on_time = self.now
        self._events.append(SocketEvent(timestamp=self.now, action="on"))
        if self._appliance is not None:
            self._appliance.power_on()
        self.log("socket on")

    def turn_off(self) -> None:
        self._require_reachable()
        if not self._on:
            return
        self._accumulate_energy()
        self._on = False
        self._events.append(SocketEvent(timestamp=self.now, action="off"))
        if self._appliance is not None:
            self._appliance.power_off()
        self.log("socket off")

    def toggle(self) -> bool:
        if self._on:
            self.turn_off()
        else:
            self.turn_on()
        return self._on

    # -- metering ----------------------------------------------------------------------
    def _accumulate_energy(self) -> None:
        if self._last_on_time is None:
            return
        elapsed_h = (self.now - self._last_on_time) / 3600.0
        self._energy_wh += elapsed_h * (self._standby_power_w + self._appliance_power_w)
        self._last_on_time = self.now

    def energy_wh(self) -> float:
        """Energy delivered through the socket so far (Wh)."""
        if self._on:
            self._accumulate_energy()
            self._last_on_time = self.now
        return self._energy_wh

    def events(self) -> List[SocketEvent]:
        return list(self._events)

    def status(self) -> dict:
        return {
            "name": self._label,
            "on": self._on,
            "reachable": self._reachable,
            "energy_wh": round(self.energy_wh(), 4),
        }
