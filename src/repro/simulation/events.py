"""Discrete event scheduler.

The scheduler owns the :class:`~repro.simulation.clock.SimClock` and runs
callbacks in timestamp order.  Ties are broken by insertion order so the
simulation is fully deterministic.  The scheduler intentionally stays small:
the heavy lifting (power integration, CPU accounting, sampling) is done by
the components themselves through :class:`~repro.simulation.process.PeriodicProcess`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.simulation.clock import SimClock


@dataclass(order=True)
class _QueueEntry:
    timestamp: float
    sequence: int
    event: "Event" = field(compare=False)


@dataclass
class Event:
    """A scheduled callback.

    Attributes
    ----------
    timestamp:
        Absolute simulated time at which the callback fires.
    callback:
        Zero-argument callable invoked when the event fires.
    label:
        Human-readable label used in tracing and error messages.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    timestamp: float
    callback: Callable[[], None]
    label: str = ""
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True


class EventScheduler:
    """Orders and dispatches :class:`Event` objects against a shared clock."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self._clock = clock if clock is not None else SimClock()
        self._heap: List[_QueueEntry] = []
        self._counter = itertools.count()
        self._dispatched = 0

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def now(self) -> float:
        return self._clock.now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def dispatched(self) -> int:
        """Number of events executed so far."""
        return self._dispatched

    def schedule_at(self, timestamp: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at an absolute simulated ``timestamp``."""
        if timestamp < self._clock.now:
            raise ValueError(
                f"cannot schedule event {label!r} in the past "
                f"({timestamp:.6f} < {self._clock.now:.6f})"
            )
        event = Event(timestamp=timestamp, callback=callback, label=label)
        heapq.heappush(self._heap, _QueueEntry(timestamp, next(self._counter), event))
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self._clock.now + delay, callback, label)

    def run_until(self, timestamp: float) -> int:
        """Run all events up to and including ``timestamp``.

        The clock ends exactly at ``timestamp`` even if the last event fired
        earlier.  Returns the number of events dispatched by this call.
        """
        if timestamp < self._clock.now:
            raise ValueError(
                f"run_until target {timestamp:.6f} is before current time {self._clock.now:.6f}"
            )
        dispatched_before = self._dispatched
        while self._heap and self._heap[0].timestamp <= timestamp:
            entry = heapq.heappop(self._heap)
            if entry.event.cancelled:
                continue
            self._clock.advance_to(entry.timestamp)
            self._dispatched += 1
            entry.event.callback()
        self._clock.advance_to(timestamp)
        return self._dispatched - dispatched_before

    def run_for(self, duration: float) -> int:
        """Run the simulation forward by ``duration`` seconds."""
        return self.run_until(self._clock.now + duration)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the queue is empty (bounded by ``max_events`` as a safety net)."""
        dispatched_before = self._dispatched
        while self._heap:
            if self._dispatched - dispatched_before >= max_events:
                raise RuntimeError(
                    f"drain() exceeded {max_events} events; likely a runaway periodic process"
                )
            entry = heapq.heappop(self._heap)
            if entry.event.cancelled:
                continue
            self._clock.advance_to(entry.timestamp)
            self._dispatched += 1
            entry.event.callback()
        return self._dispatched - dispatched_before
