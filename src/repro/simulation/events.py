"""Discrete event scheduler and the structured event bus.

The scheduler owns the :class:`~repro.simulation.clock.SimClock` and runs
callbacks in timestamp order.  Ties are broken by insertion order so the
simulation is fully deterministic.  The scheduler intentionally stays small:
the heavy lifting (power integration, CPU accounting, sampling) is done by
the components themselves through :class:`~repro.simulation.process.PeriodicProcess`.

:class:`EventBus` is the simulation layer's publish/subscribe channel for
*structured* records (as opposed to scheduled callbacks): producers such as
the access server's dispatch pipeline publish typed payloads under dotted
topics (``dispatch.assigned``, ``dispatch.batch``, ...) and observers —
tests, experiment drivers, auto-dispatch hooks — subscribe instead of
polling the producer.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.simulation.clock import SimClock


@dataclass(order=True)
class _QueueEntry:
    timestamp: float
    sequence: int
    event: "Event" = field(compare=False)


@dataclass
class Event:
    """A scheduled callback.

    Attributes
    ----------
    timestamp:
        Absolute simulated time at which the callback fires.
    callback:
        Zero-argument callable invoked when the event fires.
    label:
        Human-readable label used in tracing and error messages.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    timestamp: float
    callback: Callable[[], None]
    label: str = ""
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True


class EventScheduler:
    """Orders and dispatches :class:`Event` objects against a shared clock."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self._clock = clock if clock is not None else SimClock()
        self._heap: List[_QueueEntry] = []
        self._counter = itertools.count()
        self._dispatched = 0

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def now(self) -> float:
        return self._clock.now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def dispatched(self) -> int:
        """Number of events executed so far."""
        return self._dispatched

    def schedule_at(self, timestamp: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at an absolute simulated ``timestamp``."""
        if timestamp < self._clock.now:
            raise ValueError(
                f"cannot schedule event {label!r} in the past "
                f"({timestamp:.6f} < {self._clock.now:.6f})"
            )
        event = Event(timestamp=timestamp, callback=callback, label=label)
        heapq.heappush(self._heap, _QueueEntry(timestamp, next(self._counter), event))
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self._clock.now + delay, callback, label)

    def run_until(self, timestamp: float) -> int:
        """Run all events up to and including ``timestamp``.

        The clock ends at ``timestamp`` even if the last event fired earlier
        — unless a callback re-entered ``run_until``/``run_for`` and drove
        the clock past the target, in which case it ends wherever the
        re-entrant run left it.  Returns the number of events dispatched by
        this call.
        """
        if timestamp < self._clock.now:
            raise ValueError(
                f"run_until target {timestamp:.6f} is before current time {self._clock.now:.6f}"
            )
        dispatched_before = self._dispatched
        while self._heap and self._heap[0].timestamp <= timestamp:
            entry = heapq.heappop(self._heap)
            if entry.event.cancelled:
                continue
            # A callback may re-enter run_until/run_for (e.g. a dispatched
            # job advancing the simulation) and leave the clock past this
            # entry's timestamp; never move the clock backwards.
            if entry.timestamp > self._clock.now:
                self._clock.advance_to(entry.timestamp)
            self._dispatched += 1
            entry.event.callback()
        if timestamp > self._clock.now:
            self._clock.advance_to(timestamp)
        return self._dispatched - dispatched_before

    def run_for(self, duration: float) -> int:
        """Run the simulation forward by ``duration`` seconds."""
        return self.run_until(self._clock.now + duration)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the queue is empty (bounded by ``max_events`` as a safety net)."""
        dispatched_before = self._dispatched
        while self._heap:
            if self._dispatched - dispatched_before >= max_events:
                raise RuntimeError(
                    f"drain() exceeded {max_events} events; likely a runaway periodic process"
                )
            entry = heapq.heappop(self._heap)
            if entry.event.cancelled:
                continue
            if entry.timestamp > self._clock.now:
                self._clock.advance_to(entry.timestamp)
            self._dispatched += 1
            entry.event.callback()
        return self._dispatched - dispatched_before


@dataclass(frozen=True)
class BusEvent:
    """One structured record published on an :class:`EventBus`.

    Attributes
    ----------
    timestamp:
        Simulated time the record was published (0.0 when the bus has no clock).
    topic:
        Dotted topic string, e.g. ``"dispatch.assigned"``.
    payload:
        Topic-specific fields; values are kept primitive so records can be
        serialised or asserted on directly.
    """

    timestamp: float
    topic: str
    payload: Dict[str, object] = field(default_factory=dict)


class EventBus:
    """Topic-based publish/subscribe channel with a bounded history.

    Parameters
    ----------
    clock:
        Optional :class:`~repro.simulation.clock.SimClock` used to stamp
        published records.
    history_limit:
        Maximum number of records retained for :meth:`events`; older records
        are dropped first.
    """

    def __init__(self, clock: Optional[SimClock] = None, history_limit: int = 10_000) -> None:
        self._clock = clock
        self._subscribers: Dict[Optional[str], List[Callable[[BusEvent], None]]] = {}
        self._history: Deque[BusEvent] = deque(maxlen=history_limit)
        self._published = 0

    @property
    def published(self) -> int:
        """Number of records published over the bus's lifetime."""
        return self._published

    def subscribe(self, topic: Optional[str], callback: Callable[[BusEvent], None]) -> None:
        """Register ``callback`` for ``topic`` (``None`` subscribes to every topic)."""
        self._subscribers.setdefault(topic, []).append(callback)

    def unsubscribe(self, topic: Optional[str], callback: Callable[[BusEvent], None]) -> None:
        callbacks = self._subscribers.get(topic, [])
        if callback in callbacks:
            callbacks.remove(callback)

    def has_subscribers(self, topic: str) -> bool:
        """True when ``topic`` has at least one exact-topic subscriber.

        Wildcard (``None``) subscribers are deliberately not counted:
        publishers of high-rate optional topics (``trace.span``) use this
        to skip the publish entirely when nothing topic-specific listens.
        """
        return bool(self._subscribers.get(topic))

    def publish(self, topic: str, **payload: object) -> BusEvent:
        """Publish a record and synchronously notify its subscribers."""
        if not topic:
            raise ValueError("event topic must be non-empty")
        timestamp = self._clock.now if self._clock is not None else 0.0
        record = BusEvent(timestamp=timestamp, topic=topic, payload=payload)
        self._history.append(record)
        self._published += 1
        for callback in list(self._subscribers.get(topic, ())):
            callback(record)
        for callback in list(self._subscribers.get(None, ())):
            callback(record)
        return record

    def events(self, topic: Optional[str] = None) -> List[BusEvent]:
        """Retained records, optionally filtered to one topic."""
        if topic is None:
            return list(self._history)
        return [record for record in self._history if record.topic == topic]

    def clear(self) -> None:
        self._history.clear()
