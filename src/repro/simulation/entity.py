"""Shared simulation context and entity base class.

Every simulated component (device, power monitor, controller, access server,
network link, ...) is an :class:`Entity` attached to one
:class:`SimulationContext`.  The context bundles the event scheduler, the
clock and the per-component random streams, and offers a tiny structured
log that experiments and tests can assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.simulation.clock import SimClock
from repro.simulation.events import EventScheduler
from repro.simulation.random import RandomRegistry, SeededRandom


@dataclass(frozen=True)
class LogRecord:
    """One structured log line emitted by a simulated component."""

    timestamp: float
    source: str
    message: str
    data: Dict[str, object] = field(default_factory=dict)


class SimulationContext:
    """The shared environment a BatteryLab simulation runs in.

    Parameters
    ----------
    seed:
        Root seed for every random stream in this simulation.
    start_time:
        Initial simulated time in seconds.
    """

    def __init__(self, seed: int = 7, start_time: float = 0.0) -> None:
        self._scheduler = EventScheduler(SimClock(start_time))
        self._random = RandomRegistry(seed)
        self._log: List[LogRecord] = []
        self._entities: Dict[str, "Entity"] = {}

    # -- time -----------------------------------------------------------------
    @property
    def scheduler(self) -> EventScheduler:
        return self._scheduler

    @property
    def clock(self) -> SimClock:
        return self._scheduler.clock

    @property
    def now(self) -> float:
        return self._scheduler.now

    def run_for(self, duration: float) -> int:
        return self._scheduler.run_for(duration)

    def run_until(self, timestamp: float) -> int:
        return self._scheduler.run_until(timestamp)

    # -- randomness -----------------------------------------------------------
    @property
    def seed(self) -> int:
        return self._random.root_seed

    def random_stream(self, name: str) -> SeededRandom:
        return self._random.stream(name)

    # -- entity registry ------------------------------------------------------
    def register_entity(self, entity: "Entity") -> None:
        if entity.name in self._entities:
            raise ValueError(f"an entity named {entity.name!r} is already registered")
        self._entities[entity.name] = entity

    def entity(self, name: str) -> "Entity":
        try:
            return self._entities[name]
        except KeyError:
            raise KeyError(f"no entity registered under {name!r}") from None

    def entities(self) -> List["Entity"]:
        return list(self._entities.values())

    # -- logging --------------------------------------------------------------
    def log(self, source: str, message: str, **data: object) -> LogRecord:
        record = LogRecord(timestamp=self.now, source=source, message=message, data=dict(data))
        self._log.append(record)
        return record

    def log_records(self, source: Optional[str] = None) -> List[LogRecord]:
        if source is None:
            return list(self._log)
        return [record for record in self._log if record.source == source]


class Entity:
    """Base class for every simulated component.

    Subclasses get a stable ``name``, access to the shared context, a private
    random stream and a ``log`` helper that stamps records with the entity name.
    """

    def __init__(self, context: SimulationContext, name: str) -> None:
        if not name:
            raise ValueError("entity name must be non-empty")
        self._context = context
        self._name = name
        self._random = context.random_stream(name)
        context.register_entity(self)

    @property
    def context(self) -> SimulationContext:
        return self._context

    @property
    def name(self) -> str:
        return self._name

    @property
    def now(self) -> float:
        return self._context.now

    @property
    def random(self) -> SeededRandom:
        return self._random

    def log(self, message: str, **data: object) -> LogRecord:
        return self._context.log(self._name, message, **data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self._name!r})"
