"""Seeded random streams.

Each simulated component draws randomness from its own named stream so that
adding or removing one component never perturbs the random sequence seen by
another.  Streams are derived from a root seed plus the stream name, which
keeps experiments reproducible while still letting callers vary the root
seed to obtain independent repetitions.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    The derivation hashes both inputs so that streams named ``"a"`` and
    ``"b"`` are uncorrelated even for adjacent root seeds.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeededRandom:
    """A named, seeded source of randomness backed by :class:`numpy.random.Generator`.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    name:
        The stream name, typically the component identifier (``"device:phone0"``).
    """

    def __init__(self, root_seed: int, name: str = "root") -> None:
        self._root_seed = int(root_seed)
        self._name = name
        self._rng = np.random.default_rng(derive_seed(self._root_seed, name))

    @property
    def name(self) -> str:
        return self._name

    @property
    def root_seed(self) -> int:
        return self._root_seed

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator for vectorised draws."""
        return self._rng

    def child(self, name: str) -> "SeededRandom":
        """Create an independent child stream named ``<parent>/<name>``."""
        return SeededRandom(self._root_seed, f"{self._name}/{name}")

    # -- convenience wrappers -------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self._rng.normal(mean, std))

    def lognormal(self, mean: float, sigma: float) -> float:
        return float(self._rng.lognormal(mean, sigma))

    def exponential(self, scale: float) -> float:
        return float(self._rng.exponential(scale))

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return int(self._rng.integers(low, high + 1))

    def choice(self, options: Sequence[T]) -> T:
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        index = int(self._rng.integers(0, len(options)))
        return options[index]

    def shuffle(self, items: Sequence[T]) -> list:
        out = list(items)
        self._rng.shuffle(out)
        return out

    def bernoulli(self, probability: float) -> bool:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be within [0, 1], got {probability!r}")
        return bool(self._rng.uniform() < probability)

    def clipped_normal(
        self,
        mean: float,
        std: float,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ) -> float:
        """Normal draw clipped to ``[low, high]`` (either bound may be ``None``)."""
        value = self.normal(mean, std)
        if low is not None:
            value = max(low, value)
        if high is not None:
            value = min(high, value)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededRandom(root_seed={self._root_seed}, name={self._name!r})"


class RandomRegistry:
    """Factory that hands out one :class:`SeededRandom` stream per component name."""

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)
        self._streams: Dict[str, SeededRandom] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> SeededRandom:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = SeededRandom(self._root_seed, name)
        return self._streams[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)
