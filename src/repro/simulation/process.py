"""Periodic processes.

Sampling loops (the Monsoon pulling readings at 5 kHz), CPU accounting ticks
and watchdogs are all periodic activities.  :class:`PeriodicProcess` wraps
the re-scheduling boilerplate so components only supply the per-tick body.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simulation.events import Event, EventScheduler


class PeriodicProcess:
    """Invoke a callback every ``period`` seconds of simulated time.

    The callback receives the timestamp of the tick.  The process may be
    stopped and restarted; restarting resumes ticking relative to the current
    simulated time rather than trying to "catch up" missed ticks.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        period: float,
        callback: Callable[[float], None],
        label: str = "periodic",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self._scheduler = scheduler
        self._period = float(period)
        self._callback = callback
        self._label = label
        self._pending: Optional[Event] = None
        self._running = False
        self._ticks = 0

    @property
    def running(self) -> bool:
        return self._running

    @property
    def period(self) -> float:
        return self._period

    @property
    def ticks(self) -> int:
        """Number of ticks executed since the process was created."""
        return self._ticks

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Start ticking.  The first tick fires after ``initial_delay`` (default: one period)."""
        if self._running:
            return
        self._running = True
        delay = self._period if initial_delay is None else float(initial_delay)
        self._pending = self._scheduler.schedule_in(delay, self._tick, label=self._label)

    def stop(self) -> None:
        """Stop ticking; any pending tick is cancelled."""
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def set_period(self, period: float) -> None:
        """Change the tick period.  Takes effect from the next re-scheduling."""
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self._period = float(period)

    def _tick(self) -> None:
        if not self._running:
            return
        self._ticks += 1
        self._callback(self._scheduler.now)
        if self._running:
            self._pending = self._scheduler.schedule_in(
                self._period, self._tick, label=self._label
            )
