"""Simulated clock.

The clock is the single source of time for the whole platform.  It only
moves forward, and only when the owning :class:`EventScheduler` (or a test)
advances it.  Times are expressed in seconds as floats; helpers are provided
for formatting and for converting to the millisecond timestamps used by the
Monsoon emulator's sample records.
"""

from __future__ import annotations


class ClockError(RuntimeError):
    """Raised when the clock would be moved backwards."""


class SimClock:
    """A monotonically non-decreasing simulated clock.

    Parameters
    ----------
    start:
        Initial simulated time in seconds.  Defaults to ``0.0``.  A non-zero
        start is occasionally useful in tests that want to assert absolute
        timestamps.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta!r}")
        self._now += float(delta)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``.

        Advancing to the current time is a no-op; moving backwards raises
        :class:`ClockError`.
        """
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now:.6f} to {timestamp:.6f}"
            )
        self._now = float(timestamp)
        return self._now

    def millis(self) -> int:
        """Current time in integer milliseconds (Monsoon sample timestamps)."""
        return int(round(self._now * 1000.0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
