"""Deterministic simulation kernel used by every BatteryLab substrate.

The real BatteryLab platform runs against wall-clock time on physical
hardware (a Raspberry Pi controller, a Monsoon power monitor, Android
phones).  This reproduction replaces all of that with a discrete-event
simulation.  The kernel in this package provides:

* :class:`~repro.simulation.clock.SimClock` — a monotonically advancing
  simulated clock with nanosecond-free float seconds.
* :class:`~repro.simulation.events.EventScheduler` — an ordered event queue
  that drives the clock and dispatches callbacks deterministically.
* :class:`~repro.simulation.random.SeededRandom` — per-component, seeded
  random streams so every experiment is reproducible bit-for-bit.
* :class:`~repro.simulation.entity.Entity` / :class:`SimulationContext` —
  base plumbing shared by devices, monitors, controllers and servers.
* :class:`~repro.simulation.process.PeriodicProcess` — helper for periodic
  activities such as power-monitor sampling or CPU accounting ticks.

Everything in the rest of the library receives a :class:`SimulationContext`
and never touches the wall clock, which is what makes the experiment
drivers in :mod:`repro.experiments` deterministic and fast.
"""

from repro.simulation.clock import SimClock
from repro.simulation.entity import Entity, SimulationContext
from repro.simulation.events import Event, EventScheduler
from repro.simulation.process import PeriodicProcess
from repro.simulation.random import SeededRandom

__all__ = [
    "SimClock",
    "Event",
    "EventScheduler",
    "SeededRandom",
    "Entity",
    "SimulationContext",
    "PeriodicProcess",
]
