"""Device hardware profiles.

A :class:`DeviceHardwareProfile` collects the per-component power
coefficients that turn activity (CPU utilisation, screen state, radio
throughput) into instantaneous current draw in milliamps at the battery
voltage.  The default profile is calibrated to the Samsung J7 Duo used by
the paper's first vantage point so that the evaluation's headline numbers
hold in shape:

* mp4 playback draws a median of roughly 160 mA without mirroring and
  roughly 220 mA with mirroring (Figure 2);
* browser workloads produce device CPU medians of roughly 12% (Brave) and
  20% (Chrome), and mirroring adds roughly 5% CPU (Figure 4);
* the mirroring overhead integrates to roughly +20 mAh over a browser run
  (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class DeviceHardwareProfile:
    """Static hardware description plus power coefficients for one device model.

    Attributes
    ----------
    model:
        Marketing name, e.g. ``"Samsung J7 Duo"``.
    os_name / os_version:
        Operating system family (``"android"`` or ``"ios"``) and version string.
    api_level:
        Android API level (mirroring via scrcpy requires API >= 21); ``0`` for iOS.
    battery_capacity_mah:
        Nominal battery capacity.
    battery_voltage_v:
        Nominal battery voltage; also the voltage the Monsoon is asked to supply.
    removable_battery:
        The paper recommends phones with removable batteries for easy bypass wiring.
    cpu_cores:
        Number of CPU cores (used by the CPU accounting model).
    idle_current_ma:
        Floor current with screen off and no workload.
    screen_on_current_ma:
        Extra current with the screen on at the reference brightness.
    screen_brightness_coeff_ma:
        Additional current per unit of brightness above the reference (0..1 scale).
    cpu_current_ma_per_percent:
        Extra current per percentage point of total CPU utilisation.
    video_decoder_current_ma:
        Extra current while the hardware video decoder is active.
    hw_encoder_current_ma:
        Extra current while the hardware H.264 encoder (scrcpy mirroring) is active.
    wifi_idle_current_ma / cellular_idle_current_ma:
        Radio baseline when associated but idle.
    wifi_active_current_ma_per_mbps / cellular_active_current_ma_per_mbps:
        Extra current per Mbps of radio traffic (tx+rx combined).
    usb_charge_current_ma:
        Charge current flowing *into* the device when USB power is connected;
        this is what "interferes with the power monitoring procedure" (§3.2).
    bluetooth_active_current_ma:
        Extra current while a Bluetooth link (HID keyboard / ADB-over-BT) is active.
    """

    model: str
    os_name: str
    os_version: str
    api_level: int
    battery_capacity_mah: float
    battery_voltage_v: float
    removable_battery: bool
    cpu_cores: int
    idle_current_ma: float
    screen_on_current_ma: float
    screen_brightness_coeff_ma: float
    cpu_current_ma_per_percent: float
    video_decoder_current_ma: float
    hw_encoder_current_ma: float
    wifi_idle_current_ma: float
    wifi_active_current_ma_per_mbps: float
    cellular_idle_current_ma: float
    cellular_active_current_ma_per_mbps: float
    usb_charge_current_ma: float
    bluetooth_active_current_ma: float
    extra: Dict[str, float] = field(default_factory=dict)

    def supports_scrcpy(self) -> bool:
        """scrcpy device mirroring needs Android API level 21 or higher."""
        return self.os_name == "android" and self.api_level >= 21

    def supports_adb(self) -> bool:
        return self.os_name == "android"


SAMSUNG_J7_DUO = DeviceHardwareProfile(
    model="Samsung J7 Duo",
    os_name="android",
    os_version="8.0",
    api_level=26,
    battery_capacity_mah=3000.0,
    battery_voltage_v=3.85,
    removable_battery=True,
    cpu_cores=8,
    idle_current_ma=42.0,
    screen_on_current_ma=72.0,
    screen_brightness_coeff_ma=55.0,
    cpu_current_ma_per_percent=2.4,
    video_decoder_current_ma=18.0,
    hw_encoder_current_ma=24.0,
    wifi_idle_current_ma=4.0,
    wifi_active_current_ma_per_mbps=26.0,
    cellular_idle_current_ma=8.0,
    cellular_active_current_ma_per_mbps=42.0,
    usb_charge_current_ma=480.0,
    bluetooth_active_current_ma=6.5,
)
"""The paper's test device (first vantage point, Imperial College London)."""


PIXEL_3A = DeviceHardwareProfile(
    model="Google Pixel 3a",
    os_name="android",
    os_version="10",
    api_level=29,
    battery_capacity_mah=3000.0,
    battery_voltage_v=3.85,
    removable_battery=False,
    cpu_cores=8,
    idle_current_ma=38.0,
    screen_on_current_ma=68.0,
    screen_brightness_coeff_ma=60.0,
    cpu_current_ma_per_percent=2.1,
    video_decoder_current_ma=15.0,
    hw_encoder_current_ma=20.0,
    wifi_idle_current_ma=3.5,
    wifi_active_current_ma_per_mbps=22.0,
    cellular_idle_current_ma=7.0,
    cellular_active_current_ma_per_mbps=38.0,
    usb_charge_current_ma=500.0,
    bluetooth_active_current_ma=6.0,
)
"""A second Android profile, used to exercise device heterogeneity in tests."""


IPHONE_8 = DeviceHardwareProfile(
    model="Apple iPhone 8",
    os_name="ios",
    os_version="13.3",
    api_level=0,
    battery_capacity_mah=1821.0,
    battery_voltage_v=3.82,
    removable_battery=False,
    cpu_cores=6,
    idle_current_ma=35.0,
    screen_on_current_ma=66.0,
    screen_brightness_coeff_ma=52.0,
    cpu_current_ma_per_percent=2.0,
    video_decoder_current_ma=14.0,
    hw_encoder_current_ma=22.0,
    wifi_idle_current_ma=3.0,
    wifi_active_current_ma_per_mbps=20.0,
    cellular_idle_current_ma=7.5,
    cellular_active_current_ma_per_mbps=40.0,
    usb_charge_current_ma=450.0,
    bluetooth_active_current_ma=5.5,
)
"""iOS profile: no ADB/scrcpy, automated via the Bluetooth keyboard channel."""


BUILTIN_PROFILES: Dict[str, DeviceHardwareProfile] = {
    profile.model: profile for profile in (SAMSUNG_J7_DUO, PIXEL_3A, IPHONE_8)
}


def get_profile(model: str) -> DeviceHardwareProfile:
    """Look up a built-in hardware profile by marketing name."""
    try:
        return BUILTIN_PROFILES[model]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_PROFILES))
        raise KeyError(f"unknown device model {model!r}; known models: {known}") from None
